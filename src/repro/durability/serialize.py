"""Lossless JSON encoding of the service's durable state.

Snapshots and journal records must round-trip through JSON without losing
the two things plain JSON cannot carry:

* **tuples** — request cache keys are nested tuples of primitives (see
  :func:`repro.workload.builders.workload_cache_key`), and tuple-vs-list
  identity matters because restored keys must hash equal to live ones;
* **numpy arrays** — released noisy answers must be restored *byte-identical*
  (the crash-recovery property suite compares raw bytes), so arrays are
  encoded as base64 of their little-endian buffer, not as decimal text.

``encode`` maps a value to a JSON-ready structure using tagged objects
(``{"__tuple__": [...]}``, ``{"__ndarray__": ...}``); ``decode`` inverts it.
Unknown objects degrade to a tagged ``repr`` string — loud in the decoded
structure rather than silently wrong — which only ever affects free-form
diagnostic payloads (``QueryResponse.info``), never budget or answers.
"""

from __future__ import annotations

import base64

import numpy as np

__all__ = ["encode", "decode"]

#: Tag keys; a plain dict that happens to contain one of these as its single
#: key would be mis-decoded, so ``encode`` escapes such dicts under "__dict__".
_TAGS = ("__tuple__", "__ndarray__", "__bytes__", "__repr__", "__dict__")


def encode(value):
    """A JSON-serialisable structure that :func:`decode` inverts exactly."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        return {
            "__ndarray__": base64.b64encode(array.tobytes()).decode("ascii"),
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        encoded = {str(key): encode(item) for key, item in value.items()}
        if len(encoded) >= 1 and any(tag in encoded for tag in _TAGS):
            return {"__dict__": encoded}
        return encoded
    return {"__repr__": repr(value)}


def decode(value):
    """Invert :func:`encode`."""
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        if "__ndarray__" in value:
            raw = base64.b64decode(value["__ndarray__"])
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        if "__tuple__" in value:
            return tuple(decode(item) for item in value["__tuple__"])
        if "__bytes__" in value:
            return base64.b64decode(value["__bytes__"])
        if "__repr__" in value:
            return value["__repr__"]
        if "__dict__" in value:
            return {key: decode(item) for key, item in value["__dict__"].items()}
        return {key: decode(item) for key, item in value.items()}
    return value
