"""Crash safety for the query service: journal, snapshots, fault injection.

The service's privacy state — budget charges, measurement history, the audit
trail, released answers — must survive the process dying at any instruction.
This package provides the three pieces:

* :class:`PrivacyJournal` — a write-ahead, CRC-checked, JSON-lines journal.
  Every charge is appended *before* the in-memory ledger mutates and every
  answer is journaled before it is released (charge-ahead: a crash can waste
  budget, never leak it).  Torn or corrupt tails are truncated on open.
* :func:`snapshot_session` / :func:`restore_session` — serialise a session's
  accounting state and rebuild it after a crash, replaying the journal
  suffix and verifying the result against the service's reconciliation
  oracle; released answers come back byte-identical at zero additional ε.
* :class:`FaultInjector` — deterministic fault schedules fired at the
  instrumented seams (kernel charge path, journal append/fsync, scheduler
  workers), driving the crash-recovery property suite in
  ``tests/test_durability.py``.
"""

from .faults import FAULT_POINTS, FaultInjector, InjectedFault, WorkerDeath
from .journal import JournalCorruptionError, PrivacyJournal
from .serialize import decode, encode
from .snapshot import (
    RecoveryError,
    response_from_state,
    response_state,
    restore_session,
    snapshot_session,
)

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "InjectedFault",
    "JournalCorruptionError",
    "PrivacyJournal",
    "RecoveryError",
    "WorkerDeath",
    "decode",
    "encode",
    "response_from_state",
    "response_state",
    "restore_session",
    "snapshot_session",
]
