"""Snapshot and restore of service sessions, reconciled against the journal.

A **snapshot** is a JSON-ready dict capturing everything the service needs to
resume a session's *accounting* exactly — kernel bookkeeping (budget graph,
root ledger, measurement history, noise seed, name counter), the audit-trail
events, the accountant's configuration, the request counter, the session's
cached releases and the journal sequence number it was taken at.  It never
contains the private table: restoring requires the deployment to supply the
original data, which stays the operator's.

**Restore** rebuilds a session from a snapshot and/or a
:class:`~repro.durability.journal.PrivacyJournal`:

1. construct a fresh session around the supplied table (from the snapshot,
   or from the journal's ``open`` record when no snapshot exists), verifying
   the reconstructed accountant matches the recorded configuration;
2. replay the journal suffix past the snapshot's sequence number — charges
   into the root ledger, measurement records into the kernel history, events
   into the audit trail, released answers back into the measurement cache
   (byte-identical: arrays round-trip through base64 of their raw buffer);
3. attach the journal (without a second ``open`` record) and *claim
   orphans*: budget that was charged-ahead but whose request never recorded
   an event (the crash window) is claimed by one synthesized errored event,
   so the audit trail still covers every charge and every history row;
4. run the PR-1 :func:`~repro.service.export.reconcile` oracle — the
   restored session's event ledger must match its kernel ledger *exactly*,
   or :class:`RecoveryError` is raised (``strict=False`` downgrades both
   this and the accountant check to best-effort for forensics on a journal
   you already know is damaged).

The module imports the service layer lazily inside functions:
``repro.service`` imports ``repro.durability`` at module level, and this is
the edge that would otherwise close the cycle.
"""

from __future__ import annotations

from dataclasses import asdict, fields as dataclass_fields

from ..accounting.base import Cost
from ..private.kernel import MeasurementRecord
from .journal import PrivacyJournal
from .serialize import decode, encode

__all__ = [
    "RecoveryError",
    "SNAPSHOT_VERSION",
    "response_from_state",
    "response_state",
    "restore_session",
    "snapshot_session",
]

SNAPSHOT_VERSION = 1

#: SessionEvent field names (resolved lazily; cached after first use).
_EVENT_FIELDS: tuple[str, ...] | None = None


class RecoveryError(Exception):
    """Restored state failed verification (accountant mismatch, inexact
    reconciliation, malformed snapshot/journal)."""


def response_state(response) -> dict:
    """A :class:`~repro.service.api.QueryResponse` as a plain field dict."""
    return {f.name: getattr(response, f.name) for f in dataclass_fields(response)}


def response_from_state(state: dict):
    """Invert :func:`response_state`."""
    from ..service.api import QueryResponse

    return QueryResponse(**state)


def _event_fields() -> tuple[str, ...]:
    global _EVENT_FIELDS
    if _EVENT_FIELDS is None:
        from ..service.session import SessionEvent

        _EVENT_FIELDS = tuple(f.name for f in dataclass_fields(SessionEvent))
    return _EVENT_FIELDS


def _event_from_record(record: dict):
    from ..service.session import SessionEvent

    return SessionEvent(**{name: record[name] for name in _event_fields() if name in record})


def _measurement_from_record(record: dict) -> MeasurementRecord:
    names = tuple(f.name for f in dataclass_fields(MeasurementRecord))
    return MeasurementRecord(**{name: record[name] for name in names if name in record})


# ----------------------------------------------------------------------
# Snapshot.
# ----------------------------------------------------------------------
def snapshot_session(session, measurement_cache=None) -> dict:
    """Serialise one session's durable state to a JSON-ready dict.

    Taken under the session lock, so the kernel state, event ledger, cache
    contents and journal sequence number are one consistent cut.  Pass the
    scheduler's ``measurement_cache`` to include the session's released
    answers (restores replay them budget-free); without it the snapshot
    still reconciles, it just cannot serve pre-crash answers from cache.
    """
    with session.lock:
        cache_entries = []
        if measurement_cache is not None:
            for entry in measurement_cache.export_session(session):
                cache_entries.append(
                    {
                        "key": encode(entry["key"]),
                        "response": encode(response_state(entry["response"])),
                        "history_start": entry["history_start"],
                        "history_end": entry["history_end"],
                    }
                )
        return {
            "version": SNAPSHOT_VERSION,
            "session_id": session.session_id,
            "tenant": session.tenant,
            "base_seed": session.base_seed,
            "accountant": {
                "name": session.accountant.name,
                "epsilon_total": session.requested_epsilon_total,
                "delta": session.requested_delta,
                "describe": session.accountant.describe(),
            },
            "request_counter": session.request_counter,
            "journal_seq": session.journal.seq if session.journal is not None else 0,
            "kernel": session.kernel.state_dict(),
            "events": [asdict(event) for event in session.events],
            "cache": cache_entries,
        }


# ----------------------------------------------------------------------
# Restore.
# ----------------------------------------------------------------------
def _build_from_snapshot(table, snapshot: dict, strict: bool):
    from ..service.session import Session

    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise RecoveryError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    meta = snapshot["accountant"]
    session = Session(
        snapshot["session_id"],
        snapshot["tenant"],
        table,
        meta["epsilon_total"],
        seed=snapshot["base_seed"],
        accountant=meta["name"],
        delta=meta["delta"],
    )
    if strict and session.accountant.describe() != decode(meta["describe"]):
        raise RecoveryError(
            "reconstructed accountant does not match the snapshot: "
            f"{session.accountant.describe()} != {meta['describe']}"
        )
    session.kernel.load_state(snapshot["kernel"])
    session.request_counter = int(snapshot["request_counter"])
    session.events = [_event_from_record(record) for record in snapshot["events"]]
    return session, int(snapshot["journal_seq"])


def _build_from_journal(table, journal: PrivacyJournal, strict: bool):
    from ..service.session import Session

    records = journal.records()
    if not records or records[0].get("kind") != "open":
        raise RecoveryError(
            "journal has no 'open' record; restoring without a snapshot "
            "needs the session's opening metadata"
        )
    head = records[0]
    session = Session(
        head["session_id"],
        head["tenant"],
        table,
        head["epsilon_total"],
        seed=head["base_seed"],
        accountant=head["accountant"],
        delta=head["delta"],
    )
    if strict and session.accountant.describe() != decode(head["describe"]):
        raise RecoveryError(
            "reconstructed accountant does not match the journal's open record"
        )
    return session, int(head["seq"])


def _replay(session, journal: PrivacyJournal, after_seq: int, measurement_cache) -> int:
    """Apply the journal suffix past ``after_seq`` to a detached session."""
    replayed = 0
    for record in journal.records(after_seq):
        kind = record.get("kind")
        if kind == "charge":
            session.kernel.budget_tracker.apply_restored_charge(
                Cost(float(record["p"]), float(record["d"]))
            )
        elif kind == "measurement":
            session.kernel.restore_measurement(_measurement_from_record(record))
        elif kind == "event":
            session.events.append(_event_from_record(record))
            request_number = _request_number(session.session_id, record.get("request_id"))
            if request_number is not None:
                session.request_counter = max(session.request_counter, request_number)
        elif kind == "release":
            if measurement_cache is not None:
                response = response_from_state(decode(record["response"]))
                measurement_cache.store(
                    session,
                    decode(record["key"]),
                    response,
                    int(record["history_start"]),
                    int(record["history_end"]),
                )
        elif kind == "open":
            # A second open record would mean two sessions shared one journal.
            raise RecoveryError(
                f"unexpected 'open' record at seq {record.get('seq')}"
            )
        else:
            raise RecoveryError(f"unknown journal record kind {kind!r}")
        replayed += 1
    return replayed


def _request_number(session_id: str, request_id) -> int | None:
    """The N of a ``<session>-rN`` request id (None for foreign formats)."""
    if not isinstance(request_id, str):
        return None
    prefix = f"{session_id}-r"
    if not request_id.startswith(prefix):
        return None
    try:
        return int(request_id[len(prefix):])
    except ValueError:
        return None


def restore_session(
    table,
    *,
    snapshot: dict | None = None,
    journal: PrivacyJournal | None = None,
    manager=None,
    measurement_cache=None,
    strict: bool = True,
):
    """Rebuild a session from durable state and verify it reconciles.

    ``table`` is the original private relation (never part of the durable
    state).  Provide a ``snapshot``, a ``journal``, or both — with both, the
    journal suffix past the snapshot's sequence number is replayed on top.
    ``manager`` adopts the restored session; ``measurement_cache`` receives
    the session's released answers so identical requests replay at zero ε.

    Raises :class:`RecoveryError` when ``strict`` (the default) and the
    restored state fails verification: accountant mismatch, or the
    :func:`~repro.service.export.reconcile` oracle reporting anything but an
    exact match between the event ledger and the kernel ledger.
    """
    from ..service.export import reconcile

    if snapshot is None and journal is None:
        raise ValueError("restore needs a snapshot, a journal, or both")
    if snapshot is not None:
        session, after_seq = _build_from_snapshot(table, snapshot, strict)
        if measurement_cache is not None:
            for entry in snapshot.get("cache", []):
                measurement_cache.store(
                    session,
                    decode(entry["key"]),
                    response_from_state(decode(entry["response"])),
                    int(entry["history_start"]),
                    int(entry["history_end"]),
                )
    else:
        session, after_seq = _build_from_journal(table, journal, strict)
    replayed = 0
    if journal is not None:
        replayed = _replay(session, journal, after_seq, measurement_cache)
        # Attach for future requests; the journal already has the session's
        # open record (or a snapshot supersedes it), so don't write another.
        session.attach_journal(journal, write_open=False)
    orphans = session.claim_orphans(error="CrashRecovery")
    if journal is not None:
        journal.commit()
    report = reconcile(session)
    if strict and not report["exact"]:
        raise RecoveryError(
            "restored session does not reconcile: "
            f"service ε {report['service_epsilon']!r} vs kernel ε "
            f"{report['kernel_epsilon']!r}, claimed "
            f"{report['history_claimed']}/{report['history_records']} records"
        )
    session.recovery_info = {
        "replayed_records": replayed,
        "orphaned_event": asdict(orphans[-1]) if orphans else None,
        "orphaned_events": [asdict(o) for o in orphans],
        "reconcile": report,
    }
    if manager is not None:
        manager.adopt(session)
    return session
