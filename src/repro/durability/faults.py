"""Deterministic fault injection for the crash-recovery property suite.

A :class:`FaultInjector` is threaded through the seams where a production
deployment actually fails — the kernel's charge path, the journal's append
and fsync calls, the scheduler's worker threads — and fires pre-armed faults
when execution reaches them.  Faults are *schedules*, not probabilities:
``arm("kernel.after_charge", after=2, times=1)`` fires exactly on the third
hit of that seam, so every interleaving the property suite explores is
reproducible from its schedule alone.

Fault points (the seams instrumented in this repo):

* ``kernel.before_charge`` — before a measurement's budget charge: the
  request dies having spent nothing.
* ``kernel.after_charge`` — after the charge is accepted (and journaled) but
  before the noisy answer is computed: the charge-ahead window where budget
  is wasted but nothing leaks.
* ``journal.append`` — before a journal record is written (I/O error).
* ``journal.fsync`` — inside the journal's fsync (``OSError``, the classic
  torn-durability failure).
* ``scheduler.worker`` — at a batch worker's entry: :class:`WorkerDeath`
  derives from ``BaseException`` precisely so it sails *past* the
  scheduler's ``except Exception`` ledgering, modelling a thread/process
  that died without any cleanup running.

Armed specs can also ``delay`` instead of raising (slow-IO faults), and every
firing is logged on :attr:`FaultInjector.fired` for assertions.

The default ``fault_injector=None`` wiring costs one attribute check per
seam; production code never pays for the harness.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "InjectedFault",
    "WorkerDeath",
]

#: The seams instrumented across kernel/journal/scheduler.
FAULT_POINTS = (
    "kernel.before_charge",
    "kernel.after_charge",
    "journal.append",
    "journal.fsync",
    "scheduler.worker",
)


class InjectedFault(Exception):
    """A fault raised by the harness at an instrumented seam.

    ``transient`` marks faults the service's retry policy may treat as
    recoverable (the default): network blips, fsync hiccups.  Arm with
    ``transient=False`` to model hard faults that must not be retried.
    """

    def __init__(self, point: str, transient: bool = True):
        self.point = point
        self.transient = transient
        super().__init__(f"injected fault at {point!r}")


class WorkerDeath(BaseException):
    """A worker thread dying mid-request, cleanup handlers and all.

    Derives from ``BaseException`` so the scheduler's ``except Exception``
    accounting path does NOT run — exactly what a killed process looks like.
    ``execute_batch`` and journal recovery must reconcile the ledger without
    any help from the dying request.
    """

    def __init__(self, point: str = "scheduler.worker"):
        self.point = point
        super().__init__(f"worker death injected at {point!r}")


@dataclass
class _ArmedFault:
    """One scheduled fault: fire on hits ``after < n <= after + times``."""

    point: str
    after: int = 0
    times: int = 1
    exception: BaseException | None = None
    delay: float = 0.0
    transient: bool = True
    hits: int = 0
    firings: int = 0

    def should_fire(self) -> bool:
        return self.after < self.hits <= self.after + self.times


@dataclass(frozen=True)
class FiredFault:
    """Log entry of one firing (for test assertions)."""

    point: str
    hit: int
    context: tuple = ()


class FaultInjector:
    """Arms and fires deterministic faults at named seams."""

    def __init__(self):
        self._lock = threading.Lock()
        self._armed: dict[str, list[_ArmedFault]] = {}
        #: chronological log of every firing.
        self.fired: list[FiredFault] = []

    def arm(
        self,
        point: str,
        *,
        after: int = 0,
        times: int = 1,
        exception: BaseException | None = None,
        delay: float = 0.0,
        transient: bool = True,
    ) -> None:
        """Schedule a fault at ``point``.

        The fault fires on the ``after+1``-th through ``after+times``-th hits
        of the seam.  ``exception`` overrides the raised object (default: an
        :class:`InjectedFault`; pass a :class:`WorkerDeath` to model worker
        loss); ``delay`` sleeps instead of raising when no exception is
        wanted (slow-IO), or before raising when both are set.
        """
        if times < 0 or after < 0:
            raise ValueError("fault schedules need non-negative after/times")
        spec = _ArmedFault(
            point, after=after, times=times, exception=exception, delay=float(delay),
            transient=transient,
        )
        with self._lock:
            self._armed.setdefault(point, []).append(spec)

    def fire(self, point: str, *context) -> None:
        """Called by instrumented seams; raises/sleeps per the armed schedule."""
        with self._lock:
            specs = self._armed.get(point)
            if not specs:
                return
            to_fire = []
            for spec in specs:
                spec.hits += 1
                if spec.should_fire():
                    spec.firings += 1
                    to_fire.append(spec)
                    self.fired.append(FiredFault(point, spec.hits, context))
        for spec in to_fire:
            if spec.delay > 0.0:
                time.sleep(spec.delay)
            if spec.exception is not None:
                raise spec.exception
            if spec.delay == 0.0:
                # A pure-delay spec models slow IO and does not raise.
                raise InjectedFault(point, transient=spec.transient)

    def reset(self) -> None:
        with self._lock:
            self._armed.clear()
            self.fired.clear()
