"""Write-ahead privacy journal: the durable record of everything that spends ε.

Every budget charge accepted at the root ledger, every kernel measurement
record, every audit-trail session event and every released answer is appended
here *before* the response leaves the service — charge-ahead semantics: a
crash between charge and release can only waste budget (the restored ledger
still shows the charge, the answer was never released), never leak it (no
answer is released whose charges are not journaled).

Format: JSON lines, one record per line, each prefixed with the CRC32 of its
payload::

    3f91a2c4 {"seq":1,"kind":"charge","p":0.1,"d":0.0}

``seq`` is a strictly sequential record number.  On open, the journal scans
existing content and validates CRC, JSON shape and sequence continuity; the
first torn or corrupt record (a half-written line from a crash mid-append, a
flipped bit) truncates the file at the last good byte — the journal's
contract is *prefix durability*, never a gap.

Durability modes (``fsync=``):

* ``"commit"`` (default) — records are buffered per append and flushed to the
  OS at every :meth:`commit` (the scheduler commits once per request, before
  the response is returned).  Survives process death — the fault model of
  this repo's crash harness — at ~µs cost.
* ``"always"`` — additionally ``os.fsync`` on every commit: survives OS/power
  loss, at the device's sync latency (~100µs+ per request).
* ``"never"`` — flush only on close; fastest, for tests and benchmarks.

``path=None`` keeps the journal in an in-memory buffer with identical
semantics (minus fsync), which the benchmarks use to isolate append cost.
"""

from __future__ import annotations

import io
import json
import os
import threading
import zlib
from pathlib import Path

from .faults import FaultInjector

__all__ = ["PrivacyJournal", "JournalCorruptionError"]

_FSYNC_MODES = ("always", "commit", "never")


class JournalCorruptionError(Exception):
    """Raised when a journal cannot be recovered (not merely truncated)."""


def _encode_line(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), default=float).encode("utf-8")
    return b"%08x " % zlib.crc32(payload) + payload + b"\n"


def _decode_line(line: bytes) -> dict | None:
    """The record in ``line``, or None if the line is torn/corrupt."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


class PrivacyJournal:
    """Append-only, CRC-checked, crash-recoverable JSON-lines journal."""

    def __init__(
        self,
        path: str | Path | None,
        fsync: str = "commit",
        fault_injector: FaultInjector | None = None,
    ):
        if fsync not in _FSYNC_MODES:
            raise ValueError(f"fsync mode must be one of {_FSYNC_MODES}")
        self.path = Path(path) if path is not None else None
        self.fsync_mode = fsync
        self.faults = fault_injector
        self._lock = threading.RLock()
        self._records: list[dict] = []
        self.seq = 0
        #: bytes discarded from a torn/corrupt tail at open time (0 = clean).
        self.truncated_bytes = 0
        self.truncated_records = 0
        if self.path is None:
            self._file = io.BytesIO()
        else:
            self._recover()
            self._file = open(self.path, "ab")
        self._closed = False

    # ------------------------------------------------------------------
    # Open-time recovery.
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Load existing records, truncating a torn or corrupt tail."""
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        offset = 0
        while offset < len(raw):
            end = raw.find(b"\n", offset)
            if end < 0:
                break  # torn tail: no newline ever made it to disk
            record = _decode_line(raw[offset:end])
            if record is None or record.get("seq") != self.seq + 1:
                break  # corrupt line, or a gap in the sequence
            self._records.append(record)
            self.seq += 1
            offset = end + 1
        if offset < len(raw):
            # Count whole remaining lines (the first is the bad one).
            tail = raw[offset:]
            self.truncated_bytes = len(tail)
            self.truncated_records = tail.count(b"\n") + (0 if tail.endswith(b"\n") else 1)
            with open(self.path, "r+b") as f:
                f.truncate(offset)

    # ------------------------------------------------------------------
    # Append path.
    # ------------------------------------------------------------------
    def append(self, record: dict) -> int:
        """Append one record; returns its sequence number.

        The record is written (and buffered) immediately; durability against
        process death is established by the next :meth:`commit`.  A failed
        write leaves at most a torn tail, which the next open truncates.
        """
        with self._lock:
            if self._closed:
                raise ValueError("journal is closed")
            if self.faults is not None:
                self.faults.fire("journal.append", record.get("kind"))
            seq = self.seq + 1
            stamped = {"seq": seq, **record}
            self._file.write(_encode_line(stamped))
            self.seq = seq
            self._records.append(stamped)
            return seq

    def commit(self) -> None:
        """Make everything appended so far durable (per the fsync mode)."""
        with self._lock:
            if self._closed:
                return
            if self.fsync_mode in ("commit", "always"):
                self._file.flush()
            if self.fsync_mode == "always":
                self._fsync()

    def _fsync(self) -> None:
        if self.faults is not None:
            self.faults.fire("journal.fsync")
        if self.path is not None:
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # Read path.
    # ------------------------------------------------------------------
    def records(self, after_seq: int = 0) -> list[dict]:
        """All records with ``seq > after_seq``, in order."""
        with self._lock:
            # seq numbers are 1-based and dense: records[i] has seq i+1.
            return list(self._records[max(int(after_seq), 0):])

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path) if self.path is not None else None,
                "fsync_mode": self.fsync_mode,
                "records": len(self._records),
                "seq": self.seq,
                "truncated_bytes": self.truncated_bytes,
                "truncated_records": self.truncated_records,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._file.flush()
            if self.path is not None and self.fsync_mode != "never":
                try:
                    os.fsync(self._file.fileno())
                except OSError:  # pragma: no cover - best-effort final sync
                    pass
            if self.path is not None:
                self._file.close()
            self._closed = True

    def __enter__(self) -> "PrivacyJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.path if self.path is not None else "<memory>"
        return f"PrivacyJournal({where}, records={len(self)}, fsync={self.fsync_mode!r})"
