"""repro — a reproduction of EKTELO (SIGMOD 2018).

EKTELO is a programming framework for differentially-private computations over
linear counting queries.  Algorithms are *plans*: client-side compositions of
vetted operators (transformations, measurements, query selection, partition
selection, inference) executed against a *protected kernel* that holds the
private data, tracks transformation stability, and enforces the global privacy
budget.

Typical usage::

    from repro import protect, Identity
    from repro.dataset import small_census
    from repro.plans import DawaPlan

    source = protect(small_census(), epsilon_total=1.0, seed=0).vectorize()
    result = DawaPlan().run(source, epsilon=1.0)
    histogram_estimate = result.x_hat

Subpackages
-----------
``repro.matrix``    implicit linear-query matrices (Sec. 7)
``repro.dataset``   relations, schemas, table transformations, synthetic data
``repro.private``   protected kernel, stability and budget accounting (Sec. 4)
``repro.accounting`` pluggable privacy accountants: pure ε, (ε, δ), ρ-zCDP
``repro.operators`` the operator library (Sec. 5)
``repro.plans``     the plan library (Fig. 2 + case studies, Secs. 6 and 9)
``repro.workload``  workload builders (with named registry + cache keys)
``repro.service``   multi-tenant query service: sessions, scheduling, caching
``repro.analysis``  error metrics, Naive Bayes / AUC utilities, harness helpers
"""

from .dataset import Attribute, Relation, Schema
from .matrix import (
    HaarWavelet,
    HierarchicalQueries,
    Identity,
    Kronecker,
    LinearQueryMatrix,
    Ones,
    Prefix,
    Product,
    RangeQueries,
    ReductionMatrix,
    Suffix,
    Total,
    VStack,
)
from .accounting import (
    Accountant,
    ApproxDPAccountant,
    PrivacyOdometer,
    PureDPAccountant,
    ZCDPAccountant,
    make_accountant,
)
from .private import BudgetExceededError, ProtectedDataSource, ProtectedKernel, protect

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Attribute",
    "Schema",
    "Relation",
    "LinearQueryMatrix",
    "Identity",
    "Ones",
    "Total",
    "Prefix",
    "Suffix",
    "HaarWavelet",
    "VStack",
    "Product",
    "Kronecker",
    "RangeQueries",
    "HierarchicalQueries",
    "ReductionMatrix",
    "protect",
    "ProtectedDataSource",
    "ProtectedKernel",
    "BudgetExceededError",
    "Accountant",
    "PureDPAccountant",
    "ApproxDPAccountant",
    "ZCDPAccountant",
    "make_accountant",
    "PrivacyOdometer",
]
