"""Pluggable privacy accountants (pure ε, (ε, δ), ρ-zCDP).

The kernel's budget enforcement is split in two: lineage-stability
bookkeeping (Algorithm 2, in :mod:`repro.private.budget`) and the privacy
*calculus* — what a mechanism costs, how costs compose and scale, and what
guarantee the spend adds up to — which lives here and is swappable per
kernel / per service session.

Entry points
------------
:func:`make_accountant`
    Resolve a per-tenant spec (``"pure"`` / ``"approx"`` / ``"zcdp"`` or an
    :class:`Accountant` instance) against an ``(ε, δ)`` target.
:class:`PrivacyOdometer`
    Read-only per-source spend ledger plus a dry-run filter
    (:meth:`~PrivacyOdometer.can_measure`) for adaptive plans.
"""

from .accountants import (
    ACCOUNTANTS,
    ApproxDPAccountant,
    PureDPAccountant,
    ZCDPAccountant,
    make_accountant,
)
from .base import (
    Accountant,
    Cost,
    gaussian_analytic_sigma,
    zcdp_epsilon_for_rho_delta,
    zcdp_rho_for_epsilon_delta,
)
from .odometer import OdometerEntry, PrivacyOdometer

__all__ = [
    "Accountant",
    "Cost",
    "ACCOUNTANTS",
    "PureDPAccountant",
    "ApproxDPAccountant",
    "ZCDPAccountant",
    "make_accountant",
    "OdometerEntry",
    "PrivacyOdometer",
    "gaussian_analytic_sigma",
    "zcdp_rho_for_epsilon_delta",
    "zcdp_epsilon_for_rho_delta",
]
