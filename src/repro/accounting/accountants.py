"""The three concrete privacy accountants: pure ε, (ε, δ) and ρ-zCDP.

=============  ==============  ========================================
accountant     native unit     when to prefer it
=============  ==============  ========================================
``pure``       ε               the paper's semantics; Laplace plans,
                               worst-case guarantees, seed compatibility
``approx``     (ε, δ)          Gaussian measurements with the classic
                               analytic calibration; basic composition
``zcdp``       ρ               many-round plans (MWEM) and L2-friendly
                               strategies: additive ρ composition is much
                               tighter than summing per-round ε
=============  ==============  ========================================

Cost rules (per mechanism invocation with pure-DP parameter ε, or a Gaussian
``(ε, δ)`` target):

* pure:    Laplace ε, exponential ε, Gaussian unsupported.
* approx:  Laplace (ε, 0), exponential (ε, 0), Gaussian (ε, δ) with
  ``σ = Δ₂·sqrt(2·ln(1.25/δ))/ε``.
* zcdp:    Laplace ε²/2 (pure ε-DP implies ε²/2-zCDP), exponential ε²/8
  (bounded-range analysis, Cesar & Rogers 2021), Gaussian ρ(ε, δ) with
  ``σ = Δ₂/sqrt(2ρ)`` — ρ being the tight zCDP equivalent of the target.

Stability scaling through a c-stable transformation follows group privacy:
ε scales by c (pure/approx), ρ by c² (zCDP); the approximate-DP δ picks up
the group-privacy factor ``c·e^{(c−1)ε}`` when c > 1.
"""

from __future__ import annotations

import math

from .base import (
    Accountant,
    Cost,
    gaussian_analytic_sigma,
    zcdp_epsilon_for_rho_delta,
    zcdp_rho_for_epsilon_delta,
)

__all__ = [
    "PureDPAccountant",
    "ApproxDPAccountant",
    "ZCDPAccountant",
    "make_accountant",
]


class PureDPAccountant(Accountant):
    """The seed semantics: pure ε-DP with linear (basic) composition.

    Bit-compatible with the original hard-coded tracker: every cost is the
    bare ε of the mechanism, scaling through a c-stable edge is the float
    product ``c * ε``, and δ is identically zero.
    """

    name = "pure"

    def __init__(self, epsilon_total: float):
        if epsilon_total is None or epsilon_total <= 0:
            raise ValueError("the global privacy budget must be positive")
        self.epsilon_total = float(epsilon_total)
        self.budget = Cost(self.epsilon_total)

    def laplace_cost(self, epsilon: float) -> Cost:
        return Cost(epsilon)

    def exponential_cost(self, epsilon: float) -> Cost:
        return Cost(epsilon)

    def scale(self, cost: Cost, stability: float) -> Cost:
        return Cost(stability * cost.primary)

    def epsilon_delta(self, spent: Cost) -> tuple[float, float]:
        return spent.primary, 0.0


class ApproxDPAccountant(Accountant):
    """(ε, δ)-DP with basic composition on both components.

    ``delta_total`` is the session's δ budget; each Gaussian measurement
    spends its per-measurement δ from it (``measurement_delta`` when the
    caller does not pass one — by default 1% of the total, so a plan can run
    up to a hundred Gaussian measurements before the δ ledger is exhausted).
    """

    name = "approx"

    def __init__(
        self,
        epsilon_total: float,
        delta_total: float = 1e-6,
        measurement_delta: float | None = None,
    ):
        if epsilon_total is None or epsilon_total <= 0:
            raise ValueError("the global privacy budget must be positive")
        if not 0 < delta_total < 1:
            raise ValueError("delta_total must lie in (0, 1)")
        self.epsilon_total = float(epsilon_total)
        self.delta_total = float(delta_total)
        self.budget = Cost(self.epsilon_total, self.delta_total)
        if measurement_delta is None:
            measurement_delta = self.delta_total / 100.0
        if not 0 < measurement_delta <= delta_total:
            raise ValueError("measurement_delta must lie in (0, delta_total]")
        self.default_delta = float(measurement_delta)

    def laplace_cost(self, epsilon: float) -> Cost:
        return Cost(epsilon, 0.0)

    def exponential_cost(self, epsilon: float) -> Cost:
        return Cost(epsilon, 0.0)

    def gaussian_mechanism(
        self, l2_sensitivity: float, epsilon: float, delta: float
    ) -> tuple[float, Cost]:
        sigma = gaussian_analytic_sigma(l2_sensitivity, epsilon, delta)
        return sigma, Cost(epsilon, delta)

    def scale(self, cost: Cost, stability: float) -> Cost:
        # Group privacy: (ε, δ) → (cε, c·e^{(c−1)ε}·δ) for group size c ≥ 1;
        # contractive edges (c < 1) keep δ unscaled (shrinking it is unsound).
        if stability >= 1.0:
            delta = min(
                stability * math.exp((stability - 1.0) * cost.primary) * cost.delta,
                1.0,
            )
        else:
            delta = cost.delta
        return Cost(stability * cost.primary, delta)

    def epsilon_delta(self, spent: Cost) -> tuple[float, float]:
        return spent.primary, spent.delta


class ZCDPAccountant(Accountant):
    """ρ-zCDP with additive composition, reported as ``(ε, δ)`` at fixed δ.

    Constructed either from a tenant-facing ``(ε, δ)`` target — the budget is
    the largest ρ whose conversion stays inside it — or from an explicit
    ``rho`` budget.  Laplace and exponential measurements are admitted
    through their zCDP cost bounds, so mixed plans stay chargeable; Gaussian
    measurements are calibrated from the tight ρ-equivalent of their per-call
    target, which is where many-round plans gain over basic composition.
    """

    name = "zcdp"

    def __init__(
        self,
        epsilon: float | None = None,
        delta: float = 1e-6,
        rho: float | None = None,
    ):
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        self.delta = float(delta)
        if rho is None:
            if epsilon is None:
                raise ValueError("provide either an (epsilon, delta) target or rho")
            rho = zcdp_rho_for_epsilon_delta(float(epsilon), self.delta)
        elif rho <= 0:
            raise ValueError("rho must be positive")
        self.rho_total = float(rho)
        self.budget = Cost(self.rho_total)
        self.default_delta = self.delta

    def laplace_cost(self, epsilon: float) -> Cost:
        # ε-DP implies (ε²/2)-zCDP (Bun & Steinke 2016, Prop. 1.4).
        return Cost(epsilon * epsilon / 2.0)

    def exponential_cost(self, epsilon: float) -> Cost:
        # The exponential mechanism is (ε²/8)-zCDP (bounded range: Cesar &
        # Rogers 2021), a factor-4 improvement over the generic ε²/2.
        return Cost(epsilon * epsilon / 8.0)

    def gaussian_mechanism(
        self, l2_sensitivity: float, epsilon: float, delta: float
    ) -> tuple[float, Cost]:
        rho = zcdp_rho_for_epsilon_delta(epsilon, delta)
        sigma = l2_sensitivity / math.sqrt(2.0 * rho)
        return sigma, Cost(rho)

    def scale(self, cost: Cost, stability: float) -> Cost:
        # Group privacy for zCDP: ρ scales quadratically with the group size.
        return Cost(stability * stability * cost.primary)

    def epsilon_delta(self, spent: Cost) -> tuple[float, float]:
        return zcdp_epsilon_for_rho_delta(spent.primary, self.delta), self.delta


#: Registry of accountant specs the service accepts per tenant.
ACCOUNTANTS = {
    "pure": PureDPAccountant,
    "approx": ApproxDPAccountant,
    "zcdp": ZCDPAccountant,
}


def make_accountant(
    spec: str | Accountant | None,
    epsilon_total: float,
    delta: float = 1e-6,
) -> Accountant:
    """Resolve a per-tenant accountant choice.

    ``spec`` may be an :class:`Accountant` instance (used as-is), one of the
    registry names ``"pure"`` / ``"approx"`` / ``"zcdp"`` (constructed
    against the tenant's ``(epsilon_total, delta)`` target), or ``None`` for
    the seed-compatible pure accountant.
    """
    if spec is None:
        return PureDPAccountant(epsilon_total)
    if isinstance(spec, Accountant):
        return spec
    if spec == "pure":
        return PureDPAccountant(epsilon_total)
    if spec == "approx":
        return ApproxDPAccountant(epsilon_total, delta_total=delta)
    if spec == "zcdp":
        return ZCDPAccountant(epsilon=epsilon_total, delta=delta)
    raise KeyError(
        f"unknown accountant {spec!r}; available: {sorted(ACCOUNTANTS)}"
    )
