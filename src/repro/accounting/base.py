"""The privacy-accounting interface: costs and accountants.

The paper's kernel (Sec. 4) hard-codes pure ε-DP: every measurement charges
its ε parameter, charges compose additively through the transformation
lineage, and partition nodes take the maximum over children.  This module
generalises that calculus into a swappable component while the operator
classes stay fixed — the framework argument of the paper taken one step
further.

An :class:`Accountant` defines, in its own *native* budget units:

* the **cost** of each vetted mechanism (Laplace, Gaussian, exponential),
* how a cost **scales** through a c-stable transformation (group privacy),
* the **total budget** a tenant's ``(ε, δ)`` target translates to, and
* the conversion of native spend back to an ``(ε, δ)`` statement for audits.

Costs are two-component vectors (:class:`Cost`): a ``primary`` magnitude in
the accountant's native unit (ε for pure and approximate DP, ρ for zCDP) plus
a ``delta`` component (the δ ledger of approximate DP; identically zero for
pure DP and zCDP).  The lineage bookkeeping in
:class:`~repro.private.budget.BudgetTracker` is written against this vector
type, so one Algorithm-2 implementation serves every accountant:
componentwise addition is sequential/basic composition, componentwise
max-increase at partition nodes is parallel composition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Cost", "Accountant"]


@dataclass(frozen=True)
class Cost:
    """A privacy charge in an accountant's native units.

    ``primary`` is ε (pure / approximate DP) or ρ (zCDP); ``delta`` is the
    failure-probability ledger of approximate DP (always 0 for the scalar
    calculi).  Componentwise arithmetic is exactly the float arithmetic the
    seed tracker performed on bare ε values, so a pure-DP charge trajectory
    through :class:`Cost` is bit-identical to the seed's.
    """

    primary: float
    delta: float = 0.0

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.primary + other.primary, self.delta + other.delta)

    def increase_over(self, other: "Cost") -> "Cost":
        """Componentwise ``max(self - other, 0)`` — the parallel-composition
        increase a child's new total forwards past the partition's max."""
        return Cost(
            max(self.primary - other.primary, 0.0),
            max(self.delta - other.delta, 0.0),
        )

    @property
    def is_zero(self) -> bool:
        return self.primary <= 0.0 and self.delta <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.delta:
            return f"Cost({self.primary:g}, delta={self.delta:g})"
        return f"Cost({self.primary:g})"


ZERO_COST = Cost(0.0, 0.0)


class Accountant:
    """Cost rules of one privacy calculus; all mutable state lives in the
    :class:`~repro.private.budget.BudgetTracker` that consults it.

    One accountant instance can therefore back any number of kernels (the
    service shares specs across sessions of a tenant) — it is a pure bundle
    of budget total + cost functions.
    """

    #: registry / reporting name ("pure", "approx", "zcdp").
    name: str = "abstract"

    #: total budget in native units; charges accumulate against this.
    budget: Cost

    #: δ used when a Gaussian measurement does not pass one explicitly, and
    #: (for zCDP) the δ at which spend is converted back to (ε, δ) reports.
    default_delta: float = 0.0

    # ------------------------------------------------------------------
    # Mechanism cost rules.
    # ------------------------------------------------------------------
    def laplace_cost(self, epsilon: float) -> Cost:
        """Charge for a Laplace mechanism run with pure-DP parameter ε."""
        raise NotImplementedError

    def exponential_cost(self, epsilon: float) -> Cost:
        """Charge for an exponential-mechanism selection with parameter ε."""
        raise NotImplementedError

    def gaussian_mechanism(
        self, l2_sensitivity: float, epsilon: float, delta: float
    ) -> tuple[float, Cost]:
        """Noise standard deviation and charge of a Gaussian measurement.

        The per-measurement target is ``(ε, δ)``; accountants that track a
        tighter native unit (zCDP) convert the target into that unit and
        calibrate the noise from it, which is where the composition savings
        of Gaussian plans come from.
        """
        raise self.unsupported("the Gaussian mechanism")

    def raw_cost(self, magnitude: float) -> Cost:
        """A direct charge of ``magnitude`` native units (no mechanism)."""
        return Cost(float(magnitude))

    # ------------------------------------------------------------------
    # Lineage scaling (group privacy through c-stable transformations).
    # ------------------------------------------------------------------
    def scale(self, cost: Cost, stability: float) -> Cost:
        """Forward a cost through a ``stability``-stable transformation."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def epsilon_delta(self, spent: Cost) -> tuple[float, float]:
        """An ``(ε, δ)``-DP statement covering ``spent`` native units."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-ready summary of the accountant's configuration."""
        eps, delta = self.epsilon_delta(self.budget)
        return {
            "accountant": self.name,
            "native_budget": self.budget.primary,
            "native_delta_budget": self.budget.delta,
            "epsilon_budget": eps,
            "delta_budget": delta,
        }

    def report(self, spent: Cost, remaining: Cost) -> dict:
        """JSON-ready accounting of a tracker's spend in both unit systems."""
        eps_spent, delta_spent = self.epsilon_delta(spent)
        out = self.describe()
        out.update(
            {
                "native_spent": spent.primary,
                "native_delta_spent": spent.delta,
                "native_remaining": remaining.primary,
                "epsilon_spent": eps_spent,
                "delta_spent": delta_spent,
            }
        )
        return out

    def unsupported(self, mechanism: str):
        # Imported at call time: repro.private imports repro.accounting at
        # module load (kernel → budget → accountants), so the reverse edge
        # must stay lazy to keep both package entry points importable.
        from ..private.exceptions import UnsupportedMechanismError

        return UnsupportedMechanismError(
            f"{mechanism} has no {self.name}-DP guarantee; "
            f"choose an accountant that supports it"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(budget={self.budget!r})"


def zcdp_rho_for_epsilon_delta(epsilon: float, delta: float) -> float:
    """The largest ρ whose zCDP-to-DP conversion meets an ``(ε, δ)`` target.

    ρ-zCDP implies ``(ρ + 2·sqrt(ρ·ln(1/δ)), δ)``-DP (Bun & Steinke 2016,
    Prop. 1.3).  Solving ``ρ + 2·sqrt(ρ·L) = ε`` with ``L = ln(1/δ)`` for
    ``u = sqrt(ρ)`` gives ``u = sqrt(L + ε) − sqrt(L)``.
    """
    if epsilon <= 0:
        raise ValueError("the epsilon target must be positive")
    if not 0 < delta < 1:
        raise ValueError("the delta target must lie in (0, 1)")
    log_term = math.log(1.0 / delta)
    root = math.sqrt(log_term + epsilon) - math.sqrt(log_term)
    return root * root


def zcdp_epsilon_for_rho_delta(rho: float, delta: float) -> float:
    """The ε of the ``(ε, δ)`` statement ρ-zCDP provides at failure rate δ."""
    if rho < 0:
        raise ValueError("rho must be non-negative")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    return rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))


def gaussian_analytic_sigma(l2_sensitivity: float, epsilon: float, delta: float) -> float:
    """Classic ``(ε, δ)`` Gaussian calibration ``σ = Δ₂·sqrt(2·ln(1.25/δ))/ε``.

    Valid for ε ≤ 1 and conservative above; the textbook formula the
    approximate-DP accountant uses (Dwork & Roth 2014, Thm. A.1).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    return l2_sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon
