"""Adaptive odometer / filter view of a kernel's per-source privacy spend.

Terminology follows Rogers et al. (2016): a *privacy odometer* reports, at
any point in an adaptive interaction, a valid bound on the privacy loss spent
so far; a *privacy filter* decides whether one more proposed charge still
fits a fixed budget.  Here both views are derived from the kernel's lineage
tracker and its accountant:

* :meth:`PrivacyOdometer.entries` — the per-source spend ledger (native
  units plus the accountant's converted ``(ε, δ)`` statement per source),
* :meth:`PrivacyOdometer.can_measure` / :meth:`headroom` — the filter: a
  dry-run of Algorithm 2's propagation against the remaining budget, so an
  adaptive plan can test a candidate measurement *before* committing budget
  (a rejected :meth:`can_measure` costs nothing, unlike catching
  :class:`~repro.private.exceptions.BudgetExceededError` after the fact).

Everything here is public information: it is computed from budget counters
and lineage metadata only, never from the private data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .base import Accountant, Cost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (private imports us)
    from ..private.budget import BudgetTracker
    from ..private.kernel import ProtectedKernel

__all__ = ["OdometerEntry", "PrivacyOdometer"]


@dataclass(frozen=True)
class OdometerEntry:
    """Per-source row of the odometer: where budget went, in both unit systems."""

    source: str
    kind: str
    #: native-unit spend recorded at this source (before lineage scaling).
    native_spent: float
    native_delta_spent: float
    #: the accountant's (ε, δ) statement covering this source's local spend.
    epsilon_spent: float
    delta_spent: float
    #: product of stability factors from the source up to the root.
    cumulative_stability: float


class PrivacyOdometer:
    """Read-only accounting views over one protected kernel."""

    def __init__(self, kernel: "ProtectedKernel"):
        self._kernel = kernel

    @property
    def accountant(self) -> Accountant:
        return self._kernel.accountant

    @property
    def _tracker(self) -> "BudgetTracker":
        return self._kernel.budget_tracker

    # ------------------------------------------------------------------
    # Odometer: realised spend.
    # ------------------------------------------------------------------
    def entries(self) -> list[OdometerEntry]:
        """One row per source that has spent budget, sorted by source name."""
        accountant = self.accountant
        rows = []
        for node in self._tracker.spending_nodes():
            epsilon, delta = accountant.epsilon_delta(node.spent)
            rows.append(
                OdometerEntry(
                    source=node.name,
                    kind=node.kind.value,
                    native_spent=node.consumed,
                    native_delta_spent=node.consumed_delta,
                    epsilon_spent=epsilon,
                    delta_spent=delta,
                    cumulative_stability=self._tracker.cumulative_stability(node.name),
                )
            )
        return sorted(rows, key=lambda row: row.source)

    def total_spent(self) -> Cost:
        """Root-level spend in native units."""
        return self._tracker.spent()

    def remaining(self) -> Cost:
        """Remaining root-level budget in native units (clamped at zero)."""
        return self._tracker.remaining_cost()

    def epsilon_delta_report(self) -> tuple[float, float]:
        """The accountant's ``(ε, δ)`` statement covering all spend so far."""
        return self.accountant.epsilon_delta(self.total_spent())

    # ------------------------------------------------------------------
    # Filter: hypothetical spend.
    # ------------------------------------------------------------------
    def can_measure(self, source: str, epsilon: float, mechanism: str = "laplace") -> bool:
        """Would a ``mechanism`` measurement with parameter ε on ``source`` fit?

        A pure dry-run of the lineage propagation — no counters move, nothing
        is ledgered — so adaptive plans can probe before they commit.
        """
        cost = self._mechanism_cost(epsilon, mechanism)
        return self._tracker.would_accept(source, cost)

    def headroom(self, source: str, mechanism: str = "laplace", tolerance: float = 1e-6) -> float:
        """The largest mechanism parameter ε still chargeable on ``source``.

        Found by bisection over the (monotone) filter decision; returns 0.0
        when even an infinitesimal charge would be rejected.
        """
        remaining = self.remaining()
        if remaining.is_zero:
            return 0.0
        # Grow the bracket until the filter rejects: the chargeable ε can
        # exceed the native budget when the mechanism cost is sub-linear in
        # ε (a ρ budget of 0.5 admits a Laplace ε of sqrt(2·0.5·…)).  Sixty
        # doublings from the budget scale overshoots any real calculus; a
        # cost rule that never rejects would mean an unbounded guarantee,
        # so we return the bracket rather than loop forever.
        high = max(self.accountant.budget.primary, 1.0)
        for _ in range(60):
            if not self._tracker.would_accept(source, self._mechanism_cost(high, mechanism)):
                break
            high *= 2.0
        else:
            return high
        low = 0.0
        while high - low > tolerance * max(high, 1.0):
            mid = 0.5 * (low + high)
            if mid <= 0.0:
                break
            if self._tracker.would_accept(source, self._mechanism_cost(mid, mechanism)):
                low = mid
            else:
                high = mid
        return low

    def _mechanism_cost(self, epsilon: float, mechanism: str) -> Cost:
        if epsilon < 0:
            raise ValueError("the probed mechanism parameter must be non-negative")
        accountant = self.accountant
        if mechanism == "laplace":
            return accountant.laplace_cost(epsilon)
        if mechanism == "exponential":
            return accountant.exponential_cost(epsilon)
        if mechanism == "gaussian":
            _, cost = accountant.gaussian_mechanism(
                1.0, epsilon, accountant.default_delta or 1e-6
            )
            return cost
        if mechanism == "raw":
            return accountant.raw_cost(epsilon)
        raise ValueError(
            f"unknown mechanism {mechanism!r}; expected laplace, gaussian, "
            "exponential or raw"
        )
