"""Request/response API of the query service.

A :class:`QueryRequest` names everything needed to answer a workload under a
session's budget — the plan (by registry name), its parameters, the workload
(by builder name), and the privacy budget to spend — without ever carrying
private data.  A :class:`QueryResponse` carries the noisy estimate, the
workload answers, and the accounting the client needs to reconcile its own
ledger against the service's audit export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..workload.builders import _freeze, workload_cache_key


@dataclass
class QueryRequest:
    """One unit of work submitted to the :class:`~repro.service.PlanScheduler`.

    ``reuse`` opts into the measurement cache: when an identical request has
    already been answered for the same session, the prior noisy answer is
    returned without spending any further budget (post-processing of an
    already-released measurement).  ``request_id`` may be supplied by the
    client for end-to-end tracing; otherwise the session assigns a sequential
    one, which also pins down the deterministic per-request noise seed.
    """

    session_id: str
    plan: str
    epsilon: float
    plan_params: Mapping[str, object] = field(default_factory=dict)
    workload: str | None = None
    workload_params: Mapping[str, object] = field(default_factory=dict)
    request_id: str | None = None
    reuse: bool = True
    tag: str = ""
    #: wall-clock budget for this request, counted from the moment it is
    #: scheduled (queue wait included).  The kernel checks the deadline
    #: *before* every budget charge, so a timed-out plan stops spending as
    #: soon as possible; whatever it charged first is its true partial spend
    #: and is ledgered as an errored event.  ``None`` = no deadline.
    #: Excluded from :meth:`cache_key` — a deadline changes when an answer
    #: arrives, never which answer it is.
    deadline_seconds: float | None = None

    def cache_key(self) -> tuple:
        """Hashable identity of the *answer* this request asks for.

        Two requests with equal keys (within one session) ask for the same
        noisy release: same plan, same parameters, same workload, same budget.
        The request id and tag are deliberately excluded.
        """
        workload_part = (
            workload_cache_key(self.workload, self.workload_params)
            if self.workload is not None
            else None
        )
        return (
            "query",
            self.plan,
            _freeze(dict(self.plan_params)),
            workload_part,
            float(self.epsilon),
        )


@dataclass
class QueryResponse:
    """Outcome of one scheduled request.

    ``epsilon_spent`` is the exact root-level budget delta the execution
    caused on the session's kernel — zero for cache hits — in the session
    accountant's *native* units (bare ε under pure/approximate accounting, ρ
    under zCDP).  ``accounting`` carries the session-level spend after this
    request in both unit systems, including the accountant's converted
    ``(ε, δ)`` statement, so clients of non-pure tenants can reconcile a DP
    guarantee without re-deriving the calculus.  ``seed`` is the noise seed
    the kernel used, so any response can be reproduced offline.

    .. warning:: Disclosing the seed assumes the recipient is trusted (the
       analyst/operator reproducibility story this reproduction targets):
       whoever holds it can regenerate the Laplace draws and subtract the
       noise.  A deployment serving untrusted clients must strip ``seed``
       (and ``info["seed"]``) at the wire boundary and keep it in the
       server-side audit trail only.
    """

    request_id: str
    session_id: str
    plan: str
    epsilon_requested: float
    epsilon_spent: float
    x_hat: np.ndarray
    answers: np.ndarray | None
    cached: bool
    seed: int | None
    info: dict
    elapsed_seconds: float
    #: session-level accounting snapshot taken after this request (accountant
    #: name, native spend, converted (ε, δ)); None only on legacy constructors.
    accounting: dict | None = None
    #: id of the request's trace when the scheduler ran with tracing enabled
    #: (pass it to ``scheduler.tracer.trace(...)`` / the span exporters);
    #: None when tracing is off.
    trace_id: str | None = None
    #: id of the shard that executed the request when the scheduler routes
    #: through a :class:`~repro.service.sharding.ShardRouter` — the audit
    #: correlation handle (which worker's journal to read); None unsharded.
    shard_id: str | None = None

    @property
    def payload(self) -> np.ndarray:
        """What the client usually wants: workload answers if a workload was
        named, otherwise the full data-vector estimate."""
        return self.answers if self.answers is not None else self.x_hat


@dataclass(frozen=True)
class RequestFailure:
    """Structured context of one failed request, attached to its exception.

    The scheduler sets this as ``exc.request_failure`` on any exception a
    request raises (and re-raises the *original* exception, so callers keep
    matching on concrete types like ``BudgetExceededError``).  In a batch,
    ``batch_index`` is the request's slot in the submitted sequence — the
    context an opaque exception used to lose — and ``trace_id`` links the
    failure to its spans when tracing was on.  ``epsilon_spent`` is whatever
    the partial run charged before failing (already ledgered as an errored
    :class:`~repro.service.session.SessionEvent`).
    """

    request_id: str | None
    session_id: str
    plan: str
    error_type: str
    message: str
    trace_id: str | None = None
    epsilon_spent: float = 0.0
    batch_index: int | None = None
    #: False when the failure bypassed the scheduler's accounting path (a
    #: dead worker, an unknown session) — the batch collector then claims
    #: any orphaned spend so the session still reconciles.
    ledgered: bool = True

    @staticmethod
    def of(exc: BaseException) -> "RequestFailure | None":
        """The failure attached to ``exc`` by the scheduler, if any."""
        return getattr(exc, "request_failure", None)
