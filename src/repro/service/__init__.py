"""Multi-tenant DP query service on top of the protected kernel (EKTELO Sec. 4).

The paper's architecture separates vetted client-side plans from the kernel
that enforces privacy; this package adds the layer a production deployment
needs between the two — sessions, scheduling, caching and auditing:

* :class:`SessionManager` / :class:`Session` — per-tenant kernels, each with
  its own epsilon ledger, lock and audit trail;
* :class:`QueryRequest` / :class:`QueryResponse` — the data-free wire API;
* :class:`PlanScheduler` — synchronous or thread-pooled execution of plans
  from the registry, with deterministic per-request noise seeding;
* :class:`MeasurementCache` — budget-free replay of already-released answers
  (post-processing), indexed against the kernel's query history;
* :class:`ArtifactCache` — shared cache of data-independent constructions
  (workload matrices and friends);
* :mod:`~repro.service.export` — structured audit export and ledger
  reconciliation built on :mod:`repro.private.audit`, plus
  :func:`telemetry_report` for the scheduler's operational snapshot.

Observability: construct the scheduler with a
:class:`~repro.telemetry.Tracer` to get one hierarchical trace per request
(``QueryResponse.trace_id``) spanning plan stages, kernel measurements and
solver calls; metrics (latency/queue-wait histograms, outcome and cache
counters, the per-tenant privacy-spend odometer) are always collected on
``scheduler.metrics``.  See :mod:`repro.telemetry`.

Typical usage::

    from repro.dataset import small_census
    from repro.service import PlanScheduler, QueryRequest, SessionManager

    manager = SessionManager()
    session = manager.create_session("acme", small_census(), epsilon_total=1.0)
    scheduler = PlanScheduler(manager)
    response = scheduler.execute(
        QueryRequest(session.session_id, plan="Identity", epsilon=0.1,
                     workload="prefix", workload_params={"n": 50})
    )
"""

from .api import QueryRequest, QueryResponse, RequestFailure
from .artifact_cache import ArtifactCache
from .export import (
    export_json,
    reconcile,
    service_report,
    session_report,
    telemetry_report,
)
from .measurement_cache import CachedAnswer, MeasurementCache
from .robustness import (
    AdmissionController,
    AdmissionError,
    CircuitBreaker,
    RetryPolicy,
    SessionClosedError,
)
from .scheduler import PlanScheduler, derive_request_seed
from .session import Session, SessionEvent, SessionManager

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "RequestFailure",
    "Session",
    "SessionEvent",
    "SessionManager",
    "PlanScheduler",
    "derive_request_seed",
    "MeasurementCache",
    "CachedAnswer",
    "ArtifactCache",
    "AdmissionController",
    "AdmissionError",
    "CircuitBreaker",
    "RetryPolicy",
    "SessionClosedError",
    "session_report",
    "service_report",
    "reconcile",
    "export_json",
    "telemetry_report",
]
