"""Multi-tenant DP query service on top of the protected kernel (EKTELO Sec. 4).

The paper's architecture separates vetted client-side plans from the kernel
that enforces privacy; this package adds the layer a production deployment
needs between the two — sessions, scheduling, caching and auditing:

* :class:`SessionManager` / :class:`Session` — per-tenant kernels, each with
  its own epsilon ledger, lock and audit trail;
* :class:`QueryRequest` / :class:`QueryResponse` — the data-free wire API;
* :class:`PlanScheduler` — the execution core: a composable request pipeline
  (:mod:`~repro.service.pipeline`) over pluggable executor backends
  (:mod:`~repro.service.executors`: ``inline``/``thread``/``process``), with
  deterministic per-request noise seeding that makes answers byte-identical
  on every backend;
* :class:`ShardRouter` / :class:`Shard` — consistent-hash session sharding
  with exact live migration, duck-type interchangeable with
  :class:`SessionManager`;
* :class:`MeasurementCache` — budget-free replay of already-released answers
  (post-processing), LRU-bounded, indexed against the kernel's query history;
* :class:`ArtifactCache` — LRU cache of data-independent constructions
  (workload matrices, strategy-keyed Gram factorisations), optionally backed
  by a cross-process :class:`SharedArtifactStore` tier;
* :mod:`~repro.service.export` — structured audit export and ledger
  reconciliation built on :mod:`repro.private.audit`, plus
  :func:`telemetry_report` for the scheduler's operational snapshot.

Observability: construct the scheduler with a
:class:`~repro.telemetry.Tracer` to get one hierarchical trace per request
(``QueryResponse.trace_id``) spanning plan stages, kernel measurements and
solver calls — on *every* backend: process workers record their spans on a
private tracer and the driver adopts them into the live trace, so the span
tree is structurally identical whether a plan ran inline or in a worker
process.  Metrics (latency/queue-wait histograms, outcome and cache
counters, the per-tenant privacy-spend odometer) are always collected on
``scheduler.metrics``, with worker-side deltas merged in.  Attach a
:class:`~repro.telemetry.FlightRecorder` for postmortem bundles on failures
and an :class:`~repro.telemetry.SloEngine` (or call :func:`slo_report`) for
multi-window burn-rate alerting.  See :mod:`repro.telemetry`.

Typical usage::

    from repro.dataset import small_census
    from repro.service import PlanScheduler, QueryRequest, SessionManager

    manager = SessionManager()
    session = manager.create_session("acme", small_census(), epsilon_total=1.0)
    scheduler = PlanScheduler(manager)
    response = scheduler.execute(
        QueryRequest(session.session_id, plan="Identity", epsilon=0.1,
                     workload="prefix", workload_params={"n": 50})
    )
"""

from .api import QueryRequest, QueryResponse, RequestFailure
from .artifact_cache import ArtifactCache, SharedArtifactStore
from .executors import (
    ExecutorBackend,
    InlineExecutor,
    PlanJob,
    PlanJobOutcome,
    ProcessExecutor,
    ThreadExecutor,
    make_executor,
)
from .export import (
    export_json,
    reconcile,
    service_report,
    session_report,
    slo_report,
    telemetry_report,
)
from .measurement_cache import CachedAnswer, MeasurementCache
from .pipeline import RequestContext, RequestPipeline
from .robustness import (
    AdmissionController,
    AdmissionError,
    CircuitBreaker,
    RetryPolicy,
    SessionClosedError,
)
from .scheduler import PlanScheduler, derive_request_seed
from .session import Session, SessionEvent, SessionManager
from .sharding import Shard, ShardRouter

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "RequestFailure",
    "Session",
    "SessionEvent",
    "SessionManager",
    "Shard",
    "ShardRouter",
    "PlanScheduler",
    "derive_request_seed",
    "ExecutorBackend",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PlanJob",
    "PlanJobOutcome",
    "make_executor",
    "RequestContext",
    "RequestPipeline",
    "MeasurementCache",
    "CachedAnswer",
    "ArtifactCache",
    "SharedArtifactStore",
    "AdmissionController",
    "AdmissionError",
    "CircuitBreaker",
    "RetryPolicy",
    "SessionClosedError",
    "session_report",
    "service_report",
    "reconcile",
    "export_json",
    "telemetry_report",
    "slo_report",
]
