"""Consistent-hash session sharding: many session managers behind one router.

A :class:`Shard` is one :class:`~repro.service.session.SessionManager` with a
name; the :class:`ShardRouter` hashes session ids onto shards with a
consistent-hash ring (SHA-256 points, :data:`VIRTUAL_NODES` virtual nodes per
shard so load spreads evenly) and exposes the *same* duck-typed API as a bare
``SessionManager`` — ``create_session`` / ``get`` / ``close`` / ``adopt`` /
``sessions`` — so a :class:`~repro.service.scheduler.PlanScheduler` accepts
either interchangeably.

Two invariants the router maintains:

* **Stability** — the ring only *places* a session once, at creation (or
  adoption); thereafter the authoritative ``owners()`` directory answers
  every lookup.  A session is therefore never observed on two shards, even
  while the ring changes underneath it: ``add_shard`` alters future
  placements immediately but moves nothing by itself — it returns the
  sessions whose ring placement changed as a *rebalance plan* for
  :meth:`migrate_session` to apply.
* **Exact hand-off** — :meth:`migrate_session` moves a live session by
  drain-closing it on the source shard (in-flight requests finish and are
  ledgered), snapshotting it — released answers included — and restoring it
  onto the target shard through the same
  :func:`~repro.durability.snapshot.restore_session` path a crash recovery
  uses, reconciliation oracle and all.  The session keeps its id, its budget
  ledger, its base seed (hence every future derived request seed) and its
  attached journal; only ``shard_id`` changes.

Sharding here is an in-process scale-out structure (the shards share one
address space); it is the routing/ownership layer a multi-node deployment
would keep, with the ring's hash points serving as the node directory.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from bisect import bisect_right

from ..telemetry.spans import trace_span
from .session import Session, SessionManager

__all__ = ["Shard", "ShardRouter", "VIRTUAL_NODES"]

#: ring points per shard; 64 keeps the max/min shard-load ratio tight for
#: realistic session counts without making ring rebuilds noticeable.
VIRTUAL_NODES = 64


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for ``label``."""
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


class Shard:
    """One named slice of the service: a session manager plus its identity."""

    def __init__(self, shard_id: str):
        self.shard_id = shard_id
        self.manager = SessionManager()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shard({self.shard_id!r}, sessions={len(self.manager)})"


class ShardRouter:
    """Routes sessions onto shards; duck-types the ``SessionManager`` API."""

    def __init__(
        self,
        num_shards: int = 4,
        shard_ids: list[str] | None = None,
        virtual_nodes: int = VIRTUAL_NODES,
    ):
        if shard_ids is None:
            shard_ids = [f"shard-{i}" for i in range(num_shards)]
        if not shard_ids:
            raise ValueError("a ShardRouter needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("shard ids must be unique")
        self.virtual_nodes = max(int(virtual_nodes), 1)
        self._lock = threading.RLock()
        self._shards: dict[str, Shard] = {}
        #: sorted (point, shard_id) ring; rebuilt on add/remove.
        self._ring: list[tuple[int, str]] = []
        #: authoritative session directory — once a session is placed, only
        #: an explicit migrate/close moves it, never a ring change.
        self._owners: dict[str, str] = {}
        #: router-level id counter: session ids must be unique across the
        #: *whole* service, not per shard.
        self._counter = itertools.count(1)
        for shard_id in shard_ids:
            self._install(Shard(shard_id))

    # ------------------------------------------------------------------
    # Ring.
    # ------------------------------------------------------------------
    def _install(self, shard: Shard) -> None:
        self._shards[shard.shard_id] = shard
        for i in range(self.virtual_nodes):
            self._ring.append((_point(f"{shard.shard_id}#vn{i}"), shard.shard_id))
        self._ring.sort()

    def _uninstall(self, shard_id: str) -> None:
        self._ring = [(p, s) for (p, s) in self._ring if s != shard_id]

    def _place(self, session_id: str) -> str:
        """Ring placement of ``session_id``: first virtual node clockwise."""
        index = bisect_right(self._ring, (_point(session_id), ""))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def shard(self, shard_id: str) -> Shard:
        with self._lock:
            if shard_id not in self._shards:
                raise KeyError(f"unknown shard {shard_id!r}")
            return self._shards[shard_id]

    @property
    def shards(self) -> list[Shard]:
        with self._lock:
            return list(self._shards.values())

    def shard_for(self, session_id: str) -> str:
        """The shard a session lives on (directory first, ring for new ids)."""
        with self._lock:
            owner = self._owners.get(session_id)
            return owner if owner is not None else self._place(session_id)

    def owners(self) -> dict[str, str]:
        """The authoritative session → shard directory (a copy)."""
        with self._lock:
            return dict(self._owners)

    # ------------------------------------------------------------------
    # SessionManager duck-type.
    # ------------------------------------------------------------------
    def create_session(
        self,
        tenant: str,
        table,
        epsilon_total: float,
        seed: int | None = None,
        session_id: str | None = None,
        accountant=None,
        delta: float = 1e-6,
        journal=None,
    ) -> Session:
        """Open a session on the shard its id hashes to."""
        with self._lock:
            if session_id is None:
                session_id = f"{tenant}-s{next(self._counter)}"
            if session_id in self._owners:
                raise ValueError(f"session {session_id!r} already exists")
            shard = self._shards[self._place(session_id)]
            session = shard.manager.create_session(
                tenant,
                table,
                epsilon_total,
                seed=seed,
                session_id=session_id,
                accountant=accountant,
                delta=delta,
                journal=journal,
            )
            session.shard_id = shard.shard_id
            self._owners[session_id] = shard.shard_id
            return session

    def adopt(self, session: Session) -> Session:
        """Index an externally-built session (the restore path)."""
        with self._lock:
            if session.session_id in self._owners:
                raise ValueError(
                    f"session {session.session_id!r} already exists; close it "
                    "before adopting a restored replacement"
                )
            shard = self._shards[self._place(session.session_id)]
            shard.manager.adopt(session)
            session.shard_id = shard.shard_id
            self._owners[session.session_id] = shard.shard_id
            return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            owner = self._owners.get(session_id)
            if owner is None:
                raise KeyError(f"unknown session {session_id!r}")
            return self._shards[owner].manager.get(session_id)

    def close(
        self, session_id: str, drain: bool = True, timeout: float | None = None
    ) -> Session:
        with self._lock:
            owner = self._owners.get(session_id)
            if owner is None:
                raise KeyError(f"unknown session {session_id!r}")
            manager = self._shards[owner].manager
        # The drain wait happens outside the router lock: it only blocks on
        # the session's own lock, and other sessions must keep routing.
        session = manager.close(session_id, drain=drain, timeout=timeout)
        with self._lock:
            self._owners.pop(session_id, None)
        return session

    def sessions(self) -> list[Session]:
        with self._lock:
            shards = list(self._shards.values())
        out: list[Session] = []
        for shard in shards:
            out.extend(shard.manager.sessions())
        return out

    def for_tenant(self, tenant: str) -> list[Session]:
        return [session for session in self.sessions() if session.tenant == tenant]

    def __len__(self) -> int:
        return sum(len(shard.manager) for shard in self.shards)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._owners

    # ------------------------------------------------------------------
    # Topology changes.
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: str) -> list[tuple[str, str, str]]:
        """Add a shard; existing sessions stay put (stability invariant).

        Returns the rebalance plan: ``(session_id, current_shard,
        target_shard)`` for every live session whose *ring* placement moved
        to the new shard.  Apply it (or any subset) with
        :meth:`migrate_session`; until then the directory keeps every
        session exactly where it was.
        """
        with self._lock:
            if shard_id in self._shards:
                raise ValueError(f"shard {shard_id!r} already exists")
            self._install(Shard(shard_id))
            return self.rebalance_plan()

    def remove_shard(
        self, shard_id: str, measurement_cache=None
    ) -> list[tuple[str, str, str]]:
        """Remove a shard, migrating every session it owns off it first.

        The shard's virtual nodes leave the ring, each of its sessions is
        :meth:`migrate_session`-ed to its new ring placement (drain, snapshot,
        restore, reconcile — pass ``measurement_cache`` to carry released
        answers), and the empty shard is dropped.  Returns the moves made.
        """
        with self._lock:
            if shard_id not in self._shards:
                raise KeyError(f"unknown shard {shard_id!r}")
            if len(self._shards) == 1:
                raise ValueError("cannot remove the last shard")
            self._uninstall(shard_id)
            stranded = [
                sid for sid, owner in self._owners.items() if owner == shard_id
            ]
            moves = []
            for session_id in stranded:
                target = self._place(session_id)
                self.migrate_session(
                    session_id, target, measurement_cache=measurement_cache
                )
                moves.append((session_id, shard_id, target))
            del self._shards[shard_id]
            return moves

    def rebalance_plan(self) -> list[tuple[str, str, str]]:
        """Sessions whose ring placement differs from their current owner."""
        with self._lock:
            return [
                (session_id, owner, self._place(session_id))
                for session_id, owner in self._owners.items()
                if self._place(session_id) != owner
            ]

    # ------------------------------------------------------------------
    # Migration.
    # ------------------------------------------------------------------
    def migrate_session(
        self,
        session_id: str,
        target_shard_id: str,
        measurement_cache=None,
        strict: bool = True,
    ) -> Session:
        """Move one live session to ``target_shard_id``, exactly.

        Built on the durability layer: drain-close on the source shard (all
        in-flight requests finish and are ledgered), snapshot — including
        released answers when ``measurement_cache`` is passed — then restore
        onto the target shard via
        :func:`~repro.durability.snapshot.restore_session`, which re-verifies
        the reconciliation oracle (``strict``).  The session keeps its id,
        ledger, events, request counter and base seed, so derived request
        seeds — and therefore answers — are unchanged by the move; an
        attached journal is carried over and keeps appending seamlessly.

        Holds the router lock for the whole hand-off: the directory must
        never show the session on two shards, and a lookup racing the
        migration gets the post-move placement.
        """
        from ..durability.snapshot import (
            restore_session,
            snapshot_session,
        )

        with self._lock:
            owner = self._owners.get(session_id)
            if owner is None:
                raise KeyError(f"unknown session {session_id!r}")
            if target_shard_id not in self._shards:
                raise KeyError(f"unknown shard {target_shard_id!r}")
            source = self._shards[owner]
            target = self._shards[target_shard_id]
            if owner == target_shard_id:
                return source.manager.get(session_id)
            # Drain: stop admitting, wait out in-flight work, final ledger.
            # The phase spans attach to whatever tracer the caller activated
            # (the scheduler's ``service.migrate`` span) and are no-ops
            # otherwise, so a migration's drain/snapshot/restore timings are
            # readable in the same trace as the requests around it.
            with trace_span("shard.drain", session=session_id, source=owner):
                session = source.manager.close(session_id, drain=True)
            with trace_span("shard.snapshot", session=session_id):
                snapshot = snapshot_session(
                    session, measurement_cache=measurement_cache
                )
            journal = session.journal
            if journal is not None:
                session.detach_journal()
            if measurement_cache is not None:
                # The old Session object's cache scope dies with it; the
                # restore below re-stores every exported answer under the
                # new session's scope.
                measurement_cache.invalidate_session(session)
            with trace_span(
                "shard.restore", session=session_id, target=target_shard_id
            ):
                restored = restore_session(
                    session.table,
                    snapshot=snapshot,
                    journal=journal,
                    manager=None,
                    measurement_cache=measurement_cache,
                    strict=strict,
                )
            target.manager.adopt(restored)
            restored.shard_id = target_shard_id
            self._owners[session_id] = target_shard_id
            return restored

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Per-shard session counts plus directory size."""
        with self._lock:
            return {
                "shards": {
                    shard_id: len(shard.manager)
                    for shard_id, shard in self._shards.items()
                },
                "sessions": len(self._owners),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"ShardRouter(shards={list(self._shards)}, "
                f"sessions={len(self._owners)})"
            )
