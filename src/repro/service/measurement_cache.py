"""Measurement reuse: answer repeated requests from prior noisy releases.

Differential privacy is closed under post-processing: once a noisy answer has
been released, handing the *same* answer out again costs no additional
budget.  The kernel's query history records every measurement actually
answered; this cache indexes completed responses by the request's
:meth:`~repro.service.api.QueryRequest.cache_key` (scoped per session) and,
via the recorded history span, stays reconcilable against the kernel — a
cache entry can always point back at exactly the
:class:`~repro.private.kernel.MeasurementRecord` rows that paid for it.

Entries are strictly per-session: tenants never see each other's releases.

``max_entries`` bounds the cache LRU-style (a lookup hit refreshes recency),
so long-lived sessions cannot grow it without bound.  Evicting an entry
never loses the release itself: on a journal-attached session the ``release``
record is durable, so a restore replays the evicted answer back into the
cache byte-identically (and a non-durable session can simply re-run the
request — same derived seed, same noise, same answer, though it pays the ε
again).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from ..private.kernel import MeasurementRecord
from ..telemetry.metrics import MetricsRegistry
from .api import QueryResponse
from .session import Session


def _frozen_copy(response: QueryResponse) -> QueryResponse:
    """A deep-enough copy: clients and cache must never share mutable state."""
    return replace(
        response,
        x_hat=np.array(response.x_hat, copy=True),
        answers=None if response.answers is None else np.array(response.answers, copy=True),
        info=dict(response.info),
    )


@dataclass
class CachedAnswer:
    """A completed response plus the kernel-history span that produced it."""

    response: QueryResponse
    history_start: int
    history_end: int


class MeasurementCache:
    """Per-session index of released answers keyed by request identity."""

    metrics_name = "measurement"

    def __init__(self, max_entries: int | None = None):
        self._entries: OrderedDict[tuple, CachedAnswer] = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics: MetricsRegistry | None = None

    def bind_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report hit/miss/eviction counters to ``metrics`` from now on."""
        self._metrics = metrics

    def _count(self, outcome: str, amount: int = 1) -> None:
        if self._metrics is not None and amount:
            self._metrics.counter(f"cache_{outcome}", cache=self.metrics_name).inc(amount)

    @staticmethod
    def _scoped(session: Session, key: tuple) -> tuple:
        # The scope token guards against session-id reuse after a close: a
        # fresh Session under an old id must never see the old releases.
        return (session.session_id, session.cache_scope) + key

    def lookup(self, session: Session, key: tuple) -> CachedAnswer | None:
        """The cached answer for ``key`` in this session, if any."""
        with self._lock:
            scoped = self._scoped(session, key)
            entry = self._entries.get(scoped)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(scoped)
        self._count("hits" if entry is not None else "misses")
        return entry

    def store(
        self,
        session: Session,
        key: tuple,
        response: QueryResponse,
        history_start: int,
        history_end: int,
    ) -> None:
        """Index a freshly-computed response (cache hits are never re-stored)."""
        evicted = 0
        with self._lock:
            scoped = self._scoped(session, key)
            self._entries[scoped] = CachedAnswer(
                _frozen_copy(response), history_start, history_end
            )
            self._entries.move_to_end(scoped)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    # LRU, never the entry just stored (moved to the hot end).
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    evicted += 1
        self._count("evictions", evicted)

    def replay(self, entry: CachedAnswer, request_id: str) -> QueryResponse:
        """A budget-free copy of a cached response for a new request id."""
        return replace(
            _frozen_copy(entry.response),
            request_id=request_id,
            epsilon_spent=0.0,
            cached=True,
            elapsed_seconds=0.0,
        )

    def backing_records(self, session: Session, key: tuple) -> list[MeasurementRecord]:
        """Kernel-history rows that paid for the cached answer (for audits)."""
        with self._lock:
            entry = self._entries.get(self._scoped(session, key))
        if entry is None:
            return []
        return session.kernel.history()[entry.history_start : entry.history_end]

    def export_session(self, session: Session) -> list[dict]:
        """This session's entries as plain dicts (for snapshots).

        Each entry carries the bare request ``key`` (the part after the
        session scoping), a frozen copy of the response and the history span
        that paid for it; :func:`repro.durability.snapshot_session` encodes
        them and :func:`~repro.durability.restore_session` feeds them back
        through :meth:`store` so pre-crash answers replay at zero ε.
        """
        scope = (session.session_id, session.cache_scope)
        with self._lock:
            return [
                {
                    "key": key[2:],
                    "response": _frozen_copy(entry.response),
                    "history_start": entry.history_start,
                    "history_end": entry.history_end,
                }
                for key, entry in self._entries.items()
                if key[:2] == scope
            ]

    def invalidate_session(self, session: Session) -> int:
        """Drop every entry of one session (e.g. when it closes)."""
        with self._lock:
            stale = [
                k
                for k in self._entries
                if k[0] == session.session_id and k[1] == session.cache_scope
            ]
            for k in stale:
                del self._entries[k]
            self.evictions += len(stale)
        self._count("evictions", len(stale))
        return len(stale)

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
