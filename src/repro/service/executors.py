"""Executor backends: where the service actually runs its work.

The scheduler separates two concerns that PR-1 fused into one
``ThreadPoolExecutor``:

* **request driving** — everything privacy-critical about a request
  (admission, the session lock, cache probes, budget accounting, journal
  commits).  Driving always happens in the scheduler's own process, because
  that is where the sessions' kernels and write-ahead journals live;
  backends only choose *how many driver threads* run concurrently
  (:meth:`ExecutorBackend.submit`).
* **plan compute** — the numeric work of running a plan against the data
  vector.  :meth:`ExecutorBackend.run_plan` places it: in the driving thread
  (inline/thread backends) or in a worker process (:class:`ProcessExecutor`).

The process backend ships a :class:`PlanJob` — plan name, parameters, the
session's accountant configuration, its *current root spend* and the derived
per-request noise seed — to a worker that rebuilds a throwaway kernel around
the same table, replays the prior spend, runs the plan and returns the
root-level charges plus measurement records it produced.  The parent then
**adopts** the outcome under the session lock: every charge goes through the
real tracker's acceptance check (and hence the write-ahead journal listener),
every measurement record lands in the real kernel history, so the session's
ledger is byte-for-byte what local execution would have produced.  Answers
are byte-identical by construction — all noise is drawn from the derived
request seed, which is the same in any process (see
:func:`~repro.service.scheduler.derive_request_seed`).

Picklability constraints of the process backend: the table, plan parameters
and workload parameters must pickle (they are plain
dataclasses/ndarrays/primitives throughout this repo); plan *artifacts* that
cannot pickle — notably scipy's SuperLU sparse factorisations inside
normal-equations artifacts — simply stay in each worker's process-local
cache and are skipped by the shared cross-process tier.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..telemetry.context import TraceContext
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.spans import Tracer, activate

__all__ = [
    "ExecutorBackend",
    "InlineExecutor",
    "PlanJob",
    "PlanJobOutcome",
    "ProcessExecutor",
    "ThreadExecutor",
    "adopt_outcome",
    "execute_plan_job",
    "make_executor",
]


class ExecutorBackend:
    """Protocol all backends implement: ``submit``/``map``/``run_plan``/``shutdown``."""

    #: registry name ("inline", "thread", "process").
    name = "abstract"
    #: True when :meth:`run_plan` executes plans outside the session's process
    #: (the scheduler then ships a :class:`PlanJob` and adopts the outcome).
    remote_plans = False

    def submit(self, fn, *args) -> Future:
        """Schedule one request-driving call; returns its future."""
        raise NotImplementedError

    def map(self, fn, items) -> list[Future]:
        """Fan a sequence of argument tuples out over the driver pool."""
        return [self.submit(fn, *item) for item in items]

    def run_plan(self, invoke, job: "PlanJob | None" = None):
        """Place one plan execution; default: run ``invoke()`` locally."""
        return invoke()

    def shutdown(self, wait: bool = True) -> None:
        """Release pools/processes; the backend is unusable afterwards."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class InlineExecutor(ExecutorBackend):
    """Sequential driving on the calling thread — zero concurrency, zero
    pool overhead; the deterministic baseline every other backend must match
    byte-for-byte."""

    name = "inline"

    def submit(self, fn, *args) -> Future:
        future = Future()
        try:
            result = fn(*args)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            # Including WorkerDeath: a real pool's future captures it too, and
            # the batch collector's orphan accounting depends on seeing it.
            future.set_exception(exc)
        else:
            future.set_result(result)
        return future


class ThreadExecutor(ExecutorBackend):
    """A persistent ``ThreadPoolExecutor`` for request driving.

    Plans still run in the driving thread (same process, same kernels), so
    this is PR-1's concurrency model with the per-batch pool churn removed:
    one pool for the scheduler's lifetime, lazily created on first use.
    """

    name = "thread"

    def __init__(self, max_workers: int = 4):
        self.max_workers = max(int(max_workers), 1)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="svc-driver"
                )
            return self._pool

    def submit(self, fn, *args) -> Future:
        return self._ensure().submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)


# ----------------------------------------------------------------------
# Process backend: picklable job spec, worker entry point, adoption.
# ----------------------------------------------------------------------
@dataclass
class PlanJob:
    """Everything a worker process needs to run one plan deterministically.

    ``prior_primary``/``prior_delta`` replay the session's current root-level
    spend into the throwaway kernel, so the worker's budget-acceptance
    decisions mirror the live session's exactly (the session lock is held for
    the whole round trip, so the baseline cannot move underneath it).

    ``trace`` is the driver's :class:`~repro.telemetry.TraceContext` (or None
    when tracing is off): when present the worker activates a private
    recording tracer, so the spans the plan emits come home in the outcome
    and get adopted into the live trace under the originating span.
    """

    table: object
    accountant: str
    epsilon_total: float
    delta: float
    seed: int
    prior_primary: float
    prior_delta: float
    plan: str
    plan_params: dict
    epsilon: float
    deadline_remaining: float | None = None
    trace: TraceContext | None = None


@dataclass
class PlanJobOutcome:
    """What came back: the estimate plus the accounting to adopt.

    ``charges`` are the root-level costs the worker's tracker accepted, in
    order; ``records`` the measurement history rows.  ``spans`` are the
    finished spans the worker's private tracer recorded (empty when the job
    carried no trace context) and ``metrics`` the worker registry's
    :meth:`~repro.telemetry.MetricsRegistry.export_state` delta — both
    travel home on success *and* failure, so a failed plan's trace and cache
    counters are never lost.  On failure ``x_hat`` is None and ``error``
    carries the pickled original exception (when it round-trips) so the
    parent re-raises the concrete type callers match on.
    """

    x_hat: np.ndarray | None
    info: dict
    charges: list = field(default_factory=list)
    records: list = field(default_factory=list)
    spans: list = field(default_factory=list)
    metrics: dict | None = None
    error: bytes | None = None
    error_type: str = ""
    error_message: str = ""

    def raise_error(self) -> None:
        if self.error is not None:
            raise pickle.loads(self.error)
        raise RuntimeError(
            f"remote plan execution failed: {self.error_type}: {self.error_message}"
        )


def _portable_exception(exc: BaseException) -> bytes | None:
    """Pickle ``exc`` iff it survives a round trip (many exception classes
    with multi-argument constructors don't by default)."""
    try:
        payload = pickle.dumps(exc)
        pickle.loads(payload)
        return payload
    except Exception:
        return None


#: process-local artifact cache; built once per worker by the initializer
#: (or on first use when the pool was created without one).
_WORKER_CACHE = None


def _init_plan_worker(store_state=None) -> None:
    global _WORKER_CACHE
    from .artifact_cache import ArtifactCache, SharedArtifactStore

    shared = SharedArtifactStore.from_state(store_state) if store_state else None
    _WORKER_CACHE = ArtifactCache(shared=shared)


def execute_plan_job(job: PlanJob) -> PlanJobOutcome:
    """Worker-process entry point: run one plan on a throwaway kernel.

    The kernel is seeded with the job's derived request seed, pre-charged
    with the session's prior spend, and instrumented so every accepted
    root-level charge and every measurement record is captured for adoption.
    Failures (budget exhaustion, deadline expiry mid-plan, plan bugs) are
    returned, not raised: the partial charges they left behind must still
    reach the parent's ledger.

    Observability rides along the same way: the job runs against a fresh
    worker-side :class:`~repro.telemetry.MetricsRegistry` (bound to the
    worker's artifact cache, so its hit/miss counters are captured too) whose
    full state *is* the per-job delta, and — when the job carries a
    :class:`~repro.telemetry.TraceContext` — under a private recording tracer
    whose ``executor.worker`` root span wraps the plan run exactly like the
    driver-side span local backends emit.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _init_plan_worker()
    from ..accounting import make_accountant
    from ..accounting.base import Cost
    from ..plans.registry import make_plan
    from ..private.kernel import ProtectedKernel
    from ..private.protected import ProtectedDataSource

    registry = MetricsRegistry()
    _WORKER_CACHE.bind_metrics(registry)
    worker_tracer = Tracer() if job.trace is not None else None
    accountant = make_accountant(job.accountant, job.epsilon_total, delta=job.delta)
    kernel = ProtectedKernel(
        job.table, job.epsilon_total, seed=job.seed, accountant=accountant
    )
    if job.prior_primary or job.prior_delta:
        kernel.budget_tracker.apply_restored_charge(
            Cost(job.prior_primary, job.prior_delta)
        )
    charges: list[tuple[float, float]] = []
    kernel.budget_tracker.charge_listener = lambda cost: charges.append(
        (cost.primary, cost.delta)
    )
    records: list = []
    kernel.measurement_listener = records.append
    if job.deadline_remaining is not None:
        now = time.perf_counter()
        kernel.deadline = now + job.deadline_remaining
        kernel.deadline_started = now
    source = ProtectedDataSource(kernel, "root").vectorize()

    def _run():
        plan = make_plan(job.plan, dict(job.plan_params))
        return plan.run(source, job.epsilon, gram_cache=_WORKER_CACHE)

    started = time.perf_counter()
    try:
        if worker_tracer is not None:
            with activate(worker_tracer), worker_tracer.span(
                "executor.worker", backend="process", pid=os.getpid(), plan=job.plan
            ):
                result = _run()
        else:
            result = _run()
    except Exception as exc:
        _observe_worker(registry, job.plan, started, ok=False)
        return PlanJobOutcome(
            x_hat=None,
            info={},
            charges=charges,
            records=records,
            spans=worker_tracer.spans() if worker_tracer is not None else [],
            metrics=registry.export_state(),
            error=_portable_exception(exc),
            error_type=type(exc).__name__,
            error_message=str(exc),
        )
    _observe_worker(registry, job.plan, started, ok=True)
    return PlanJobOutcome(
        x_hat=np.asarray(result.x_hat),
        info=dict(result.info),
        charges=charges,
        records=records,
        spans=worker_tracer.spans() if worker_tracer is not None else [],
        metrics=registry.export_state(),
    )


def _observe_worker(
    registry: MetricsRegistry, plan: str, started: float, ok: bool
) -> None:
    """Worker-side instruments; merged into the live registry on adoption."""
    registry.counter(
        "worker_plan_runs", plan=plan, outcome="ok" if ok else "error"
    ).inc()
    registry.histogram("worker_plan_seconds", plan=plan).observe(
        time.perf_counter() - started
    )


def adopt_outcome(session, outcome: PlanJobOutcome) -> None:
    """Fold a worker's charges and history into the live session's kernel.

    Must run under the session lock.  Charges go through the real tracker's
    root-level :meth:`~repro.private.budget.BudgetTracker.charge` — the
    acceptance check re-runs against the live ledger (the worker already
    passed an identical one) and the write-ahead ``charge_listener`` fires,
    so a journaled session journals adopted charges exactly like local ones.
    Measurement records land via
    :meth:`~repro.private.kernel.ProtectedKernel.adopt_measurement`, which
    also mirrors them to the journal.
    """
    from ..accounting.base import Cost
    from ..private.exceptions import BudgetExceededError
    from ..private.kernel import MeasurementRecord

    tracker = session.kernel.budget_tracker
    for primary, delta in outcome.charges:
        cost = Cost(float(primary), float(delta))
        if not tracker.charge(tracker.root_name, cost):
            # Tolerance-edge divergence between the worker's replayed ledger
            # and the live one: the answer is withheld (nothing released), so
            # rejecting here loses work but never privacy.
            raise BudgetExceededError(cost.primary, tracker.remaining())
    for record in outcome.records:
        if not isinstance(record, MeasurementRecord):  # pragma: no cover - defensive
            record = MeasurementRecord(**dict(record))
        session.kernel.adopt_measurement(record)


class ProcessExecutor(ExecutorBackend):
    """Plan compute in worker processes, driving in a local thread pool.

    ``mp_context`` defaults to ``forkserver`` (clean-state forks that cannot
    inherit another thread's locks — the scheduler's driver threads make a
    plain ``fork`` unsafe), falling back to ``spawn`` where unavailable.
    Workers share one cross-process
    :class:`~repro.service.artifact_cache.SharedArtifactStore` so a Gram
    factorisation built for one shard's request serves every other worker;
    pass ``shared_store`` to join an existing tier (or ``None`` to create
    one owned by this backend).
    """

    name = "process"
    remote_plans = True

    def __init__(
        self,
        max_workers: int = 2,
        driver_threads: int | None = None,
        mp_context: str | None = None,
        shared_store=None,
    ):
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        self.max_workers = max(int(max_workers), 1)
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = "forkserver" if "forkserver" in methods else "spawn"
        ctx = mp.get_context(mp_context) if isinstance(mp_context, str) else mp_context
        self._owns_store = shared_store is None
        if shared_store is None:
            from .artifact_cache import SharedArtifactStore

            shared_store = SharedArtifactStore()
        self.shared_store = shared_store
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=ctx,
            initializer=_init_plan_worker,
            initargs=(shared_store.state(),),
        )
        self._drivers = ThreadPoolExecutor(
            max_workers=driver_threads if driver_threads is not None else max(self.max_workers, 4),
            thread_name_prefix="svc-driver",
        )

    def submit(self, fn, *args) -> Future:
        return self._drivers.submit(fn, *args)

    def run_plan(self, invoke, job: PlanJob | None = None):
        if job is None:
            return invoke()
        return self._pool.submit(execute_plan_job, job).result()

    def shutdown(self, wait: bool = True) -> None:
        self._drivers.shutdown(wait=wait)
        self._pool.shutdown(wait=wait)
        if self._owns_store:
            self.shared_store.close()


def make_executor(spec, max_workers: int = 4) -> ExecutorBackend:
    """Resolve ``PlanScheduler(executor=...)``: an instance is used as-is, a
    name constructs the matching backend sized to ``max_workers``."""
    if isinstance(spec, ExecutorBackend):
        return spec
    if spec is None or spec == "thread":
        return ThreadExecutor(max_workers=max_workers)
    if spec == "inline":
        return InlineExecutor()
    if spec == "process":
        return ProcessExecutor(max_workers=max_workers)
    raise ValueError(
        f"unknown executor {spec!r}; expected 'inline', 'thread', 'process' "
        "or an ExecutorBackend instance"
    )
