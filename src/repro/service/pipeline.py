"""The per-request execution pipeline: composable stages around any backend.

PR-1 grew the request lifecycle inside two scheduler methods; this module
factors it into middleware-style **stages** so robustness and telemetry wrap
every :class:`~repro.service.executors.ExecutorBackend` uniformly.  Each
stage implements ``run(ctx, proceed)`` — do its part, call ``proceed(ctx)``
for the rest of the chain, and unwind its bracket on the way out.  The
default chain is::

    guard → admission → breaker → session lock → journal commit → trace
          → [locked interior: deadline gate → cache probe → plan run]

and the unwind order is what the privacy story requires: the terminal stages
record their :class:`~repro.service.session.SessionEvent` and fold their one
outcome into the metrics registry, and ``journal commit`` flushes the
write-ahead journal *before* the response (or exception) leaves the session
lock — so nothing a client ever saw can be lost, and nothing lost was ever
seen.

The locked interior is reached through
:meth:`~repro.service.scheduler.PlanScheduler._run_locked`, the scheduler's
documented seam for tests that need to stall or wrap plan execution while
the session lock is held.

Stages hold a reference to the scheduler (``svc``) for its caches, metrics,
tracer and executor; the :class:`RequestContext` carries everything
per-request.  The admission and breaker gates live in
:mod:`~repro.service.robustness` next to the primitives they wrap.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from ..durability.serialize import encode
from ..durability.snapshot import response_state
from ..plans.base import PlanResult
from ..plans.registry import make_plan
from ..private.exceptions import DeadlineExceededError
from ..telemetry.context import current_context
from ..telemetry.spans import NOOP_SPAN, NULL_TRACER, activate
from .api import QueryRequest, QueryResponse, RequestFailure
from .executors import PlanJob, adopt_outcome
from .robustness import AdmissionGate, BreakerGate, SessionClosedError
from .session import Session, SessionEvent

__all__ = [
    "CacheProbeStage",
    "DeadlineGateStage",
    "GuardStage",
    "JournalCommitStage",
    "PlanRunStage",
    "RequestContext",
    "RequestPipeline",
    "RunLockedStage",
    "SessionLockStage",
    "TraceStage",
    "default_stages",
    "derive_request_seed",
    "locked_stages",
]


def derive_request_seed(
    base_seed: int, session_id: str, request_id: str, query_material: str = ""
) -> int:
    """Deterministic 64-bit seed for one request's noise.

    ``query_material`` mixes the query's identity (the request cache key)
    into the seed, so a client reusing a request id for a *different* query
    can never replay the same noise stream across distinct measurements —
    while the same (session, request id, query) triple always reproduces the
    same response.  Nothing scheduling-dependent feeds the derivation: not
    the executor backend, not the shard, not the thread — which is what
    makes answers byte-identical no matter where a request runs.
    """
    material = f"{base_seed}:{session_id}:{request_id}:{query_material}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def _attach_failure(exc: BaseException, failure: RequestFailure) -> None:
    """Best-effort structured context on the original exception object."""
    try:
        exc.request_failure = failure  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - slotted exception classes
        pass


@dataclass
class RequestContext:
    """Everything one in-flight request carries between stages."""

    session: Session
    request: QueryRequest
    queued_at: float | None
    #: root span of the request's trace (NOOP_SPAN when tracing is off).
    root: object = NOOP_SPAN
    #: wall-clock anchor of the locked interior (set by the deadline gate).
    start: float = 0.0
    queue_wait: float = 0.0
    #: the deadline counts from scheduling — queue wait is latency the
    #: client experiences too.
    deadline_anchor: float = 0.0
    key: tuple = ()
    #: pin the root span's trace id (retries link attempts into one trace).
    trace_id: str | None = None
    #: 1-based attempt number under :meth:`PlanScheduler.execute_with_retry`.
    attempt: int = 1


class RequestPipeline:
    """A chain of stages executed middleware-style around one request."""

    def __init__(self, stages):
        self.stages = list(stages)

    def execute(
        self,
        session: Session,
        request: QueryRequest,
        queued_at: float | None,
        trace_id: str | None = None,
        attempt: int = 1,
    ) -> QueryResponse:
        ctx = RequestContext(
            session=session,
            request=request,
            queued_at=queued_at,
            trace_id=trace_id,
            attempt=attempt,
        )
        return self.run_ctx(ctx)

    def run_ctx(self, ctx: RequestContext) -> QueryResponse:
        return self._call(ctx, 0)

    def _call(self, ctx: RequestContext, index: int) -> QueryResponse:
        if index == len(self.stages):
            raise RuntimeError("pipeline has no terminal stage")
        stage = self.stages[index]
        return stage.run(ctx, lambda c, _i=index + 1: self._call(c, _i))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RequestPipeline({' → '.join(s.name for s in self.stages)})"


class _Stage:
    name = "stage"

    def __init__(self, svc):
        self.svc = svc


class GuardStage(_Stage):
    """Fault-injection seam plus the pre-admission closed-session check."""

    name = "guard"

    def run(self, ctx, proceed):
        svc = self.svc
        if svc.fault_injector is not None:
            svc.fault_injector.fire("scheduler.worker", ctx.request.request_id)
        if ctx.session.closing:
            raise SessionClosedError(
                f"session {ctx.session.session_id!r} is closed; "
                f"request {ctx.request.request_id!r} rejected"
            )
        return proceed(ctx)


class SessionLockStage(_Stage):
    """Serialise on the session lock (sequential composition demands it)."""

    name = "lock"

    def run(self, ctx, proceed):
        with ctx.session.lock:
            # Re-checked under the lock: a drain-close marks the session
            # closing, then waits for this lock — anything still queued
            # behind it must reject, not execute against a closed ledger.
            if ctx.session.closing:
                raise SessionClosedError(
                    f"session {ctx.session.session_id!r} closed while request "
                    f"{ctx.request.request_id!r} was queued"
                )
            return proceed(ctx)


class JournalCommitStage(_Stage):
    """Commit the write-ahead journal before anything leaves the lock."""

    name = "journal-commit"

    def run(self, ctx, proceed):
        try:
            return proceed(ctx)
        finally:
            # A crash after this line loses nothing a client ever saw.
            self.svc._commit_journal(ctx.session)


class TraceStage(_Stage):
    """Open the ``service.request`` root span and activate the tracer."""

    name = "trace"

    def run(self, ctx, proceed):
        tracer = self.svc.tracer
        if tracer is NULL_TRACER:
            return proceed(ctx)
        request, session = ctx.request, ctx.session
        with activate(tracer), tracer.span(
            "service.request",
            trace_id=ctx.trace_id,
            request_id=request.request_id,
            session=session.session_id,
            tenant=session.tenant,
            plan=request.plan,
            workload=request.workload,
            epsilon=float(request.epsilon),
            attempt=ctx.attempt,
        ) as root:
            ctx.root = root
            response = proceed(ctx)
            root.set_attributes(
                cached=response.cached, epsilon_spent=float(response.epsilon_spent)
            )
            return response


class RunLockedStage(_Stage):
    """Hand off to the scheduler's ``_run_locked`` seam (the locked interior).

    Terminal stage of the *outer* chain.  Going through the scheduler method
    — rather than chaining the interior stages directly — keeps the seam
    tests and subclasses wrap to stall or observe plan execution while the
    session lock is held.
    """

    name = "run-locked"

    def run(self, ctx, proceed):
        return self.svc._run_locked(ctx.session, ctx.request, ctx.queued_at, ctx.root)


class DeadlineGateStage(_Stage):
    """Anchor request timing; reject requests that expired while queued."""

    name = "deadline-gate"

    def run(self, ctx, proceed):
        request = ctx.request
        ctx.start = time.perf_counter()
        ctx.queue_wait = (
            max(ctx.start - ctx.queued_at, 0.0) if ctx.queued_at is not None else 0.0
        )
        ctx.key = request.cache_key()
        ctx.deadline_anchor = ctx.queued_at if ctx.queued_at is not None else ctx.start
        if (
            request.deadline_seconds is not None
            and ctx.start - ctx.deadline_anchor > request.deadline_seconds
        ):
            raise self._reject_expired(ctx, ctx.start - ctx.deadline_anchor)
        return proceed(ctx)

    def _reject_expired(self, ctx, waited: float) -> DeadlineExceededError:
        """Ledger a request that timed out while queued (zero spend)."""
        session, request = ctx.session, ctx.request
        snapshot = session.kernel.budget_snapshot()
        duration = time.perf_counter() - ctx.start
        session.record(
            SessionEvent(
                request_id=request.request_id,
                plan=request.plan,
                workload=request.workload,
                epsilon_requested=request.epsilon,
                epsilon_spent=0.0,
                cached=False,
                seed=None,
                history_start=snapshot.num_measurements,
                history_end=snapshot.num_measurements,
                tag=request.tag,
                error="DeadlineExceededError",
                duration_seconds=duration,
                queue_wait_seconds=ctx.queue_wait,
                trace_id=ctx.root.trace_id,
                shard_id=session.shard_id,
            )
        )
        self.svc.metrics.counter(
            "service_deadline_timeouts", tenant=session.tenant, plan=request.plan
        ).inc()
        self.svc._observe(session, request, "timeout", duration, ctx.queue_wait, 0.0)
        exc = DeadlineExceededError(request.deadline_seconds, waited)
        _attach_failure(
            exc,
            RequestFailure(
                request_id=request.request_id,
                session_id=session.session_id,
                plan=request.plan,
                error_type="DeadlineExceededError",
                message=str(exc),
                trace_id=ctx.root.trace_id,
            ),
        )
        return exc


class CacheProbeStage(_Stage):
    """Replay an identical already-released answer at zero additional ε."""

    name = "cache-probe"

    def run(self, ctx, proceed):
        request, session = ctx.request, ctx.session
        if not request.reuse:
            return proceed(ctx)
        entry = self.svc.measurement_cache.lookup(session, ctx.key)
        if entry is None:
            return proceed(ctx)
        response = self.svc.measurement_cache.replay(entry, request.request_id)
        # The cached response carries the accounting snapshot of the
        # request that paid for it; refresh to the session's current
        # state (a replay spends nothing, but spend may have moved
        # since the entry was stored).
        response.accounting = session.accounting_report()
        response.trace_id = ctx.root.trace_id
        response.shard_id = session.shard_id
        duration = time.perf_counter() - ctx.start
        response.elapsed_seconds = duration
        session.record(
            SessionEvent(
                request_id=request.request_id,
                plan=request.plan,
                workload=request.workload,
                epsilon_requested=request.epsilon,
                epsilon_spent=0.0,
                cached=True,
                seed=response.seed,
                history_start=entry.history_start,
                history_end=entry.history_start,
                tag=request.tag,
                duration_seconds=duration,
                queue_wait_seconds=ctx.queue_wait,
                trace_id=ctx.root.trace_id,
                shard_id=session.shard_id,
            )
        )
        self.svc._observe(session, request, "cached", duration, ctx.queue_wait, 0.0)
        return response


class PlanRunStage(_Stage):
    """Terminal stage: run the plan (locally or on the executor's workers),
    account for it exactly, release and journal the answer."""

    name = "plan-run"

    def run(self, ctx, proceed):
        svc = self.svc
        session, request = ctx.session, ctx.request
        workload_matrix = (
            svc.artifact_cache.workload(request.workload, request.workload_params)
            if request.workload is not None
            else None
        )
        plan = make_plan(request.plan, request.plan_params)
        source = session.vector_source()
        if workload_matrix is not None and workload_matrix.shape[1] != source.domain_size:
            raise self._reject_mismatch(ctx, workload_matrix, source)

        seed = derive_request_seed(
            session.base_seed, session.session_id, request.request_id, repr(ctx.key)
        )
        session.kernel.reseed(seed)
        kernel = session.kernel
        before = kernel.budget_snapshot()
        try:
            if request.deadline_seconds is not None:
                kernel.deadline = ctx.deadline_anchor + request.deadline_seconds
                kernel.deadline_started = ctx.deadline_anchor
            # The shared artifact cache rides along so plan inference reuses
            # data-independent Gram factorisations across requests and
            # tenants, keyed by each strategy's canonical strategy_key().
            # Every backend places plan compute under an ``executor.worker``
            # span — locally it is opened here around the in-process run,
            # remotely the worker's private tracer opens it and the span is
            # adopted back — so inline/thread/process traces are structurally
            # identical (only the pid attribute differs).
            with svc.tracer.span("plan.run", plan=request.plan):
                if svc.executor.remote_plans:
                    result = self._run_remote(ctx, seed, before)
                else:
                    with svc.tracer.span(
                        "executor.worker",
                        backend=svc.executor.name,
                        pid=os.getpid(),
                        plan=request.plan,
                    ):
                        result = svc.executor.run_plan(
                            lambda: plan.run(
                                source, request.epsilon, gram_cache=svc.artifact_cache
                            )
                        )
            answers = (
                result.answer(workload_matrix) if workload_matrix is not None else None
            )
            if kernel.deadline is not None:
                now = time.perf_counter()
                if now > kernel.deadline:
                    # Timed out after the last charge: the answer is complete
                    # but late; it is withheld, and the spend below is the
                    # request's true (here: full) partial spend.
                    raise DeadlineExceededError(
                        request.deadline_seconds, now - ctx.deadline_anchor
                    )
        except Exception as exc:
            self._ledger_failure(ctx, exc, seed, before)
            raise
        finally:
            kernel.deadline = None
            kernel.deadline_started = None
        after = kernel.budget_snapshot()
        duration = time.perf_counter() - ctx.start
        response = QueryResponse(
            request_id=request.request_id,
            session_id=session.session_id,
            plan=request.plan,
            epsilon_requested=request.epsilon,
            epsilon_spent=kernel.budget_charged_between(before, after),
            x_hat=result.x_hat,
            answers=answers,
            cached=False,
            seed=seed,
            info=dict(result.info),
            elapsed_seconds=duration,
            accounting=session.accounting_report(),
            trace_id=ctx.root.trace_id,
            shard_id=session.shard_id,
        )
        svc.measurement_cache.store(
            session, ctx.key, response, before.num_measurements, after.num_measurements
        )
        if session.journal is not None:
            # Journal the release before the event that claims it: restores
            # replay the answer byte-identical into the cache, so an
            # identical post-crash request costs zero additional ε.
            session.journal.append(
                {
                    "kind": "release",
                    "key": encode(ctx.key),
                    "response": encode(response_state(response)),
                    "history_start": before.num_measurements,
                    "history_end": after.num_measurements,
                }
            )
        session.record(
            SessionEvent(
                request_id=request.request_id,
                plan=request.plan,
                workload=request.workload,
                epsilon_requested=request.epsilon,
                epsilon_spent=response.epsilon_spent,
                cached=False,
                seed=seed,
                history_start=before.num_measurements,
                history_end=after.num_measurements,
                tag=request.tag,
                duration_seconds=duration,
                queue_wait_seconds=ctx.queue_wait,
                trace_id=ctx.root.trace_id,
                shard_id=session.shard_id,
            )
        )
        svc._observe(
            session, request, "ok", duration, ctx.queue_wait, response.epsilon_spent
        )
        return response

    # ------------------------------------------------------------------
    # Remote compute (process backend).
    # ------------------------------------------------------------------
    def _run_remote(self, ctx, seed: int, before) -> PlanResult:
        """Ship the plan to a worker process and adopt its accounting.

        The session lock is held for the whole round trip, so the budget
        baseline the job carries cannot move underneath the worker; adopted
        charges re-run the live tracker's acceptance (journaling as they go)
        and the derived seed makes the answer byte-identical to local
        execution.  The job carries the current trace position, and the
        worker's spans and metrics delta are adopted *before* any error is
        re-raised — a failed remote plan keeps its trace and its counters.
        """
        session, request = ctx.session, ctx.request
        svc = self.svc
        trace = current_context(svc.tracer)
        spent = session.kernel.budget_spent_cost()
        deadline_remaining = None
        if request.deadline_seconds is not None:
            deadline_remaining = (
                ctx.deadline_anchor + request.deadline_seconds - time.perf_counter()
            )
        job = PlanJob(
            table=session.table,
            accountant=session.accountant.name,
            epsilon_total=session.requested_epsilon_total,
            delta=session.requested_delta,
            seed=seed,
            prior_primary=spent.primary,
            prior_delta=spent.delta,
            plan=request.plan,
            plan_params=dict(request.plan_params),
            epsilon=request.epsilon,
            deadline_remaining=deadline_remaining,
            trace=trace,
        )
        outcome = svc.executor.run_plan(None, job)
        svc.metrics.merge_state(outcome.metrics)
        if trace is not None and outcome.spans:
            svc.tracer.adopt(
                outcome.spans,
                trace_id=trace.trace_id,
                parent_id=trace.parent_span_id,
            )
        adopt_outcome(session, outcome)
        if outcome.x_hat is None:
            outcome.raise_error()
        return PlanResult(
            x_hat=outcome.x_hat,
            budget_spent=session.kernel.budget_charged_between(before),
            info=dict(outcome.info),
        )

    # ------------------------------------------------------------------
    # Terminal error accounting.
    # ------------------------------------------------------------------
    def _reject_mismatch(self, ctx, workload_matrix, source) -> ValueError:
        """Reject before any budget is spent: a mismatched workload can only
        produce garbage answers (or crash after the charge).  The rejection
        is still ledgered — an errored zero-spend event with an empty history
        span — so the audit trail has one entry per scheduled request,
        exactly like plans that fail mid-run."""
        session, request = ctx.session, ctx.request
        snapshot = session.kernel.budget_snapshot()
        duration = time.perf_counter() - ctx.start
        session.record(
            SessionEvent(
                request_id=request.request_id,
                plan=request.plan,
                workload=request.workload,
                epsilon_requested=request.epsilon,
                epsilon_spent=0.0,
                cached=False,
                seed=None,
                history_start=snapshot.num_measurements,
                history_end=snapshot.num_measurements,
                tag=request.tag,
                error="ValueError",
                duration_seconds=duration,
                queue_wait_seconds=ctx.queue_wait,
                trace_id=ctx.root.trace_id,
                shard_id=session.shard_id,
            )
        )
        self.svc._observe(session, request, "rejected", duration, ctx.queue_wait, 0.0)
        exc = ValueError(
            f"workload {request.workload!r} has {workload_matrix.shape[1]} columns "
            f"but session {session.session_id!r} has a {source.domain_size}-cell domain"
        )
        _attach_failure(
            exc,
            RequestFailure(
                request_id=request.request_id,
                session_id=session.session_id,
                plan=request.plan,
                error_type="ValueError",
                message=str(exc),
                trace_id=ctx.root.trace_id,
            ),
        )
        return exc

    def _ledger_failure(self, ctx, exc: Exception, seed: int, before) -> None:
        """A request can fail after spending part (or all) of its budget — a
        multi-measurement plan mid-run, or answer post-processing; the ledger
        must still claim that spend (and its history rows) or the audit would
        never reconcile again."""
        session, request = ctx.session, ctx.request
        after = session.kernel.budget_snapshot()
        spent = session.kernel.budget_charged_between(before, after)
        duration = time.perf_counter() - ctx.start
        session.record(
            SessionEvent(
                request_id=request.request_id,
                plan=request.plan,
                workload=request.workload,
                epsilon_requested=request.epsilon,
                epsilon_spent=spent,
                cached=False,
                seed=seed,
                history_start=before.num_measurements,
                history_end=after.num_measurements,
                tag=request.tag,
                error=type(exc).__name__,
                duration_seconds=duration,
                queue_wait_seconds=ctx.queue_wait,
                trace_id=ctx.root.trace_id,
                shard_id=session.shard_id,
            )
        )
        if isinstance(exc, DeadlineExceededError):
            self.svc.metrics.counter(
                "service_deadline_timeouts",
                tenant=session.tenant,
                plan=request.plan,
            ).inc()
            outcome = "timeout"
        else:
            outcome = "error"
        self.svc._observe(session, request, outcome, duration, ctx.queue_wait, spent)
        _attach_failure(
            exc,
            RequestFailure(
                request_id=request.request_id,
                session_id=session.session_id,
                plan=request.plan,
                error_type=type(exc).__name__,
                message=str(exc),
                trace_id=ctx.root.trace_id,
                epsilon_spent=spent,
            ),
        )


def default_stages(svc) -> list:
    """The outer chain: guards → robustness gates → lock/durability →
    telemetry → locked interior.  Order is load-bearing; see the module
    docstring."""
    return [
        GuardStage(svc),
        AdmissionGate(svc),
        BreakerGate(svc),
        SessionLockStage(svc),
        JournalCommitStage(svc),
        TraceStage(svc),
        RunLockedStage(svc),
    ]


def locked_stages(svc) -> list:
    """The locked interior (entered via ``PlanScheduler._run_locked``)."""
    return [
        DeadlineGateStage(svc),
        CacheProbeStage(svc),
        PlanRunStage(svc),
    ]
