"""Request-lifecycle robustness: retries, admission control, circuit breaking.

The scheduler composes these around plan execution:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  deterministic jitter for *transient* faults.  Retries are budget-safe by
  construction: the retried attempt keeps the same request id (hence the
  same derived noise seed and cache key) and forces ``reuse=True``, so a
  request whose answer was already journaled/cached before the fault is
  replayed at zero additional ε instead of being re-charged.  Only a fault
  that struck *before* any completed release re-runs the plan — and a
  mid-plan fault's partial spend was already ledgered as an errored event
  (charge-ahead: wasted, never leaked).
* :class:`AdmissionController` — queue-depth backpressure plus per-tenant
  in-flight caps.  Requests over a cap are rejected with
  :class:`AdmissionError` *before* touching any session state (no budget, no
  ledger entry), which is what lets a saturated service stay audit-exact.
* :class:`CircuitBreaker` — per-plan failure tracking.  After
  ``failure_threshold`` consecutive failures a plan's circuit opens and the
  scheduler sheds its requests to a degraded-but-cheap fallback plan
  (default ``"Identity"``) instead of failing the tenant; after
  ``cooldown_seconds`` one probe request is let through (half-open) and a
  success re-closes the circuit.

:class:`SessionClosedError` is the documented rejection for requests that
race a session close — see :meth:`repro.service.SessionManager.close`.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from ..durability.faults import InjectedFault
from ..private.exceptions import DeadlineExceededError
from ..telemetry.clock import DEFAULT_CLOCK, Clock

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionGate",
    "BreakerGate",
    "CircuitBreaker",
    "RetryPolicy",
    "SessionClosedError",
]


class AdmissionError(RuntimeError):
    """A request rejected by admission control before touching any session.

    Not ledgered: nothing was scheduled, nothing spent.  Clients should back
    off and resubmit; ``scope`` says which cap fired ("queue" or "tenant").
    """

    def __init__(self, scope: str, limit: int):
        self.scope = scope
        self.limit = limit
        super().__init__(f"admission rejected: {scope} cap of {limit} reached")


class SessionClosedError(RuntimeError):
    """A request that raced a session close; the session's ledger is final."""


def _default_transient(exc: BaseException) -> bool:
    """Transient by default: injected-transient faults and I/O errors."""
    if isinstance(exc, InjectedFault):
        return exc.transient
    if isinstance(exc, DeadlineExceededError):
        return False
    return isinstance(exc, (OSError, ConnectionError))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for transient faults.

    ``delay(attempt)`` for attempt ``k`` (0-based count of *failed* attempts)
    is ``min(base_delay * backoff**k, max_delay)`` scaled by a jitter factor
    in ``[1 - jitter, 1 + jitter]``; the jitter stream is seeded, so a test's
    retry timing is reproducible.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    backoff: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int | None = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether one more attempt may help (transient faults only)."""
        return _default_transient(exc)

    def delay(self, failed_attempts: int, rng: random.Random) -> float:
        raw = min(
            self.base_delay * self.backoff ** max(failed_attempts - 1, 0),
            self.max_delay,
        )
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class AdmissionController:
    """Queue-depth backpressure and per-tenant in-flight caps.

    ``max_queue_depth`` bounds requests admitted service-wide (executing or
    waiting on a session lock); ``max_inflight_per_tenant`` bounds one
    tenant's concurrent requests so a single noisy tenant cannot occupy the
    whole pool.  ``None`` disables a cap.
    """

    def __init__(
        self,
        max_queue_depth: int | None = None,
        max_inflight_per_tenant: int | None = None,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if max_inflight_per_tenant is not None and max_inflight_per_tenant < 1:
            raise ValueError("max_inflight_per_tenant must be at least 1")
        self.max_queue_depth = max_queue_depth
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self._lock = threading.Lock()
        self._total = 0
        self._per_tenant: dict[str, int] = {}
        self.rejections = 0

    def acquire(self, tenant: str) -> None:
        """Admit one request or raise :class:`AdmissionError` (no blocking)."""
        with self._lock:
            if self.max_queue_depth is not None and self._total >= self.max_queue_depth:
                self.rejections += 1
                raise AdmissionError("queue", self.max_queue_depth)
            tenant_count = self._per_tenant.get(tenant, 0)
            if (
                self.max_inflight_per_tenant is not None
                and tenant_count >= self.max_inflight_per_tenant
            ):
                self.rejections += 1
                raise AdmissionError("tenant", self.max_inflight_per_tenant)
            self._total += 1
            self._per_tenant[tenant] = tenant_count + 1

    def release(self, tenant: str) -> None:
        with self._lock:
            self._total -= 1
            remaining = self._per_tenant.get(tenant, 1) - 1
            if remaining <= 0:
                self._per_tenant.pop(tenant, None)
            else:
                self._per_tenant[tenant] = remaining

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "in_flight": self._total,
                "per_tenant": dict(self._per_tenant),
                "rejections": self.rejections,
            }


#: CircuitBreaker.admit outcomes.
ALLOW, SHED, PROBE = "allow", "shed", "probe"


@dataclass
class _PlanCircuit:
    consecutive_failures: int = 0
    opened_at: float | None = None
    probing: bool = False
    shed_count: int = 0


class CircuitBreaker:
    """Per-plan circuit breaker shedding to a cheap fallback plan.

    State machine per plan name: *closed* (normal) → *open* after
    ``failure_threshold`` consecutive failures (requests shed to
    ``fallback_plan``) → *half-open* after ``cooldown_seconds`` (one probe
    request runs the real plan; success closes, failure re-opens).  Responses
    served via the fallback carry ``info["degraded_from"]`` so clients can
    tell a degraded answer from the real one.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 30.0,
        fallback_plan: str = "Identity",
        clock: Clock | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = float(cooldown_seconds)
        self.fallback_plan = fallback_plan
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        self._lock = threading.Lock()
        self._circuits: dict[str, _PlanCircuit] = {}

    def _circuit(self, plan: str) -> _PlanCircuit:
        circuit = self._circuits.get(plan)
        if circuit is None:
            circuit = self._circuits[plan] = _PlanCircuit()
        return circuit

    def admit(self, plan: str) -> str:
        """Routing decision for one request of ``plan``.

        Returns :data:`ALLOW` (run it), :data:`SHED` (run the fallback) or
        :data:`PROBE` (run it, and let its outcome close or re-open the
        circuit).
        """
        with self._lock:
            circuit = self._circuit(plan)
            if circuit.opened_at is None:
                return ALLOW
            if circuit.probing:
                # One probe at a time; everyone else keeps shedding.
                circuit.shed_count += 1
                return SHED
            if self._clock() - circuit.opened_at >= self.cooldown_seconds:
                circuit.probing = True
                return PROBE
            circuit.shed_count += 1
            return SHED

    def record_success(self, plan: str) -> None:
        with self._lock:
            circuit = self._circuit(plan)
            circuit.consecutive_failures = 0
            circuit.opened_at = None
            circuit.probing = False

    def record_failure(self, plan: str) -> bool:
        """Record one failure; returns True when the circuit (re)opened.

        True on the closed→open transition and on a failed probe (which
        restarts the cooldown) — the two events an operator wants a
        postmortem bundle for; repeat failures against an already-open
        circuit return False.
        """
        with self._lock:
            circuit = self._circuit(plan)
            circuit.consecutive_failures += 1
            was_probing = circuit.probing
            circuit.probing = False
            if circuit.opened_at is not None:
                # A failed probe re-opens the cooldown window from now.
                circuit.opened_at = self._clock()
                return was_probing
            if circuit.consecutive_failures >= self.failure_threshold:
                circuit.opened_at = self._clock()
                return True
            return False

    def is_open(self, plan: str) -> bool:
        with self._lock:
            return self._circuit(plan).opened_at is not None

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                plan: {
                    "open": circuit.opened_at is not None,
                    "consecutive_failures": circuit.consecutive_failures,
                    "shed_count": circuit.shed_count,
                }
                for plan, circuit in self._circuits.items()
            }


# ----------------------------------------------------------------------
# Pipeline gates: the robustness primitives as composable request stages.
# ----------------------------------------------------------------------
class AdmissionGate:
    """Pipeline stage bracketing one request with admission acquire/release.

    Part of the :class:`~repro.service.pipeline.RequestPipeline`; a no-op
    when the scheduler was built without an
    :class:`AdmissionController`.  Rejections count into
    ``service_admission_rejections`` and never touch session state.
    """

    name = "admission"

    def __init__(self, svc):
        self.svc = svc

    def run(self, ctx, proceed):
        admission = self.svc.admission
        if admission is None:
            return proceed(ctx)
        tenant = ctx.session.tenant
        try:
            admission.acquire(tenant)
        except AdmissionError:
            self.svc.metrics.counter(
                "service_admission_rejections", tenant=tenant
            ).inc()
            raise
        try:
            return proceed(ctx)
        finally:
            admission.release(tenant)


class BreakerGate:
    """Pipeline stage routing one request through the circuit breaker.

    On :data:`SHED` the request is rewritten to the breaker's fallback plan
    (the response carries ``info["degraded_from"]``); otherwise the real
    plan's outcome feeds the circuit — except a racing session close, which
    says nothing about the plan's health.
    """

    name = "breaker"

    def __init__(self, svc):
        self.svc = svc

    def run(self, ctx, proceed):
        breaker = self.svc.breaker
        if breaker is None:
            return proceed(ctx)
        from dataclasses import replace

        plan_name = ctx.request.plan
        decision = breaker.admit(plan_name)
        if decision == SHED:
            ctx.request = replace(
                ctx.request, plan=breaker.fallback_plan, plan_params={}
            )
            self.svc.metrics.counter(
                "service_shed_requests", tenant=ctx.session.tenant, plan=plan_name
            ).inc()
            response = proceed(ctx)
            response.info["degraded_from"] = plan_name
            return response
        try:
            response = proceed(ctx)
        except SessionClosedError:
            # A close racing the request says nothing about the plan.
            raise
        except Exception:
            if breaker.record_failure(plan_name):
                postmortem = getattr(self.svc, "_postmortem", None)
                if postmortem is not None:
                    postmortem("breaker_open", plan=plan_name)
            raise
        breaker.record_success(plan_name)
        return response
