"""Structured audit export of sessions and the whole service.

Serialises a session's audit trail — the per-request
:class:`~repro.service.session.SessionEvent` ledger plus the kernel's
source-level :class:`~repro.private.audit.BudgetAudit` — into plain
JSON-ready dictionaries, and reconciles the two accountings: the sum of
``epsilon_spent`` over the service's events must equal the kernel's own
``budget_consumed()`` exactly, or something double-charged or leaked.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict

from ..private.audit import audit_kernel
from .session import Session, SessionManager

#: Tolerance used when comparing two float ledgers that should be identical.
RECONCILE_TOLERANCE = 1e-9


def session_report(session: Session) -> dict:
    """JSON-ready accounting of one session.

    Combines the service-level event ledger with the kernel-level audit from
    :func:`repro.private.audit.audit_kernel`, so a practitioner can trace any
    request down to the measurement records that paid for it.
    """
    with session.lock:  # consistent view while requests may be in flight
        return _session_report_locked(session)


def _timing_summary(events) -> dict:
    """Latency digest of a session's audit trail (durations are on-event)."""
    durations = sorted(event.duration_seconds for event in events)
    queue_waits = [event.queue_wait_seconds for event in events]
    if not durations:
        return {
            "num_timed": 0,
            "total_seconds": 0.0,
            "mean_seconds": 0.0,
            "p50_seconds": 0.0,
            "p95_seconds": 0.0,
            "max_seconds": 0.0,
            "total_queue_wait_seconds": 0.0,
            "max_queue_wait_seconds": 0.0,
        }

    def rank(q: float) -> float:
        return durations[min(int(q * len(durations)), len(durations) - 1)]

    total = math.fsum(durations)
    return {
        "num_timed": len(durations),
        "total_seconds": total,
        "mean_seconds": total / len(durations),
        "p50_seconds": rank(0.50),
        "p95_seconds": rank(0.95),
        "max_seconds": durations[-1],
        "total_queue_wait_seconds": math.fsum(queue_waits),
        "max_queue_wait_seconds": max(queue_waits),
    }


def _session_report_locked(session: Session) -> dict:
    audit = audit_kernel(session.kernel)
    return {
        "session_id": session.session_id,
        "tenant": session.tenant,
        "closed": session.closed,
        "epsilon_total": session.epsilon_total,
        "budget_consumed": session.budget_consumed(),
        "budget_remaining": session.budget_remaining(),
        "num_requests": len(session.events),
        "num_cached": sum(1 for event in session.events if event.cached),
        # The tenant's accountant choice and its converted (ε, δ) statement:
        # budget totals above are native units (ρ for a zCDP session), this
        # section is the DP guarantee a practitioner quotes.
        "accounting": session.accounting_report(),
        # Wall-clock digest of the per-request timings stamped on every event
        # (duration under the session lock plus scheduling queue-wait).
        "telemetry": _timing_summary(session.events),
        "events": [asdict(event) for event in session.events],
        "kernel_audit": {
            "accountant": audit.accountant,
            "epsilon_total": audit.epsilon_total,
            "consumed_at_root": audit.consumed_at_root,
            "remaining": audit.remaining,
            "epsilon_reported": audit.epsilon_reported,
            "delta_reported": audit.delta_reported,
            "num_measurements": audit.num_measurements,
            "sources": [asdict(source) for source in audit.sources],
        },
    }


def reconcile(session: Session) -> dict:
    """Check the service ledger against the kernel ledger.

    Returns a report with ``exact`` True iff the sum of the events'
    ``epsilon_spent`` equals the kernel's root-level consumption (within
    float tolerance) *and* every measurement record is claimed by exactly one
    non-cached event's history span.
    """
    with session.lock:  # events and kernel counters must be read atomically
        events = list(session.events)
        kernel_total = session.budget_consumed()
        num_records = len(session.kernel.history())
    service_total = math.fsum(event.epsilon_spent for event in events)
    claimed = []
    for event in events:
        if not event.cached:
            claimed.extend(range(event.history_start, event.history_end))
    spans_exact = sorted(claimed) == list(range(num_records))
    return {
        "session_id": session.session_id,
        "service_epsilon": service_total,
        "kernel_epsilon": kernel_total,
        "difference": service_total - kernel_total,
        "history_records": num_records,
        "history_claimed": len(claimed),
        "exact": abs(service_total - kernel_total) <= RECONCILE_TOLERANCE and spans_exact,
    }


def service_report(manager: SessionManager) -> dict:
    """Audit export over every live session of the service."""
    reports = [session_report(session) for session in manager.sessions()]
    return {
        "num_sessions": len(reports),
        "tenants": sorted({report["tenant"] for report in reports}),
        "total_epsilon_consumed": math.fsum(r["budget_consumed"] for r in reports),
        "sessions": reports,
    }


def telemetry_report(scheduler) -> dict:
    """Operational snapshot of one :class:`~repro.service.PlanScheduler`.

    Complements the budget-centric audit exports with the service's runtime
    health: the metrics registry snapshot (per-tenant latency and queue-wait
    histograms with percentile estimates, request outcome counters, cache
    counters), the per-tenant privacy-spend odometer with burn rates, both
    caches' stats, and the tracer's buffer stats.  Everything in the returned
    dict is JSON-ready.
    """
    return {
        "metrics": scheduler.metrics.snapshot(),
        "privacy_odometer": scheduler.metrics.privacy_odometer(),
        "caches": {
            "artifact": scheduler.artifact_cache.stats,
            "measurement": scheduler.measurement_cache.stats,
        },
        "tracer": scheduler.tracer.stats(),
    }


def slo_report(scheduler, specs=None) -> dict:
    """SLO / burn-rate evaluation of one scheduler's registry.

    Uses the scheduler's attached :class:`~repro.telemetry.SloEngine` when it
    has one (preserving its sampling history, which is what makes windowed
    burn rates meaningful); otherwise builds an ephemeral engine whose
    baseline is an empty registry stamped at the service's first recorded
    spend, so every window reads the service's lifetime rates over real
    elapsed time.  Pass ``specs`` to evaluate a custom objective set either
    way.
    """
    from ..telemetry.clock import DEFAULT_CLOCK
    from ..telemetry.slo import SloEngine

    engine = getattr(scheduler, "slo_engine", None)
    if engine is not None and specs is not None:
        engine = SloEngine(
            scheduler.metrics,
            specs=specs,
            windows=engine.windows,
            clock=engine._clock,
            publish=False,
            baseline=engine._samples[0] if engine._samples else None,
        )
    elif engine is None:
        first_times = [
            entry[5]
            for entry in scheduler.metrics.export_state()["spend"]
            if entry[5] is not None
        ]
        baseline_time = min(first_times) if first_times else DEFAULT_CLOCK()
        engine = SloEngine(
            scheduler.metrics,
            specs=specs,
            publish=False,
            baseline=(baseline_time, {}),
        )
    return engine.report()


def export_json(session_or_manager: Session | SessionManager, indent: int = 2) -> str:
    """Serialise a session (or the whole service) report to a JSON string."""
    if isinstance(session_or_manager, SessionManager):
        report = service_report(session_or_manager)
    else:
        report = session_report(session_or_manager)
    return json.dumps(report, indent=indent, default=float)
