"""Cache of data-independent construction artifacts.

Workload matrices, measurement strategies and workload reductions depend only
on public parameters (domain sizes, query counts, seeds), never on private
data — so they are safe to share across sessions and tenants.  Building them
is often the dominant cost of a request on small domains; this cache keys
them by the canonical hashable keys from
:func:`repro.workload.builders.workload_cache_key` (or any caller-provided
hashable key) and rebuilds only on first use.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, Mapping, TypeVar

from ..matrix import LinearQueryMatrix
from ..telemetry.metrics import MetricsRegistry
from ..workload.builders import build_workload, workload_cache_key

T = TypeVar("T")

#: Sentinel distinguishing "no entry" from a cached ``None`` artifact.
_MISS = object()


class ArtifactCache:
    """Thread-safe map from hashable keys to data-independent artifacts.

    ``bind_metrics`` attaches a :class:`~repro.telemetry.metrics.MetricsRegistry`
    so hit/miss/eviction counts surface as ``cache_hits`` / ``cache_misses`` /
    ``cache_evictions`` counters labelled ``cache=<name>`` (the scheduler binds
    its registry automatically).
    """

    metrics_name = "artifact"

    def __init__(self, max_entries: int | None = None):
        self._entries: dict[Hashable, object] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics: MetricsRegistry | None = None

    def bind_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report this cache's counters to ``metrics`` from now on."""
        self._metrics = metrics

    def _count(self, outcome: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"cache_{outcome}", cache=self.metrics_name).inc()

    def get_or_build(self, key: Hashable, builder: Callable[[], T]) -> T:
        """Return the cached artifact for ``key``, building it on a miss.

        The builder runs outside the lock (constructions can be slow and must
        not serialise unrelated requests); on a build race the first stored
        artifact wins so every caller sees one canonical object.
        """
        with self._lock:
            if key in self._entries:
                self.hits += 1
                artifact = self._entries[key]
            else:
                self.misses += 1
                artifact = _MISS
        if artifact is not _MISS:
            self._count("hits")
            return artifact  # type: ignore[return-value]
        self._count("misses")
        artifact = builder()
        evicted = False
        with self._lock:
            stored = self._entries.setdefault(key, artifact)
            if self.max_entries is not None and len(self._entries) > self.max_entries:
                # Drop the oldest insertion (dict preserves insertion order).
                self._entries.pop(next(iter(self._entries)))
                self.evictions += 1
                evicted = True
        if evicted:
            self._count("evictions")
        return stored  # type: ignore[return-value]

    def workload(
        self, name: str, params: Mapping[str, object] | None = None
    ) -> LinearQueryMatrix:
        """Convenience: cached construction of a registry workload."""
        key = workload_cache_key(name, params)
        return self.get_or_build(key, lambda: build_workload(name, params))

    def normal_equations(self, key: Hashable, matrix: LinearQueryMatrix):
        """Cached normal-equations artifact (Gram matrix + Cholesky factor).

        The artifact depends only on the (public) measurement strategy, never
        on private data, so it is safe to share across sessions and tenants.
        ``key`` must uniquely identify the strategy — e.g. the workload cache
        key of the matrix it was built from.  Stored under the *same* cache
        key that the ``method="normal"`` fast path of
        :func:`repro.operators.inference.least_squares` uses for its
        ``gram_cache``/``gram_key`` parameters, so priming here (or solving
        there) populates one shared entry.
        """
        from ..operators.inference.least_squares import build_normal_equations

        return self.get_or_build(
            ("least_squares_gram", key), lambda: build_normal_equations(matrix)
        )

    def gram(self, key: Hashable, matrix: LinearQueryMatrix):
        """Cached Gram matrix ``M.T M`` (a view into the shared
        normal-equations artifact) — a dense ndarray or CSR matrix, whichever
        ``gram_auto`` decided fits the strategy's structure."""
        return self.normal_equations(key, matrix).gram

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
