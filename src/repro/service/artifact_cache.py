"""Cache of data-independent construction artifacts.

Workload matrices, measurement strategies and workload reductions depend only
on public parameters (domain sizes, query counts, seeds), never on private
data — so they are safe to share across sessions, tenants, shards and even
processes.  Building them is often the dominant cost of a request on small
domains; this cache keys them by the canonical hashable keys from
:func:`repro.workload.builders.workload_cache_key` (or any caller-provided
hashable key) and rebuilds only on first use.

Two tiers:

* :class:`ArtifactCache` — the in-process tier every scheduler holds.  LRU
  when size-bounded: a hit refreshes the entry's recency, so a hot Gram
  factorisation is never evicted just because it was built first.
* :class:`SharedArtifactStore` — an optional cross-process tier backed by a
  ``multiprocessing.Manager`` (pickled values under a manager lock), which
  the :class:`~repro.service.executors.ProcessExecutor` wires into every
  worker's local cache so one shard's factorisation serves all workers.
  Artifacts that cannot pickle (scipy SuperLU factorisations inside sparse
  normal-equations artifacts) are skipped and stay process-local.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from typing import Callable, Hashable, Mapping, TypeVar

from ..matrix import LinearQueryMatrix
from ..telemetry.metrics import MetricsRegistry
from ..workload.builders import build_workload, workload_cache_key

T = TypeVar("T")

#: Sentinel distinguishing "no entry" from a cached ``None`` artifact.
_MISS = object()


class SharedArtifactStore:
    """Cross-process artifact tier: a manager-backed LRU dict of pickles.

    Values are stored pickled (manager proxies cannot share live objects);
    ``get`` unpickles into the caller's process, so each process keeps its
    own live copy in its local :class:`ArtifactCache` and only pays the
    transfer on its first miss.  ``state()`` returns the picklable proxy
    bundle a worker initializer rebuilds the store from
    (:meth:`from_state`); the manager process is owned by whoever
    constructed the store without one.
    """

    def __init__(self, max_entries: int = 256, _state: tuple | None = None):
        if _state is not None:
            self._entries, self._order, self._stats, self._lock, self.max_entries = _state
            self._manager = None
            return
        import multiprocessing as mp

        self._manager = mp.Manager()
        self._entries = self._manager.dict()
        self._order = self._manager.list()
        self._stats = self._manager.dict(hits=0, misses=0, evictions=0, unpicklable=0)
        self._lock = self._manager.Lock()
        self.max_entries = int(max_entries)

    @classmethod
    def from_state(cls, state: tuple) -> "SharedArtifactStore":
        """Rebuild a handle to an existing store from :meth:`state`."""
        return cls(_state=tuple(state))

    def state(self) -> tuple:
        """Picklable handle bundle for worker-process initializers."""
        return (self._entries, self._order, self._stats, self._lock, self.max_entries)

    def get(self, key: Hashable):
        """The artifact stored under ``key`` (unpickled), or ``_MISS``."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self._stats["misses"] += 1
                return _MISS
            self._stats["hits"] += 1
            self._order.remove(key)
            self._order.append(key)
        return pickle.loads(payload)

    def put(self, key: Hashable, artifact) -> bool:
        """Publish an artifact; returns False when it cannot pickle."""
        try:
            payload = pickle.dumps(artifact)
        except Exception:
            with self._lock:
                self._stats["unpicklable"] += 1
            return False
        with self._lock:
            if key not in self._entries:
                self._order.append(key)
                self._entries[key] = payload
                while len(self._order) > self.max_entries:
                    victim = self._order.pop(0)
                    del self._entries[victim]
                    self._stats["evictions"] += 1
        return True

    @property
    def stats(self) -> dict:
        with self._lock:
            report = dict(self._stats)
            report["entries"] = len(self._entries)
        return report

    def close(self) -> None:
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None


class ArtifactCache:
    """Thread-safe LRU map from hashable keys to data-independent artifacts.

    ``bind_metrics`` attaches a :class:`~repro.telemetry.metrics.MetricsRegistry`
    so hit/miss/eviction counts surface as ``cache_hits`` / ``cache_misses`` /
    ``cache_evictions`` counters labelled ``cache=<name>`` (the scheduler binds
    its registry automatically).  ``shared`` chains a
    :class:`SharedArtifactStore` behind local misses: artifacts built anywhere
    in the tier are installed locally on first use and published on build.
    """

    metrics_name = "artifact"

    def __init__(self, max_entries: int | None = None, shared: SharedArtifactStore | None = None):
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.shared = shared
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: cross-process tier probes resolved there (vs built locally).
        self.shared_hits = 0
        self.shared_misses = 0
        self._metrics: MetricsRegistry | None = None

    def bind_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report this cache's counters to ``metrics`` from now on."""
        self._metrics = metrics

    def _count(self, outcome: str, amount: int = 1) -> None:
        if self._metrics is not None and amount:
            self._metrics.counter(f"cache_{outcome}", cache=self.metrics_name).inc(amount)

    def get_or_build(self, key: Hashable, builder: Callable[[], T]) -> T:
        """Return the cached artifact for ``key``, building it on a miss.

        A hit refreshes the entry's LRU recency.  The builder runs outside
        the lock (constructions can be slow and must not serialise unrelated
        requests); on a build race the first stored artifact wins so every
        caller sees one canonical object.
        """
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                artifact = self._entries[key]
            else:
                self.misses += 1
                artifact = _MISS
        if artifact is not _MISS:
            self._count("hits")
            return artifact  # type: ignore[return-value]
        self._count("misses")
        built_here = False
        if self.shared is not None:
            artifact = self.shared.get(key)
            if artifact is _MISS:
                self.shared_misses += 1
            else:
                self.shared_hits += 1
        if artifact is _MISS:
            artifact = builder()
            built_here = True
        evicted = 0
        with self._lock:
            stored = self._entries.setdefault(key, artifact)
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    # LRU: drop the least-recently-touched entry, never the
                    # one just installed (it was moved to the hot end above).
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    evicted += 1
        if evicted:
            self._count("evictions", evicted)
        if built_here and self.shared is not None and stored is artifact:
            self.shared.put(key, stored)
        return stored  # type: ignore[return-value]

    def workload(
        self, name: str, params: Mapping[str, object] | None = None
    ) -> LinearQueryMatrix:
        """Convenience: cached construction of a registry workload."""
        key = workload_cache_key(name, params)
        return self.get_or_build(key, lambda: build_workload(name, params))

    def normal_equations(self, key: Hashable, matrix: LinearQueryMatrix):
        """Cached normal-equations artifact (Gram matrix + Cholesky factor).

        The artifact depends only on the (public) measurement strategy, never
        on private data, so it is safe to share across sessions and tenants.
        ``key`` must uniquely identify the strategy — e.g. the workload cache
        key of the matrix it was built from.  Stored under the *same* cache
        key that the ``method="normal"`` fast path of
        :func:`repro.operators.inference.least_squares` uses for its
        ``gram_cache``/``gram_key`` parameters, so priming here (or solving
        there) populates one shared entry.
        """
        from ..operators.inference.least_squares import build_normal_equations

        return self.get_or_build(
            ("least_squares_gram", key), lambda: build_normal_equations(matrix)
        )

    def gram(self, key: Hashable, matrix: LinearQueryMatrix):
        """Cached Gram matrix ``M.T M`` (a view into the shared
        normal-equations artifact) — a dense ndarray or CSR matrix, whichever
        ``gram_auto`` decided fits the strategy's structure."""
        return self.normal_equations(key, matrix).gram

    @property
    def stats(self) -> dict:
        with self._lock:
            report = {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
            if self.shared is not None:
                report["shared_hits"] = self.shared_hits
                report["shared_misses"] = self.shared_misses
            return report

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
