"""Plan scheduling: execute query requests against sessions.

The :class:`PlanScheduler` is the service's execution engine.  For each
request it (under the session's lock):

1. consults the :class:`~repro.service.measurement_cache.MeasurementCache` —
   an identical already-answered request is replayed budget-free;
2. builds the workload through the shared
   :class:`~repro.service.artifact_cache.ArtifactCache`;
3. instantiates the plan via the registry's parameterised lookup;
4. reseeds the session kernel with a seed derived deterministically from
   (session base seed, request id), so every response is reproducible
   regardless of scheduling order;
5. runs the plan — passing the shared ``ArtifactCache`` as ``gram_cache`` so
   plan inference reuses normal-equations factorisations across requests and
   tenants, keyed by each strategy's canonical ``strategy_key()`` —
   brackets it with kernel budget snapshots, and returns a
   :class:`~repro.service.api.QueryResponse` whose ``epsilon_spent`` is the
   exact root-level ledger delta.

Requests rejected for a workload/domain mismatch are ledgered too: an
errored zero-spend :class:`SessionEvent` with an empty history span.  (
Malformed requests that never resolve to a plan or workload — unknown names —
still raise before anything touches the session ledger.)

``execute_batch`` fans requests out over a :class:`ThreadPoolExecutor`.
Requests on the *same* session serialise on its lock (sequential composition
demands it); requests on different sessions genuinely run in parallel.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Sequence

from ..plans.registry import make_plan
from .api import QueryRequest, QueryResponse
from .artifact_cache import ArtifactCache
from .measurement_cache import MeasurementCache
from .session import Session, SessionEvent, SessionManager


def derive_request_seed(
    base_seed: int, session_id: str, request_id: str, query_material: str = ""
) -> int:
    """Deterministic 64-bit seed for one request's noise.

    ``query_material`` mixes the query's identity (the request cache key)
    into the seed, so a client reusing a request id for a *different* query
    can never replay the same noise stream across distinct measurements —
    while the same (session, request id, query) triple always reproduces the
    same response.
    """
    material = f"{base_seed}:{session_id}:{request_id}:{query_material}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


class PlanScheduler:
    """Executes :class:`QueryRequest`\\ s synchronously or in batches."""

    def __init__(
        self,
        manager: SessionManager,
        measurement_cache: MeasurementCache | None = None,
        artifact_cache: ArtifactCache | None = None,
        max_workers: int = 4,
    ):
        self.manager = manager
        self.measurement_cache = measurement_cache if measurement_cache is not None else MeasurementCache()
        self.artifact_cache = artifact_cache if artifact_cache is not None else ArtifactCache()
        self.max_workers = max_workers

    def close_session(self, session_id: str) -> Session:
        """Close a session and drop its cached releases.

        Prefer this over :meth:`SessionManager.close` when a scheduler is in
        play — the manager alone cannot reach the measurement cache, and a
        long-running service would otherwise accumulate unreachable entries
        for every closed session.
        """
        session = self.manager.close(session_id)
        self.measurement_cache.invalidate_session(session)
        return session

    # ------------------------------------------------------------------
    # Synchronous path.
    # ------------------------------------------------------------------
    def execute(self, request: QueryRequest) -> QueryResponse:
        """Answer one request, blocking until done."""
        session = self.manager.get(request.session_id)
        if request.request_id is None:
            request = replace(request, request_id=session.next_request_id())
        with session.lock:
            return self._execute_locked(session, request)

    def _execute_locked(self, session: Session, request: QueryRequest) -> QueryResponse:
        start = time.perf_counter()
        key = request.cache_key()

        if request.reuse:
            entry = self.measurement_cache.lookup(session, key)
            if entry is not None:
                response = self.measurement_cache.replay(entry, request.request_id)
                # The cached response carries the accounting snapshot of the
                # request that paid for it; refresh to the session's current
                # state (a replay spends nothing, but spend may have moved
                # since the entry was stored).
                response.accounting = session.accounting_report()
                session.record(
                    SessionEvent(
                        request_id=request.request_id,
                        plan=request.plan,
                        workload=request.workload,
                        epsilon_requested=request.epsilon,
                        epsilon_spent=0.0,
                        cached=True,
                        seed=response.seed,
                        history_start=entry.history_start,
                        history_end=entry.history_start,
                        tag=request.tag,
                    )
                )
                return response

        workload_matrix = (
            self.artifact_cache.workload(request.workload, request.workload_params)
            if request.workload is not None
            else None
        )
        plan = make_plan(request.plan, request.plan_params)
        source = session.vector_source()
        if workload_matrix is not None and workload_matrix.shape[1] != source.domain_size:
            # Reject before any budget is spent: a mismatched workload can
            # only produce garbage answers (or crash after the charge).  The
            # rejection is still ledgered — an errored zero-spend event with
            # an empty history span — so the audit trail has one entry per
            # scheduled request, exactly like plans that fail mid-run.
            snapshot = session.kernel.budget_snapshot()
            session.record(
                SessionEvent(
                    request_id=request.request_id,
                    plan=request.plan,
                    workload=request.workload,
                    epsilon_requested=request.epsilon,
                    epsilon_spent=0.0,
                    cached=False,
                    seed=None,
                    history_start=snapshot.num_measurements,
                    history_end=snapshot.num_measurements,
                    tag=request.tag,
                    error="ValueError",
                )
            )
            raise ValueError(
                f"workload {request.workload!r} has {workload_matrix.shape[1]} columns "
                f"but session {session.session_id!r} has a {source.domain_size}-cell domain"
            )

        seed = derive_request_seed(
            session.base_seed, session.session_id, request.request_id, repr(key)
        )
        session.kernel.reseed(seed)
        before = session.kernel.budget_snapshot()
        try:
            # The shared artifact cache rides along so plan inference reuses
            # data-independent Gram factorisations across requests and
            # tenants, keyed by each strategy's canonical strategy_key().
            result = plan.run(source, request.epsilon, gram_cache=self.artifact_cache)
            answers = result.answer(workload_matrix) if workload_matrix is not None else None
        except Exception as exc:
            # A request can fail after spending part (or all) of its budget —
            # a multi-measurement plan mid-run, or answer post-processing;
            # the ledger must still claim that spend (and its history rows)
            # or the audit would never reconcile again.
            after = session.kernel.budget_snapshot()
            session.record(
                SessionEvent(
                    request_id=request.request_id,
                    plan=request.plan,
                    workload=request.workload,
                    epsilon_requested=request.epsilon,
                    epsilon_spent=after.consumed - before.consumed,
                    cached=False,
                    seed=seed,
                    history_start=before.num_measurements,
                    history_end=after.num_measurements,
                    tag=request.tag,
                    error=type(exc).__name__,
                )
            )
            raise
        after = session.kernel.budget_snapshot()
        response = QueryResponse(
            request_id=request.request_id,
            session_id=session.session_id,
            plan=request.plan,
            epsilon_requested=request.epsilon,
            epsilon_spent=after.consumed - before.consumed,
            x_hat=result.x_hat,
            answers=answers,
            cached=False,
            seed=seed,
            info=dict(result.info),
            elapsed_seconds=time.perf_counter() - start,
            accounting=session.accounting_report(),
        )
        self.measurement_cache.store(
            session, key, response, before.num_measurements, after.num_measurements
        )
        session.record(
            SessionEvent(
                request_id=request.request_id,
                plan=request.plan,
                workload=request.workload,
                epsilon_requested=request.epsilon,
                epsilon_spent=response.epsilon_spent,
                cached=False,
                seed=seed,
                history_start=before.num_measurements,
                history_end=after.num_measurements,
                tag=request.tag,
            )
        )
        return response

    # ------------------------------------------------------------------
    # Batched path.
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        max_workers: int | None = None,
        return_exceptions: bool = False,
    ) -> list[QueryResponse | Exception]:
        """Answer a batch of requests concurrently, preserving input order.

        Request ids (hence noise seeds) are assigned in submission order
        *before* dispatch, so batch results are reproducible no matter how
        the pool interleaves execution.  (Exception: two *identical*
        ``reuse=True`` requests in one batch race for who computes and who
        replays, so which request id's seed produced the shared answer is
        scheduling-dependent — the answer itself is released only once
        either way.)

        Every request runs to completion (and is ledgered) regardless of the
        others.  With ``return_exceptions=True`` a failed request's slot
        holds the exception object instead of a response; otherwise the
        first failure (in input order) is re-raised after the whole batch
        has finished.
        """
        assigned = []
        for request in requests:
            if request.request_id is None:
                session = self.manager.get(request.session_id)
                request = replace(request, request_id=session.next_request_id())
            assigned.append(request)
        if not assigned:
            return []
        workers = max_workers if max_workers is not None else self.max_workers
        with ThreadPoolExecutor(max_workers=max(workers, 1)) as pool:
            futures = [pool.submit(self._execute_assigned, request) for request in assigned]
            results: list[QueryResponse | Exception] = []
            for future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:
                    results.append(exc)
        if not return_exceptions:
            for outcome in results:
                if isinstance(outcome, Exception):
                    raise outcome
        return results

    def _execute_assigned(self, request: QueryRequest) -> QueryResponse:
        session = self.manager.get(request.session_id)
        with session.lock:
            return self._execute_locked(session, request)
