"""Plan scheduling: execute query requests against sessions.

The :class:`PlanScheduler` is the service's execution engine.  For each
request it (under the session's lock):

1. consults the :class:`~repro.service.measurement_cache.MeasurementCache` —
   an identical already-answered request is replayed budget-free;
2. builds the workload through the shared
   :class:`~repro.service.artifact_cache.ArtifactCache`;
3. instantiates the plan via the registry's parameterised lookup;
4. reseeds the session kernel with a seed derived deterministically from
   (session base seed, request id), so every response is reproducible
   regardless of scheduling order;
5. runs the plan — passing the shared ``ArtifactCache`` as ``gram_cache`` so
   plan inference reuses normal-equations factorisations across requests and
   tenants, keyed by each strategy's canonical ``strategy_key()`` —
   brackets it with kernel budget snapshots, and returns a
   :class:`~repro.service.api.QueryResponse` whose ``epsilon_spent`` is the
   exact root-level ledger delta.

Requests rejected for a workload/domain mismatch are ledgered too: an
errored zero-spend :class:`SessionEvent` with an empty history span.  (
Malformed requests that never resolve to a plan or workload — unknown names —
still raise before anything touches the session ledger.)

``execute_batch`` fans requests out over a :class:`ThreadPoolExecutor`.
Requests on the *same* session serialise on its lock (sequential composition
demands it); requests on different sessions genuinely run in parallel.

**Robustness.**  The scheduler composes the :mod:`~repro.service.robustness`
primitives around every request:

* *Durability* — on a journal-attached session, charges/measurements/events
  stream into the write-ahead journal as they happen, the released answer is
  journaled right after it enters the measurement cache, and the journal is
  committed before the response (or exception) leaves the lock — so nothing
  a client ever saw can be lost, and nothing lost was ever seen.
* *Deadlines* — ``QueryRequest.deadline_seconds`` is enforced from the
  moment of scheduling: requests that expire while queued are rejected with
  a ledgered zero-spend event; mid-plan, the kernel refuses further charges
  past the deadline and the errored event claims the true partial spend.
* *Admission control* — an :class:`~repro.service.robustness.AdmissionController`
  rejects over-cap requests before they touch any session state.
* *Circuit breaking* — a :class:`~repro.service.robustness.CircuitBreaker`
  sheds requests for persistently-failing plans to a cheap fallback plan,
  marking the response with ``info["degraded_from"]``.
* *Retries* — :meth:`execute_with_retry` re-attempts transient faults under
  a :class:`~repro.service.robustness.RetryPolicy`; the retried attempt
  keeps the same request id and forces cache reuse, so a completed answer is
  replayed rather than re-charged (budget-safe by construction).

**Observability.**  Constructed with a :class:`~repro.telemetry.Tracer`, the
scheduler opens a ``service.request`` root span per request and activates the
tracer on the executing thread, so every instrumented seam underneath — plan
stages, kernel measurements with their ε/cost, solver calls with Gram
cache hits — attaches to the request's trace; the trace id is returned on
``QueryResponse.trace_id`` and stamped on the audit-trail event.  A
:class:`~repro.telemetry.MetricsRegistry` (always on; created internally
unless injected) aggregates per-tenant request latency and queue-wait
histograms, outcome counters, cache hit/miss/eviction counters and the
per-tenant privacy-spend odometer.  Failures re-raise the *original*
exception with a structured :class:`~repro.service.api.RequestFailure`
attached (request id, batch slot, trace id, spend), so batch callers keep
their ``isinstance`` checks and still get the context.
"""

from __future__ import annotations

import hashlib
import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Sequence

from ..durability.faults import FaultInjector, WorkerDeath
from ..durability.serialize import encode
from ..durability.snapshot import response_state
from ..plans.registry import make_plan
from ..private.exceptions import DeadlineExceededError
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.spans import NOOP_SPAN, NULL_TRACER, NullTracer, Tracer, activate
from .api import QueryRequest, QueryResponse, RequestFailure
from .artifact_cache import ArtifactCache
from .measurement_cache import MeasurementCache
from .robustness import (
    ALLOW,
    SHED,
    AdmissionController,
    AdmissionError,
    CircuitBreaker,
    RetryPolicy,
    SessionClosedError,
)
from .session import Session, SessionEvent, SessionManager


def derive_request_seed(
    base_seed: int, session_id: str, request_id: str, query_material: str = ""
) -> int:
    """Deterministic 64-bit seed for one request's noise.

    ``query_material`` mixes the query's identity (the request cache key)
    into the seed, so a client reusing a request id for a *different* query
    can never replay the same noise stream across distinct measurements —
    while the same (session, request id, query) triple always reproduces the
    same response.
    """
    material = f"{base_seed}:{session_id}:{request_id}:{query_material}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def _attach_failure(exc: BaseException, failure: RequestFailure) -> None:
    """Best-effort structured context on the original exception object."""
    try:
        exc.request_failure = failure  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - slotted exception classes
        pass


class PlanScheduler:
    """Executes :class:`QueryRequest`\\ s synchronously or in batches."""

    def __init__(
        self,
        manager: SessionManager,
        measurement_cache: MeasurementCache | None = None,
        artifact_cache: ArtifactCache | None = None,
        max_workers: int = 4,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        admission: AdmissionController | None = None,
        breaker: CircuitBreaker | None = None,
        fault_injector: FaultInjector | None = None,
    ):
        self.manager = manager
        self.measurement_cache = measurement_cache if measurement_cache is not None else MeasurementCache()
        self.artifact_cache = artifact_cache if artifact_cache is not None else ArtifactCache()
        self.max_workers = max_workers
        #: per-request tracing; the no-op NULL_TRACER (the default) records
        #: nothing and costs one shared no-op handle per instrumented seam.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: cross-request aggregates (latency/queue-wait histograms per tenant,
        #: outcome and cache counters, privacy-spend odometer); always on —
        #: a handful of dict operations per request.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.measurement_cache.bind_metrics(self.metrics)
        self.artifact_cache.bind_metrics(self.metrics)
        #: backpressure: None admits everything (the default).
        self.admission = admission
        #: per-plan failure shedding: None never sheds (the default).
        self.breaker = breaker
        #: crash-harness seam (``scheduler.worker``); None in production.
        self.fault_injector = fault_injector

    def close_session(self, session_id: str, drain: bool = True) -> Session:
        """Close a session and drop its cached releases.

        Prefer this over :meth:`SessionManager.close` when a scheduler is in
        play — the manager alone cannot reach the measurement cache, and a
        long-running service would otherwise accumulate unreachable entries
        for every closed session.  See :meth:`SessionManager.close` for the
        in-flight drain semantics.
        """
        session = self.manager.close(session_id, drain=drain)
        self.measurement_cache.invalidate_session(session)
        return session

    # ------------------------------------------------------------------
    # Durability.
    # ------------------------------------------------------------------
    def snapshot_session(self, session_id: str) -> dict:
        """Snapshot a session, including its cached releases."""
        session = self.manager.get(session_id)
        return session.snapshot(measurement_cache=self.measurement_cache)

    def restore_session(
        self,
        table,
        snapshot: dict | None = None,
        journal=None,
        strict: bool = True,
    ) -> Session:
        """Rebuild a crashed session into this scheduler's manager and cache.

        See :func:`repro.durability.restore_session`; the restored session
        is verified against the reconciliation oracle and adopted by the
        manager, and its released answers land back in the measurement cache
        for zero-ε replay.
        """
        from ..durability.snapshot import restore_session as _restore_session

        session = _restore_session(
            table,
            snapshot=snapshot,
            journal=journal,
            manager=self.manager,
            measurement_cache=self.measurement_cache,
            strict=strict,
        )
        self.metrics.counter("service_recoveries", tenant=session.tenant).inc()
        return session

    # ------------------------------------------------------------------
    # Synchronous path.
    # ------------------------------------------------------------------
    def execute(self, request: QueryRequest) -> QueryResponse:
        """Answer one request, blocking until done."""
        session = self.manager.get(request.session_id)
        if request.request_id is None:
            request = replace(request, request_id=session.next_request_id())
        queued_at = time.perf_counter()
        return self._execute_guarded(session, request, queued_at)

    def execute_with_retry(
        self, request: QueryRequest, policy: RetryPolicy | None = None
    ) -> QueryResponse:
        """Answer one request, retrying transient faults budget-safely.

        Every attempt reuses the same request id — hence the same derived
        noise seed and the same cache key — and forces ``reuse=True``, so an
        attempt that failed *after* its answer was stored (e.g. a journal
        fsync hiccup) is satisfied from the measurement cache at zero
        additional ε on the retry.  Budget a failed attempt did spend is
        already ledgered as an errored event; a retry never re-charges it.
        """
        policy = policy if policy is not None else RetryPolicy()
        session = self.manager.get(request.session_id)
        if request.request_id is None:
            request = replace(request, request_id=session.next_request_id())
        rng = policy.rng()
        failures = 0
        while True:
            try:
                return self._execute_guarded(session, request, time.perf_counter())
            except Exception as exc:
                failures += 1
                if failures >= policy.max_attempts or not policy.is_retryable(exc):
                    raise
                self.metrics.counter(
                    "service_retries", tenant=session.tenant, plan=request.plan
                ).inc()
                time.sleep(policy.delay(failures, rng))
                request = replace(request, reuse=True)

    def _execute_guarded(
        self, session: Session, request: QueryRequest, queued_at: float | None
    ) -> QueryResponse:
        """Admission, circuit breaking and close checks around one request."""
        if self.fault_injector is not None:
            self.fault_injector.fire("scheduler.worker", request.request_id)
        if session.closing:
            raise SessionClosedError(
                f"session {session.session_id!r} is closed; "
                f"request {request.request_id!r} rejected"
            )
        if self.admission is not None:
            try:
                self.admission.acquire(session.tenant)
            except AdmissionError:
                self.metrics.counter(
                    "service_admission_rejections", tenant=session.tenant
                ).inc()
                raise
        try:
            plan_name = request.plan
            decision = ALLOW if self.breaker is None else self.breaker.admit(plan_name)
            if decision == SHED:
                fallback = replace(
                    request, plan=self.breaker.fallback_plan, plan_params={}
                )
                self.metrics.counter(
                    "service_shed_requests", tenant=session.tenant, plan=plan_name
                ).inc()
                response = self._execute_on_session(session, fallback, queued_at)
                response.info["degraded_from"] = plan_name
                return response
            try:
                response = self._execute_on_session(session, request, queued_at)
            except SessionClosedError:
                # A close racing the request says nothing about the plan.
                raise
            except Exception:
                if self.breaker is not None:
                    self.breaker.record_failure(plan_name)
                raise
            if self.breaker is not None:
                self.breaker.record_success(plan_name)
            return response
        finally:
            if self.admission is not None:
                self.admission.release(session.tenant)

    def _execute_on_session(
        self, session: Session, request: QueryRequest, queued_at: float | None
    ) -> QueryResponse:
        with session.lock:
            # Re-checked under the lock: a drain-close marks the session
            # closing, then waits for this lock — anything still queued
            # behind it must reject, not execute against a closed ledger.
            if session.closing:
                raise SessionClosedError(
                    f"session {session.session_id!r} closed while request "
                    f"{request.request_id!r} was queued"
                )
            return self._execute_locked(session, request, queued_at=queued_at)

    def _execute_locked(
        self, session: Session, request: QueryRequest, queued_at: float | None = None
    ) -> QueryResponse:
        try:
            tracer = self.tracer
            if tracer is NULL_TRACER:
                return self._run_locked(session, request, queued_at, NOOP_SPAN)
            with activate(tracer), tracer.span(
                "service.request",
                request_id=request.request_id,
                session=session.session_id,
                tenant=session.tenant,
                plan=request.plan,
                workload=request.workload,
                epsilon=float(request.epsilon),
            ) as root:
                response = self._run_locked(session, request, queued_at, root)
                root.set_attributes(
                    cached=response.cached, epsilon_spent=float(response.epsilon_spent)
                )
                return response
        finally:
            # Commit before the response (or exception) leaves the lock: a
            # crash after this line loses nothing a client ever saw.
            self._commit_journal(session)

    def _commit_journal(self, session: Session) -> None:
        journal = session.journal
        if journal is None:
            return
        started = time.perf_counter()
        journal.commit()
        self.metrics.histogram(
            "service_journal_commit_seconds", tenant=session.tenant
        ).observe(time.perf_counter() - started)

    def _observe(
        self,
        session: Session,
        request: QueryRequest,
        outcome: str,
        duration: float,
        queue_wait: float,
        spent: float,
    ) -> None:
        """Fold one finished (or failed) request into the metrics registry."""
        metrics = self.metrics
        tenant = session.tenant
        metrics.counter(
            "service_requests", tenant=tenant, plan=request.plan, outcome=outcome
        ).inc()
        metrics.histogram("service_request_latency_seconds", tenant=tenant).observe(duration)
        metrics.histogram("service_request_queue_wait_seconds", tenant=tenant).observe(
            queue_wait
        )
        unit = "rho" if session.kernel.accountant.name == "zcdp" else "epsilon"
        metrics.record_privacy_spend(tenant, request.plan, spent, unit=unit)

    def _reject_expired(
        self,
        session: Session,
        request: QueryRequest,
        start: float,
        queue_wait: float,
        waited: float,
        root,
    ) -> DeadlineExceededError:
        """Ledger a request that timed out while queued (zero spend)."""
        snapshot = session.kernel.budget_snapshot()
        duration = time.perf_counter() - start
        session.record(
            SessionEvent(
                request_id=request.request_id,
                plan=request.plan,
                workload=request.workload,
                epsilon_requested=request.epsilon,
                epsilon_spent=0.0,
                cached=False,
                seed=None,
                history_start=snapshot.num_measurements,
                history_end=snapshot.num_measurements,
                tag=request.tag,
                error="DeadlineExceededError",
                duration_seconds=duration,
                queue_wait_seconds=queue_wait,
                trace_id=root.trace_id,
            )
        )
        self.metrics.counter(
            "service_deadline_timeouts", tenant=session.tenant, plan=request.plan
        ).inc()
        self._observe(session, request, "timeout", duration, queue_wait, 0.0)
        exc = DeadlineExceededError(request.deadline_seconds, waited)
        _attach_failure(
            exc,
            RequestFailure(
                request_id=request.request_id,
                session_id=session.session_id,
                plan=request.plan,
                error_type="DeadlineExceededError",
                message=str(exc),
                trace_id=root.trace_id,
            ),
        )
        return exc

    def _run_locked(
        self,
        session: Session,
        request: QueryRequest,
        queued_at: float | None,
        root,
    ) -> QueryResponse:
        start = time.perf_counter()
        queue_wait = max(start - queued_at, 0.0) if queued_at is not None else 0.0
        key = request.cache_key()
        #: the deadline counts from scheduling — queue wait is latency the
        #: client experiences too.
        deadline_anchor = queued_at if queued_at is not None else start
        if (
            request.deadline_seconds is not None
            and start - deadline_anchor > request.deadline_seconds
        ):
            raise self._reject_expired(
                session, request, start, queue_wait, start - deadline_anchor, root
            )

        if request.reuse:
            entry = self.measurement_cache.lookup(session, key)
            if entry is not None:
                response = self.measurement_cache.replay(entry, request.request_id)
                # The cached response carries the accounting snapshot of the
                # request that paid for it; refresh to the session's current
                # state (a replay spends nothing, but spend may have moved
                # since the entry was stored).
                response.accounting = session.accounting_report()
                response.trace_id = root.trace_id
                duration = time.perf_counter() - start
                response.elapsed_seconds = duration
                session.record(
                    SessionEvent(
                        request_id=request.request_id,
                        plan=request.plan,
                        workload=request.workload,
                        epsilon_requested=request.epsilon,
                        epsilon_spent=0.0,
                        cached=True,
                        seed=response.seed,
                        history_start=entry.history_start,
                        history_end=entry.history_start,
                        tag=request.tag,
                        duration_seconds=duration,
                        queue_wait_seconds=queue_wait,
                        trace_id=root.trace_id,
                    )
                )
                self._observe(session, request, "cached", duration, queue_wait, 0.0)
                return response

        workload_matrix = (
            self.artifact_cache.workload(request.workload, request.workload_params)
            if request.workload is not None
            else None
        )
        plan = make_plan(request.plan, request.plan_params)
        source = session.vector_source()
        if workload_matrix is not None and workload_matrix.shape[1] != source.domain_size:
            # Reject before any budget is spent: a mismatched workload can
            # only produce garbage answers (or crash after the charge).  The
            # rejection is still ledgered — an errored zero-spend event with
            # an empty history span — so the audit trail has one entry per
            # scheduled request, exactly like plans that fail mid-run.
            snapshot = session.kernel.budget_snapshot()
            duration = time.perf_counter() - start
            session.record(
                SessionEvent(
                    request_id=request.request_id,
                    plan=request.plan,
                    workload=request.workload,
                    epsilon_requested=request.epsilon,
                    epsilon_spent=0.0,
                    cached=False,
                    seed=None,
                    history_start=snapshot.num_measurements,
                    history_end=snapshot.num_measurements,
                    tag=request.tag,
                    error="ValueError",
                    duration_seconds=duration,
                    queue_wait_seconds=queue_wait,
                    trace_id=root.trace_id,
                )
            )
            self._observe(session, request, "rejected", duration, queue_wait, 0.0)
            exc = ValueError(
                f"workload {request.workload!r} has {workload_matrix.shape[1]} columns "
                f"but session {session.session_id!r} has a {source.domain_size}-cell domain"
            )
            _attach_failure(
                exc,
                RequestFailure(
                    request_id=request.request_id,
                    session_id=session.session_id,
                    plan=request.plan,
                    error_type="ValueError",
                    message=str(exc),
                    trace_id=root.trace_id,
                ),
            )
            raise exc

        seed = derive_request_seed(
            session.base_seed, session.session_id, request.request_id, repr(key)
        )
        session.kernel.reseed(seed)
        kernel = session.kernel
        before = kernel.budget_snapshot()
        try:
            if request.deadline_seconds is not None:
                kernel.deadline = deadline_anchor + request.deadline_seconds
                kernel.deadline_started = deadline_anchor
            # The shared artifact cache rides along so plan inference reuses
            # data-independent Gram factorisations across requests and
            # tenants, keyed by each strategy's canonical strategy_key().
            with self.tracer.span("plan.run", plan=request.plan):
                result = plan.run(source, request.epsilon, gram_cache=self.artifact_cache)
            answers = result.answer(workload_matrix) if workload_matrix is not None else None
            if kernel.deadline is not None:
                now = time.perf_counter()
                if now > kernel.deadline:
                    # Timed out after the last charge: the answer is complete
                    # but late; it is withheld, and the spend below is the
                    # request's true (here: full) partial spend.
                    raise DeadlineExceededError(
                        request.deadline_seconds, now - deadline_anchor
                    )
        except Exception as exc:
            # A request can fail after spending part (or all) of its budget —
            # a multi-measurement plan mid-run, or answer post-processing;
            # the ledger must still claim that spend (and its history rows)
            # or the audit would never reconcile again.
            after = kernel.budget_snapshot()
            spent = after.consumed - before.consumed
            duration = time.perf_counter() - start
            session.record(
                SessionEvent(
                    request_id=request.request_id,
                    plan=request.plan,
                    workload=request.workload,
                    epsilon_requested=request.epsilon,
                    epsilon_spent=spent,
                    cached=False,
                    seed=seed,
                    history_start=before.num_measurements,
                    history_end=after.num_measurements,
                    tag=request.tag,
                    error=type(exc).__name__,
                    duration_seconds=duration,
                    queue_wait_seconds=queue_wait,
                    trace_id=root.trace_id,
                )
            )
            if isinstance(exc, DeadlineExceededError):
                self.metrics.counter(
                    "service_deadline_timeouts",
                    tenant=session.tenant,
                    plan=request.plan,
                ).inc()
                outcome = "timeout"
            else:
                outcome = "error"
            self._observe(session, request, outcome, duration, queue_wait, spent)
            _attach_failure(
                exc,
                RequestFailure(
                    request_id=request.request_id,
                    session_id=session.session_id,
                    plan=request.plan,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    trace_id=root.trace_id,
                    epsilon_spent=spent,
                ),
            )
            raise
        finally:
            kernel.deadline = None
            kernel.deadline_started = None
        after = kernel.budget_snapshot()
        duration = time.perf_counter() - start
        response = QueryResponse(
            request_id=request.request_id,
            session_id=session.session_id,
            plan=request.plan,
            epsilon_requested=request.epsilon,
            epsilon_spent=after.consumed - before.consumed,
            x_hat=result.x_hat,
            answers=answers,
            cached=False,
            seed=seed,
            info=dict(result.info),
            elapsed_seconds=duration,
            accounting=session.accounting_report(),
            trace_id=root.trace_id,
        )
        self.measurement_cache.store(
            session, key, response, before.num_measurements, after.num_measurements
        )
        if session.journal is not None:
            # Journal the release before the event that claims it: restores
            # replay the answer byte-identical into the cache, so an
            # identical post-crash request costs zero additional ε.
            session.journal.append(
                {
                    "kind": "release",
                    "key": encode(key),
                    "response": encode(response_state(response)),
                    "history_start": before.num_measurements,
                    "history_end": after.num_measurements,
                }
            )
        session.record(
            SessionEvent(
                request_id=request.request_id,
                plan=request.plan,
                workload=request.workload,
                epsilon_requested=request.epsilon,
                epsilon_spent=response.epsilon_spent,
                cached=False,
                seed=seed,
                history_start=before.num_measurements,
                history_end=after.num_measurements,
                tag=request.tag,
                duration_seconds=duration,
                queue_wait_seconds=queue_wait,
                trace_id=root.trace_id,
            )
        )
        self._observe(
            session, request, "ok", duration, queue_wait, response.epsilon_spent
        )
        return response

    # ------------------------------------------------------------------
    # Batched path.
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        max_workers: int | None = None,
        return_exceptions: bool = False,
    ) -> list[QueryResponse | Exception]:
        """Answer a batch of requests concurrently, preserving input order.

        Request ids (hence noise seeds) are assigned in submission order
        *before* dispatch, so batch results are reproducible no matter how
        the pool interleaves execution.  (Exception: two *identical*
        ``reuse=True`` requests in one batch race for who computes and who
        replays, so which request id's seed produced the shared answer is
        scheduling-dependent — the answer itself is released only once
        either way.)

        Every request runs to completion (and is ledgered) regardless of the
        others.  With ``return_exceptions=True`` a failed request's slot
        holds the exception object instead of a response; otherwise the
        first failure (in input order) is re-raised after the whole batch
        has finished.  Either way the exception is the *original* one, with
        a :class:`~repro.service.api.RequestFailure` attached under
        ``request_failure`` carrying the request id, batch slot, originating
        trace id and any partial spend — so a failed slot never loses its
        batch context.

        A worker that dies outright (:class:`~repro.durability.WorkerDeath`,
        which bypasses all ``except Exception`` accounting) is handled here:
        the collector claims any budget/history the dead request charged but
        never recorded — via :meth:`Session.claim_orphans` — as one errored
        event with the true partial spend, so the session's ledger still
        reconciles exactly; its failure carries ``ledgered=False``.
        """
        assigned = []
        for request in requests:
            if request.request_id is None:
                session = self.manager.get(request.session_id)
                request = replace(request, request_id=session.next_request_id())
            assigned.append(request)
        if not assigned:
            return []
        workers = max_workers if max_workers is not None else self.max_workers
        with ThreadPoolExecutor(max_workers=max(workers, 1)) as pool:
            queued_at = time.perf_counter()
            futures = [
                pool.submit(self._execute_assigned, request, queued_at)
                for request in assigned
            ]
            results: list[QueryResponse | Exception] = []
            for index, (request, future) in enumerate(zip(assigned, futures)):
                try:
                    results.append(future.result())
                except (Exception, WorkerDeath) as exc:
                    failure = RequestFailure.of(exc)
                    if failure is None:
                        # The request died before the accounting path could
                        # run — a dead worker, an unknown session id:
                        # synthesise the context and flag it un-ledgered.
                        failure = RequestFailure(
                            request_id=request.request_id,
                            session_id=request.session_id,
                            plan=request.plan,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            ledgered=False,
                        )
                    if failure.batch_index is None:
                        failure = replace(failure, batch_index=index)
                    if not failure.ledgered:
                        try:
                            orphans = self._claim_orphaned_spend(request, exc)
                        except Exception:
                            # A journal hiccup on the cleanup commit must not
                            # sink the batch: the claim events are already in
                            # the in-memory ledger, and a restore re-claims
                            # whatever didn't reach disk.
                            orphans = []
                        if orphans:
                            spent = math.fsum(o.epsilon_spent for o in orphans)
                            failure = replace(failure, epsilon_spent=spent)
                    _attach_failure(exc, failure)
                    results.append(exc)
        if not return_exceptions:
            for outcome in results:
                if isinstance(outcome, BaseException):
                    raise outcome
        return results

    def _claim_orphaned_spend(
        self, request: QueryRequest, exc: BaseException
    ) -> list[SessionEvent]:
        """Balance the ledger after a request died outside the except path."""
        try:
            session = self.manager.get(request.session_id)
        except KeyError:
            return []  # the request never resolved to a session
        orphans = session.claim_orphans(error=type(exc).__name__)
        if orphans:
            self._commit_journal(session)
            self.metrics.counter(
                "service_orphaned_requests", tenant=session.tenant
            ).inc()
        return orphans

    def _execute_assigned(
        self, request: QueryRequest, queued_at: float | None = None
    ) -> QueryResponse:
        session = self.manager.get(request.session_id)
        return self._execute_guarded(session, request, queued_at)
