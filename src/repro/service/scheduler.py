"""Plan scheduling: execute query requests against sessions.

The :class:`PlanScheduler` is the service's **execution core**.  It composes
three pluggable layers:

1. a **session directory** — either a bare
   :class:`~repro.service.session.SessionManager` or a
   :class:`~repro.service.sharding.ShardRouter` (consistent-hash sharding;
   the two are duck-type interchangeable);
2. the **request pipeline** (:mod:`repro.service.pipeline`) — composable
   stages (guard → admission → breaker → session lock → journal commit →
   trace → deadline gate → cache probe → plan run) that carry every request
   through admission control, the measurement cache, budget accounting,
   write-ahead journaling and telemetry in a fixed, privacy-correct order;
3. an **executor backend** (:mod:`repro.service.executors`) — where driving
   threads run and where plan compute happens: ``inline`` (sequential,
   deterministic baseline), ``thread`` (persistent driver pool) or
   ``process`` (plan compute in worker processes whose budget charges and
   measurement records are *adopted* back into the live session's ledger).

Answers are byte-identical across all backends and shard layouts: every
request's noise derives solely from
:func:`~repro.service.pipeline.derive_request_seed` (session base seed,
request id, query identity) — nothing scheduling-dependent feeds it.

Requests on the *same* session serialise on its lock (sequential composition
demands it); requests on different sessions genuinely run in parallel.
Requests rejected for a workload/domain mismatch are ledgered: an errored
zero-spend :class:`~repro.service.session.SessionEvent` with an empty
history span.  (Malformed requests that never resolve to a plan or workload
— unknown names — still raise before anything touches the session ledger.)

**Robustness.**  The pipeline composes the :mod:`~repro.service.robustness`
primitives around every request:

* *Durability* — on a journal-attached session, charges/measurements/events
  stream into the write-ahead journal as they happen, the released answer is
  journaled right after it enters the measurement cache, and the journal is
  committed before the response (or exception) leaves the lock — so nothing
  a client ever saw can be lost, and nothing lost was ever seen.
* *Deadlines* — ``QueryRequest.deadline_seconds`` is enforced from the
  moment of scheduling: requests that expire while queued are rejected with
  a ledgered zero-spend event; mid-plan, the kernel refuses further charges
  past the deadline and the errored event claims the true partial spend.
* *Admission control* — an :class:`~repro.service.robustness.AdmissionController`
  rejects over-cap requests before they touch any session state.
* *Circuit breaking* — a :class:`~repro.service.robustness.CircuitBreaker`
  sheds requests for persistently-failing plans to a cheap fallback plan,
  marking the response with ``info["degraded_from"]``.
* *Retries* — :meth:`execute_with_retry` re-attempts transient faults under
  a :class:`~repro.service.robustness.RetryPolicy`; the retried attempt
  keeps the same request id and forces cache reuse, so a completed answer is
  replayed rather than re-charged (budget-safe by construction).

**Observability.**  Constructed with a :class:`~repro.telemetry.Tracer`, the
scheduler opens a ``service.request`` root span per request and activates the
tracer on the executing thread, so every instrumented seam underneath — plan
stages, kernel measurements with their ε/cost, solver calls with Gram
cache hits — attaches to the request's trace; the trace id is returned on
``QueryResponse.trace_id`` and stamped on the audit-trail event.  A
:class:`~repro.telemetry.MetricsRegistry` (always on; created internally
unless injected) aggregates per-tenant request latency and queue-wait
histograms, outcome counters, cache hit/miss/eviction counters and the
per-tenant privacy-spend odometer; on a sharded service, outcome counters,
latency histograms and the spend counter additionally carry a ``shard``
label.  Failures re-raise the *original* exception with a structured
:class:`~repro.service.api.RequestFailure` attached (request id, batch slot,
trace id, spend), so batch callers keep their ``isinstance`` checks and
still get the context.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Sequence

from ..durability.faults import FaultInjector, WorkerDeath
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.recorder import FlightRecorder
from ..telemetry.slo import SloEngine
from ..telemetry.spans import NullTracer, Tracer, NULL_TRACER, activate
from .api import QueryRequest, QueryResponse, RequestFailure
from .artifact_cache import ArtifactCache
from .executors import ExecutorBackend, make_executor
from .measurement_cache import MeasurementCache
from .pipeline import (
    RequestContext,
    RequestPipeline,
    _attach_failure,
    default_stages,
    derive_request_seed,
    locked_stages,
)
from .robustness import (
    AdmissionController,
    CircuitBreaker,
    RetryPolicy,
)
from .session import Session, SessionEvent, SessionManager

__all__ = ["PlanScheduler", "derive_request_seed"]


class PlanScheduler:
    """Executes :class:`QueryRequest`\\ s synchronously or in batches."""

    def __init__(
        self,
        manager: SessionManager,
        measurement_cache: MeasurementCache | None = None,
        artifact_cache: ArtifactCache | None = None,
        max_workers: int = 4,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        admission: AdmissionController | None = None,
        breaker: CircuitBreaker | None = None,
        fault_injector: FaultInjector | None = None,
        executor: str | ExecutorBackend | None = None,
        flight_recorder: FlightRecorder | None = None,
        slo_engine: SloEngine | None = None,
    ):
        #: the session directory: a SessionManager or a ShardRouter (they
        #: duck-type the same create/get/close/adopt surface).
        self.manager = manager
        self.measurement_cache = measurement_cache if measurement_cache is not None else MeasurementCache()
        self.artifact_cache = artifact_cache if artifact_cache is not None else ArtifactCache()
        self.max_workers = max_workers
        #: per-request tracing; the no-op NULL_TRACER (the default) records
        #: nothing and costs one shared no-op handle per instrumented seam.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: cross-request aggregates (latency/queue-wait histograms per tenant,
        #: outcome and cache counters, privacy-spend odometer); always on —
        #: a handful of dict operations per request.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.measurement_cache.bind_metrics(self.metrics)
        self.artifact_cache.bind_metrics(self.metrics)
        #: backpressure: None admits everything (the default).
        self.admission = admission
        #: per-plan failure shedding: None never sheds (the default).
        self.breaker = breaker
        #: crash-harness seam (``scheduler.worker``); None in production.
        self.fault_injector = fault_injector
        #: where driving threads and plan compute run ("inline", "thread",
        #: "process" or an ExecutorBackend instance; default: thread pool).
        self.executor = make_executor(executor, max_workers=max_workers)
        #: postmortem capture: None (the default) records nothing.  With a
        #: recorder attached, every finished span (adopted worker spans
        #: included) and request outcome enters its ring buffers, and request
        #: failures / breaker opens / worker deaths trigger a bundle dump.
        self.flight_recorder = flight_recorder
        if flight_recorder is not None and self.tracer is not NULL_TRACER:
            self.tracer.add_listener(flight_recorder.record_span)
        #: burn-rate alerting over this scheduler's registry; None by default
        #: (``export.slo_report`` builds an ephemeral engine on demand).  An
        #: injected engine must be built over ``self.metrics``.
        self.slo_engine = slo_engine
        #: the outer request chain and the locked interior it hands off to
        #: (via :meth:`_run_locked`, the documented stall/wrap seam).
        self._pipeline = RequestPipeline(default_stages(self))
        self._locked_pipeline = RequestPipeline(locked_stages(self))

    def shutdown(self, wait: bool = True) -> None:
        """Release the executor backend's pools (idempotent)."""
        self.executor.shutdown(wait=wait)

    def close_session(self, session_id: str, drain: bool = True) -> Session:
        """Close a session and drop its cached releases.

        Prefer this over :meth:`SessionManager.close` when a scheduler is in
        play — the manager alone cannot reach the measurement cache, and a
        long-running service would otherwise accumulate unreachable entries
        for every closed session.  See :meth:`SessionManager.close` for the
        in-flight drain semantics.
        """
        session = self.manager.close(session_id, drain=drain)
        self.measurement_cache.invalidate_session(session)
        return session

    # ------------------------------------------------------------------
    # Durability & sharding.
    # ------------------------------------------------------------------
    def snapshot_session(self, session_id: str) -> dict:
        """Snapshot a session, including its cached releases."""
        session = self.manager.get(session_id)
        return session.snapshot(measurement_cache=self.measurement_cache)

    def restore_session(
        self,
        table,
        snapshot: dict | None = None,
        journal=None,
        strict: bool = True,
    ) -> Session:
        """Rebuild a crashed session into this scheduler's manager and cache.

        See :func:`repro.durability.restore_session`; the restored session
        is verified against the reconciliation oracle and adopted by the
        manager (a :class:`~repro.service.sharding.ShardRouter` places it on
        its ring shard), and its released answers land back in the
        measurement cache for zero-ε replay.
        """
        from ..durability.snapshot import restore_session as _restore_session

        session = _restore_session(
            table,
            snapshot=snapshot,
            journal=journal,
            manager=self.manager,
            measurement_cache=self.measurement_cache,
            strict=strict,
        )
        self.metrics.counter("service_recoveries", tenant=session.tenant).inc()
        return session

    def migrate_session(self, session_id: str, target_shard_id: str, strict: bool = True) -> Session:
        """Move a session to another shard, carrying its cached releases.

        Requires the scheduler's directory to be a
        :class:`~repro.service.sharding.ShardRouter`; see its
        :meth:`~repro.service.sharding.ShardRouter.migrate_session` for the
        drain/snapshot/restore/reconcile semantics.
        """
        router = self.manager
        if not hasattr(router, "migrate_session"):
            raise TypeError(
                "migrate_session requires the scheduler to run on a ShardRouter; "
                f"got {type(router).__name__}"
            )
        # The migration runs under its own trace (drain → snapshot → restore
        # seams inside the router attach via trace_span), so a rebalance is
        # as observable as a request — across the same backends.
        with activate(self.tracer), self.tracer.span(
            "service.migrate", session=session_id, target=target_shard_id
        ):
            session = router.migrate_session(
                session_id,
                target_shard_id,
                measurement_cache=self.measurement_cache,
                strict=strict,
            )
        self.metrics.counter(
            "service_migrations", tenant=session.tenant, shard=target_shard_id
        ).inc()
        return session

    # ------------------------------------------------------------------
    # Synchronous path.
    # ------------------------------------------------------------------
    def execute(self, request: QueryRequest) -> QueryResponse:
        """Answer one request, blocking until done."""
        session = self.manager.get(request.session_id)
        if request.request_id is None:
            request = replace(request, request_id=session.next_request_id())
        queued_at = time.perf_counter()
        return self._execute_guarded(session, request, queued_at)

    def execute_with_retry(
        self, request: QueryRequest, policy: RetryPolicy | None = None
    ) -> QueryResponse:
        """Answer one request, retrying transient faults budget-safely.

        Every attempt reuses the same request id — hence the same derived
        noise seed and the same cache key — and forces ``reuse=True``, so an
        attempt that failed *after* its answer was stored (e.g. a journal
        fsync hiccup) is satisfied from the measurement cache at zero
        additional ε on the retry.  Budget a failed attempt did spend is
        already ledgered as an errored event; a retry never re-charges it.
        """
        policy = policy if policy is not None else RetryPolicy()
        session = self.manager.get(request.session_id)
        if request.request_id is None:
            request = replace(request, request_id=session.next_request_id())
        rng = policy.rng()
        failures = 0
        trace_id: str | None = None
        while True:
            try:
                return self._execute_guarded(
                    session,
                    request,
                    time.perf_counter(),
                    trace_id=trace_id,
                    attempt=failures + 1,
                )
            except Exception as exc:
                failures += 1
                # Link the retry into the originating attempt's trace: every
                # attempt's root span carries the same trace id plus its own
                # ``attempt`` attribute, so a retried request reads as one
                # trace instead of N disconnected ones.
                if trace_id is None:
                    failure = RequestFailure.of(exc)
                    if failure is not None and failure.trace_id is not None:
                        trace_id = failure.trace_id
                if failures >= policy.max_attempts or not policy.is_retryable(exc):
                    raise
                self.metrics.counter(
                    "service_retries", tenant=session.tenant, plan=request.plan
                ).inc()
                time.sleep(policy.delay(failures, rng))
                request = replace(request, reuse=True)

    def _execute_guarded(
        self,
        session: Session,
        request: QueryRequest,
        queued_at: float | None,
        trace_id: str | None = None,
        attempt: int = 1,
    ) -> QueryResponse:
        """One request through the full stage chain (see the module docs)."""
        return self._pipeline.execute(
            session, request, queued_at, trace_id=trace_id, attempt=attempt
        )

    def _run_locked(
        self,
        session: Session,
        request: QueryRequest,
        queued_at: float | None,
        root,
    ) -> QueryResponse:
        """The locked interior: deadline gate → cache probe → plan run.

        Called by the outer pipeline with the session lock held and the
        request's root span active.  This is the documented seam for tests
        (and subclasses) that need to stall or wrap plan execution while the
        lock is held — wrappers must preserve the signature.
        """
        ctx = RequestContext(
            session=session, request=request, queued_at=queued_at, root=root
        )
        return self._locked_pipeline.run_ctx(ctx)

    def _commit_journal(self, session: Session) -> None:
        journal = session.journal
        if journal is None:
            return
        started = time.perf_counter()
        journal.commit()
        self.metrics.histogram(
            "service_journal_commit_seconds", tenant=session.tenant
        ).observe(time.perf_counter() - started)

    def _observe(
        self,
        session: Session,
        request: QueryRequest,
        outcome: str,
        duration: float,
        queue_wait: float,
        spent: float,
    ) -> None:
        """Fold one finished (or failed) request into the metrics registry."""
        metrics = self.metrics
        tenant = session.tenant
        shard = session.shard_id
        request_labels = {"tenant": tenant, "plan": request.plan, "outcome": outcome}
        if shard is not None:
            # Shard labels only exist on sharded services: an unsharded
            # deployment's metric series are byte-identical to PR-1's.
            request_labels["shard"] = shard
            metrics.histogram(
                "shard_request_latency_seconds", shard=shard
            ).observe(duration)
        metrics.counter("service_requests", **request_labels).inc()
        metrics.histogram("service_request_latency_seconds", tenant=tenant).observe(duration)
        metrics.histogram("service_request_queue_wait_seconds", tenant=tenant).observe(
            queue_wait
        )
        unit = "rho" if session.kernel.accountant.name == "zcdp" else "epsilon"
        metrics.record_privacy_spend(tenant, request.plan, spent, unit=unit, shard=shard)
        recorder = self.flight_recorder
        if recorder is not None:
            recorder.record_outcome(
                {
                    "request_id": request.request_id,
                    "session_id": session.session_id,
                    "tenant": tenant,
                    "plan": request.plan,
                    "outcome": outcome,
                    "duration_seconds": duration,
                    "queue_wait_seconds": queue_wait,
                    "epsilon_spent": spent,
                    "shard": shard,
                }
            )
            if outcome in ("error", "timeout"):
                self._postmortem(
                    "request_failure",
                    request_id=request.request_id,
                    plan=request.plan,
                    tenant=tenant,
                    outcome=outcome,
                )

    def _postmortem(self, reason: str, **context) -> dict | None:
        """Dump a flight-recorder bundle (no-op without a recorder)."""
        recorder = self.flight_recorder
        if recorder is None:
            return None
        return recorder.dump(reason, scheduler=self, context=context)

    # ------------------------------------------------------------------
    # Batched path.
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        max_workers: int | None = None,
        return_exceptions: bool = False,
    ) -> list[QueryResponse | Exception]:
        """Answer a batch of requests concurrently, preserving input order.

        Driving fans out over the scheduler's executor backend; passing an
        explicit ``max_workers`` instead runs the batch on an ephemeral
        thread pool of that size (PR-1's semantics, still the right tool for
        a one-off differently-sized burst).  Request ids (hence noise seeds)
        are assigned in submission order *before* dispatch, so batch results
        are reproducible no matter how the pool — or backend — interleaves
        execution.  (Exception: two *identical* ``reuse=True`` requests in
        one batch race for who computes and who replays, so which request
        id's seed produced the shared answer is scheduling-dependent — the
        answer itself is released only once either way.)

        Every request runs to completion (and is ledgered) regardless of the
        others.  With ``return_exceptions=True`` a failed request's slot
        holds the exception object instead of a response; otherwise the
        first failure (in input order) is re-raised after the whole batch
        has finished.  Either way the exception is the *original* one, with
        a :class:`~repro.service.api.RequestFailure` attached under
        ``request_failure`` carrying the request id, batch slot, originating
        trace id and any partial spend — so a failed slot never loses its
        batch context.

        A worker that dies outright (:class:`~repro.durability.WorkerDeath`,
        which bypasses all ``except Exception`` accounting) is handled here:
        the collector claims any budget/history the dead request charged but
        never recorded — via :meth:`Session.claim_orphans` — as one errored
        event with the true partial spend, so the session's ledger still
        reconciles exactly; its failure carries ``ledgered=False``.
        """
        assigned = []
        for request in requests:
            if request.request_id is None:
                session = self.manager.get(request.session_id)
                request = replace(request, request_id=session.next_request_id())
            assigned.append(request)
        if not assigned:
            return []
        pool = (
            ThreadPoolExecutor(max_workers=max(max_workers, 1))
            if max_workers is not None
            else None
        )
        submit = pool.submit if pool is not None else self.executor.submit
        try:
            queued_at = time.perf_counter()
            futures = [
                submit(self._execute_assigned, request, queued_at)
                for request in assigned
            ]
            results: list[QueryResponse | Exception] = []
            for index, (request, future) in enumerate(zip(assigned, futures)):
                try:
                    results.append(future.result())
                except (Exception, WorkerDeath) as exc:
                    failure = RequestFailure.of(exc)
                    if failure is None:
                        # The request died before the accounting path could
                        # run — a dead worker, an unknown session id:
                        # synthesise the context and flag it un-ledgered.
                        failure = RequestFailure(
                            request_id=request.request_id,
                            session_id=request.session_id,
                            plan=request.plan,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            ledgered=False,
                        )
                    if failure.batch_index is None:
                        failure = replace(failure, batch_index=index)
                    if isinstance(exc, WorkerDeath):
                        self._postmortem(
                            "worker_death",
                            request_id=request.request_id,
                            plan=request.plan,
                            error=str(exc),
                        )
                    if not failure.ledgered:
                        try:
                            orphans = self._claim_orphaned_spend(request, exc)
                        except Exception:
                            # A journal hiccup on the cleanup commit must not
                            # sink the batch: the claim events are already in
                            # the in-memory ledger, and a restore re-claims
                            # whatever didn't reach disk.
                            orphans = []
                        if orphans:
                            spent = math.fsum(o.epsilon_spent for o in orphans)
                            failure = replace(failure, epsilon_spent=spent)
                    _attach_failure(exc, failure)
                    results.append(exc)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        if not return_exceptions:
            for outcome in results:
                if isinstance(outcome, BaseException):
                    raise outcome
        return results

    def _claim_orphaned_spend(
        self, request: QueryRequest, exc: BaseException
    ) -> list[SessionEvent]:
        """Balance the ledger after a request died outside the except path."""
        try:
            session = self.manager.get(request.session_id)
        except KeyError:
            return []  # the request never resolved to a session
        orphans = session.claim_orphans(error=type(exc).__name__)
        if orphans:
            self._commit_journal(session)
            self.metrics.counter(
                "service_orphaned_requests", tenant=session.tenant
            ).inc()
        return orphans

    def _execute_assigned(
        self, request: QueryRequest, queued_at: float | None = None
    ) -> QueryResponse:
        session = self.manager.get(request.session_id)
        return self._execute_guarded(session, request, queued_at)
