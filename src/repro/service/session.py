"""Per-tenant sessions and the manager that owns them.

A :class:`Session` is the service-side wrapper around one
:class:`~repro.private.kernel.ProtectedKernel`: it owns the kernel, the root
handle, a lazily-vectorised source plans run against, a re-entrant lock that
serialises all budget-spending work on the kernel, and an append-only audit
trail of :class:`SessionEvent` records (one per scheduled request).

Sessions can be made **durable** by attaching a
:class:`~repro.durability.PrivacyJournal`: every accepted budget charge,
every kernel measurement record and every audit-trail event is appended to
the journal the instant it happens — charges *before* the in-memory ledger
mutates — so a crash at any instruction loses at most budget, never
accounting integrity.  :meth:`Session.snapshot` and
:func:`repro.durability.restore_session` round-trip the whole state.

The :class:`SessionManager` creates and tracks sessions.  Isolation is
structural: every session has its own kernel, its own budget tracker and its
own lock, so concurrent work on different sessions can never cross budgets.
"""

from __future__ import annotations

import itertools
import math
import threading
from dataclasses import asdict, dataclass

import numpy as np

from ..accounting import Accountant, make_accountant
from ..dataset.relation import Relation
from ..private.budget import LEDGER_TOLERANCE
from ..private.kernel import BudgetSnapshot, MeasurementRecord, ProtectedKernel
from ..private.protected import ProtectedDataSource

#: Process-wide counter making every Session object distinguishable even when
#: a session id is reused after a close (cache entries must never cross).
_CACHE_SCOPES = itertools.count(1)


@dataclass(frozen=True)
class SessionEvent:
    """One audit-trail entry: what a scheduled request did to the session."""

    request_id: str
    plan: str
    workload: str | None
    epsilon_requested: float
    epsilon_spent: float
    cached: bool
    seed: int | None
    #: history indices [start, end) of the kernel measurements this request
    #: produced (an empty span for cache hits).
    history_start: int
    history_end: int
    tag: str = ""
    #: exception type name when the plan failed mid-execution ("" on success);
    #: the event still claims whatever budget/history the partial run produced.
    error: str = ""
    #: wall-clock seconds the request spent executing under the session lock
    #: (cache hits included — replay time is real latency too).
    duration_seconds: float = 0.0
    #: seconds between the request being scheduled (batch submission or
    #: ``execute`` entry) and execution starting — lock contention plus
    #: thread-pool queueing.
    queue_wait_seconds: float = 0.0
    #: trace id of the request's span tree when tracing was enabled, else None.
    trace_id: str | None = None
    #: id of the shard that executed the request when the service runs behind
    #: a :class:`~repro.service.sharding.ShardRouter` (audit correlation:
    #: which worker's journal holds the charge records); None unsharded.
    shard_id: str | None = None


class Session:
    """One tenant-facing handle to a protected kernel with its own ledger."""

    def __init__(
        self,
        session_id: str,
        tenant: str,
        table: Relation,
        epsilon_total: float,
        seed: int | None = None,
        accountant: str | Accountant | None = None,
        delta: float = 1e-6,
    ):
        self.session_id = session_id
        self.tenant = tenant
        #: base seed all per-request seeds are derived from.  When the caller
        #: does not pin one, it is drawn from OS entropy so an outside
        #: observer cannot reconstruct (and subtract) the noise from the
        #: public seed-derivation inputs; pass an explicit seed to make every
        #: response of the session reproducible.
        self.base_seed = (
            int(np.random.SeedSequence().entropy) if seed is None else int(seed)
        )
        #: the (ε, δ) target the session was *requested* with — the
        #: accountant's constructor arguments, which a snapshot records so a
        #: restore can rebuild an identical accountant (``epsilon_total`` is
        #: ε even for a zCDP session whose native budget is ρ).
        self.requested_epsilon_total = float(epsilon_total)
        self.requested_delta = float(delta)
        #: per-tenant privacy calculus: ``None``/``"pure"`` is the paper's
        #: ε-DP; ``"approx"``/``"zcdp"`` resolve against the tenant's
        #: ``(epsilon_total, delta)`` target; an Accountant instance is used
        #: as-is (its own budget wins over ``epsilon_total``).
        self.accountant = make_accountant(accountant, epsilon_total, delta=delta)
        self.kernel = ProtectedKernel(
            table, epsilon_total, seed=self.base_seed, accountant=self.accountant
        )
        #: opaque scope token distinguishing this Session object from any
        #: earlier one that carried the same session id (cache isolation).
        self.cache_scope = next(_CACHE_SCOPES)
        self.lock = threading.RLock()
        self.events: list[SessionEvent] = []
        self._root = ProtectedDataSource(self.kernel, "root")
        self._vector: ProtectedDataSource | None = None
        #: number of request ids handed out so far (a plain int so snapshots
        #: can record and restore it; mutated only under the session lock).
        self.request_counter = 0
        #: durable write-ahead journal; None until :meth:`attach_journal`.
        self.journal = None
        #: populated by :func:`repro.durability.restore_session` on a
        #: restored session (replayed record count, orphan event, reconcile).
        self.recovery_info: dict | None = None
        #: stamped by the :class:`~repro.service.sharding.ShardRouter` when
        #: the session lives on a shard; None under a bare SessionManager.
        self.shard_id: str | None = None
        #: the private relation this session's kernel was built around.  Held
        #: for the *service side only* — migration and restore must supply
        #: the original data, and the service layer (which constructed the
        #: kernel from it) is already trusted with it.  Never serialised.
        self._table = table
        self._closing = False
        self._closed = False

    # ------------------------------------------------------------------
    # Handles.
    # ------------------------------------------------------------------
    @property
    def root(self) -> ProtectedDataSource:
        """The root table handle."""
        return self._root

    @property
    def table(self) -> Relation:
        """The private relation (service-side trusted access; see ``_table``)."""
        return self._table

    def vector_source(self) -> ProtectedDataSource:
        """The session's vectorised source (built once, then shared).

        Sharing one handle means all measurements compose sequentially on the
        same lineage — exactly the ledger a tenant expects.
        """
        with self.lock:
            if self._vector is None:
                self._vector = self._root.vectorize()
            return self._vector

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------
    @property
    def epsilon_total(self) -> float:
        return self.kernel.epsilon_total

    def budget_consumed(self) -> float:
        return self.kernel.budget_consumed()

    def budget_remaining(self) -> float:
        return self.kernel.budget_remaining()

    def budget_snapshot(self) -> BudgetSnapshot:
        return self.kernel.budget_snapshot()

    def accounting_report(self) -> dict:
        """Spend in the accountant's native units plus converted ``(ε, δ)``.

        Budget counters (``budget_consumed`` / ``epsilon_spent`` on events)
        are native units — bare ε for pure/approximate DP, ρ for zCDP; this
        report is where a zCDP session's spend becomes a quotable DP
        statement for audits and client dashboards.
        """
        return self.kernel.accounting_report()

    def next_request_id(self) -> str:
        """Sequential request ids; also the anchor of per-request seeding."""
        with self.lock:
            self.request_counter += 1
            return f"{self.session_id}-r{self.request_counter}"

    def record(self, event: SessionEvent) -> None:
        """Append one audit-trail event, journal-first when durable."""
        with self.lock:
            if self.journal is not None:
                # vars(), not asdict(): SessionEvent is flat scalars, and
                # asdict's recursive copying is measurable on the hot path.
                self.journal.append({"kind": "event", **vars(event)})
            self.events.append(event)

    def measurements_for(self, event: SessionEvent) -> list[MeasurementRecord]:
        """The kernel history records produced by one audit-trail event."""
        return self.kernel.history()[event.history_start : event.history_end]

    # ------------------------------------------------------------------
    # Durability.
    # ------------------------------------------------------------------
    def attach_journal(self, journal, write_open: bool = True) -> None:
        """Mirror all privacy-relevant state changes into ``journal``.

        Wires the write-ahead hooks: accepted root-level budget charges are
        appended *before* the in-memory ledger mutates (an append failure
        aborts the charge; a crash right after it merely wastes the charged
        budget), measurement records before the noisy answer is returned,
        audit events before they land on :attr:`events`.  ``write_open``
        stamps the session's opening metadata so the journal alone suffices
        to rebuild the session (restores pass ``False``: their journal
        already has it).
        """
        with self.lock:
            self.journal = journal
            tracker = self.kernel.budget_tracker
            tracker.charge_listener = lambda cost: journal.append(
                {"kind": "charge", "p": cost.primary, "d": cost.delta}
            )
            self.kernel.measurement_listener = lambda record: journal.append(
                {"kind": "measurement", **vars(record)}
            )
            if write_open:
                journal.append(
                    {
                        "kind": "open",
                        "session_id": self.session_id,
                        "tenant": self.tenant,
                        "base_seed": self.base_seed,
                        "epsilon_total": self.requested_epsilon_total,
                        "delta": self.requested_delta,
                        "accountant": self.accountant.name,
                        "describe": self.accountant.describe(),
                    }
                )
                journal.commit()

    def detach_journal(self) -> None:
        """Stop journaling (the journal itself is left to the caller)."""
        with self.lock:
            self.kernel.budget_tracker.charge_listener = None
            self.kernel.measurement_listener = None
            self.journal = None

    def snapshot(self, measurement_cache=None) -> dict:
        """JSON-ready snapshot of the session's durable state.

        Delegates to :func:`repro.durability.snapshot_session`; pass the
        scheduler's measurement cache to include released answers.
        """
        from ..durability.snapshot import snapshot_session

        return snapshot_session(self, measurement_cache=measurement_cache)

    def claim_orphans(self, error: str = "WorkerDeath") -> list[SessionEvent]:
        """Ledger budget/history a dead request charged but never recorded.

        A worker that dies mid-request (or a crash inside the charge-ahead
        window) leaves kernel-side spend and history rows no audit event
        claims, so :func:`~repro.service.export.reconcile` would flag the
        session forever.  This synthesizes errored events claiming exactly
        the unclaimed history rows — one event per contiguous run, since a
        dead request's rows can be a *hole* when later requests completed
        after it — restoring the one-event-per-charge invariant.  Each run
        is priced from the kernel's own per-record costs; any residual
        spend with no history row at all (a death between charge and
        record, the charge-ahead window) rides on the last event.  Returns
        the synthesized events (empty when the ledgers already balance).
        """
        with self.lock:
            history = self.kernel.history()
            num_records = len(history)
            claimed = set()
            for event in self.events:
                if not event.cached:
                    claimed.update(range(event.history_start, event.history_end))
            unclaimed = [i for i in range(num_records) if i not in claimed]
            orphan_spend = self.kernel.budget_consumed() - math.fsum(
                event.epsilon_spent for event in self.events
            )
            if orphan_spend <= LEDGER_TOLERANCE and not unclaimed:
                return []
            # Contiguous runs of unclaimed indices, e.g. [1, 2, 5] -> [1,3), [5,6).
            runs: list[list[int]] = []
            for index in unclaimed:
                if runs and index == runs[-1][1]:
                    runs[-1][1] = index + 1
                else:
                    runs.append([index, index + 1])
            if not runs:
                # Spend with no history row: claim it on an empty tail span.
                runs.append([num_records, num_records])
            recorded = math.fsum(
                history[i].cost for run in runs for i in range(run[0], run[1])
            )
            residual = max(orphan_spend - recorded, 0.0)
            events = []
            for k, (start, end) in enumerate(runs):
                spend = math.fsum(history[i].cost for i in range(start, end))
                if k == len(runs) - 1:
                    spend += residual
                event = SessionEvent(
                    request_id=self.next_request_id(),
                    plan="(orphaned)",
                    workload=None,
                    epsilon_requested=0.0,
                    epsilon_spent=spend,
                    cached=False,
                    seed=None,
                    history_start=start,
                    history_end=end,
                    error=error,
                )
                self.record(event)
                events.append(event)
            return events

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def closing(self) -> bool:
        """True once a close has begun: new requests must be rejected."""
        return self._closing or self._closed

    def begin_close(self) -> None:
        """Stop admitting new requests (in-flight work may still drain)."""
        self._closing = True

    def close(self) -> None:
        self._closing = True
        self._closed = True
        if self.journal is not None:
            self.journal.commit()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({self.session_id!r}, tenant={self.tenant!r}, "
            f"consumed={self.budget_consumed():.3g}/{self.epsilon_total:g})"
        )


class SessionManager:
    """Creates, indexes and closes sessions; the service's tenant directory."""

    def __init__(self):
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)

    def create_session(
        self,
        tenant: str,
        table: Relation,
        epsilon_total: float,
        seed: int | None = None,
        session_id: str | None = None,
        accountant: str | Accountant | None = None,
        delta: float = 1e-6,
        journal=None,
    ) -> Session:
        """Open a session for ``tenant`` around a fresh protected kernel.

        ``accountant`` picks the tenant's privacy calculus (``"pure"``,
        ``"approx"``, ``"zcdp"`` or an :class:`~repro.accounting.Accountant`
        instance); ``delta`` is the δ of the tenant's ``(ε, δ)`` target for
        the non-pure accountants.  ``journal`` attaches a
        :class:`~repro.durability.PrivacyJournal` making the session
        crash-safe from its very first charge.
        """
        with self._lock:
            if session_id is None:
                session_id = f"{tenant}-s{next(self._counter)}"
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already exists")
            session = Session(
                session_id,
                tenant,
                table,
                epsilon_total,
                seed=seed,
                accountant=accountant,
                delta=delta,
            )
            self._sessions[session_id] = session
        if journal is not None:
            session.attach_journal(journal)
        return session

    def adopt(self, session: Session) -> Session:
        """Index an externally-built session (the restore path)."""
        with self._lock:
            if session.session_id in self._sessions:
                raise ValueError(
                    f"session {session.session_id!r} already exists; close it "
                    "before adopting a restored replacement"
                )
            self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            if session_id not in self._sessions:
                raise KeyError(f"unknown session {session_id!r}")
            return self._sessions[session_id]

    def close(self, session_id: str, drain: bool = True, timeout: float | None = None) -> Session:
        """Close and drop a session; its kernel (and budget ledger) survives
        on the returned object for final auditing.

        Closing a session with requests in flight is well-defined:

        * the session stops admitting new requests immediately (they raise
          :class:`~repro.service.robustness.SessionClosedError`, un-ledgered
          — they never touched the session);
        * with ``drain=True`` (the default) the close then waits for the
          session lock, i.e. for every in-flight request to finish and be
          ledgered, before marking the session closed — the returned ledger
          is final and reconciles;
        * with ``drain=False`` the session is marked closed without waiting;
          an in-flight request still completes and is ledgered (it already
          held the lock), but the caller gets the session back immediately.

        ``timeout`` bounds the drain wait in seconds; on expiry the session
        is closed without further waiting (as if ``drain=False``).
        """
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown session {session_id!r}")
        # Reject new work first, then drain: requests that arrive after this
        # line never execute, so the lock wait below is bounded by work that
        # was already in flight.
        session.begin_close()
        if drain:
            acquired = session.lock.acquire(
                timeout=-1 if timeout is None else timeout
            )
            try:
                session.close()
            finally:
                if acquired:
                    session.lock.release()
        else:
            session.close()
        with self._lock:
            self._sessions.pop(session_id, None)
        return session

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def for_tenant(self, tenant: str) -> list[Session]:
        return [session for session in self.sessions() if session.tenant == tenant]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions
