"""Per-tenant sessions and the manager that owns them.

A :class:`Session` is the service-side wrapper around one
:class:`~repro.private.kernel.ProtectedKernel`: it owns the kernel, the root
handle, a lazily-vectorised source plans run against, a re-entrant lock that
serialises all budget-spending work on the kernel, and an append-only audit
trail of :class:`SessionEvent` records (one per scheduled request).

The :class:`SessionManager` creates and tracks sessions.  Isolation is
structural: every session has its own kernel, its own budget tracker and its
own lock, so concurrent work on different sessions can never cross budgets.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

import numpy as np

from ..accounting import Accountant, make_accountant
from ..dataset.relation import Relation
from ..private.kernel import BudgetSnapshot, MeasurementRecord, ProtectedKernel
from ..private.protected import ProtectedDataSource

#: Process-wide counter making every Session object distinguishable even when
#: a session id is reused after a close (cache entries must never cross).
_CACHE_SCOPES = itertools.count(1)


@dataclass(frozen=True)
class SessionEvent:
    """One audit-trail entry: what a scheduled request did to the session."""

    request_id: str
    plan: str
    workload: str | None
    epsilon_requested: float
    epsilon_spent: float
    cached: bool
    seed: int | None
    #: history indices [start, end) of the kernel measurements this request
    #: produced (an empty span for cache hits).
    history_start: int
    history_end: int
    tag: str = ""
    #: exception type name when the plan failed mid-execution ("" on success);
    #: the event still claims whatever budget/history the partial run produced.
    error: str = ""
    #: wall-clock seconds the request spent executing under the session lock
    #: (cache hits included — replay time is real latency too).
    duration_seconds: float = 0.0
    #: seconds between the request being scheduled (batch submission or
    #: ``execute`` entry) and execution starting — lock contention plus
    #: thread-pool queueing.
    queue_wait_seconds: float = 0.0
    #: trace id of the request's span tree when tracing was enabled, else None.
    trace_id: str | None = None


class Session:
    """One tenant-facing handle to a protected kernel with its own ledger."""

    def __init__(
        self,
        session_id: str,
        tenant: str,
        table: Relation,
        epsilon_total: float,
        seed: int | None = None,
        accountant: str | Accountant | None = None,
        delta: float = 1e-6,
    ):
        self.session_id = session_id
        self.tenant = tenant
        #: base seed all per-request seeds are derived from.  When the caller
        #: does not pin one, it is drawn from OS entropy so an outside
        #: observer cannot reconstruct (and subtract) the noise from the
        #: public seed-derivation inputs; pass an explicit seed to make every
        #: response of the session reproducible.
        self.base_seed = (
            int(np.random.SeedSequence().entropy) if seed is None else int(seed)
        )
        #: per-tenant privacy calculus: ``None``/``"pure"`` is the paper's
        #: ε-DP; ``"approx"``/``"zcdp"`` resolve against the tenant's
        #: ``(epsilon_total, delta)`` target; an Accountant instance is used
        #: as-is (its own budget wins over ``epsilon_total``).
        self.accountant = make_accountant(accountant, epsilon_total, delta=delta)
        self.kernel = ProtectedKernel(
            table, epsilon_total, seed=self.base_seed, accountant=self.accountant
        )
        #: opaque scope token distinguishing this Session object from any
        #: earlier one that carried the same session id (cache isolation).
        self.cache_scope = next(_CACHE_SCOPES)
        self.lock = threading.RLock()
        self.events: list[SessionEvent] = []
        self._root = ProtectedDataSource(self.kernel, "root")
        self._vector: ProtectedDataSource | None = None
        self._request_counter = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------
    # Handles.
    # ------------------------------------------------------------------
    @property
    def root(self) -> ProtectedDataSource:
        """The root table handle."""
        return self._root

    def vector_source(self) -> ProtectedDataSource:
        """The session's vectorised source (built once, then shared).

        Sharing one handle means all measurements compose sequentially on the
        same lineage — exactly the ledger a tenant expects.
        """
        with self.lock:
            if self._vector is None:
                self._vector = self._root.vectorize()
            return self._vector

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------
    @property
    def epsilon_total(self) -> float:
        return self.kernel.epsilon_total

    def budget_consumed(self) -> float:
        return self.kernel.budget_consumed()

    def budget_remaining(self) -> float:
        return self.kernel.budget_remaining()

    def budget_snapshot(self) -> BudgetSnapshot:
        return self.kernel.budget_snapshot()

    def accounting_report(self) -> dict:
        """Spend in the accountant's native units plus converted ``(ε, δ)``.

        Budget counters (``budget_consumed`` / ``epsilon_spent`` on events)
        are native units — bare ε for pure/approximate DP, ρ for zCDP; this
        report is where a zCDP session's spend becomes a quotable DP
        statement for audits and client dashboards.
        """
        return self.kernel.accounting_report()

    def next_request_id(self) -> str:
        """Sequential request ids; also the anchor of per-request seeding."""
        return f"{self.session_id}-r{next(self._request_counter)}"

    def record(self, event: SessionEvent) -> None:
        with self.lock:
            self.events.append(event)

    def measurements_for(self, event: SessionEvent) -> list[MeasurementRecord]:
        """The kernel history records produced by one audit-trail event."""
        return self.kernel.history()[event.history_start : event.history_end]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({self.session_id!r}, tenant={self.tenant!r}, "
            f"consumed={self.budget_consumed():.3g}/{self.epsilon_total:g})"
        )


class SessionManager:
    """Creates, indexes and closes sessions; the service's tenant directory."""

    def __init__(self):
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)

    def create_session(
        self,
        tenant: str,
        table: Relation,
        epsilon_total: float,
        seed: int | None = None,
        session_id: str | None = None,
        accountant: str | Accountant | None = None,
        delta: float = 1e-6,
    ) -> Session:
        """Open a session for ``tenant`` around a fresh protected kernel.

        ``accountant`` picks the tenant's privacy calculus (``"pure"``,
        ``"approx"``, ``"zcdp"`` or an :class:`~repro.accounting.Accountant`
        instance); ``delta`` is the δ of the tenant's ``(ε, δ)`` target for
        the non-pure accountants.
        """
        with self._lock:
            if session_id is None:
                session_id = f"{tenant}-s{next(self._counter)}"
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already exists")
            session = Session(
                session_id,
                tenant,
                table,
                epsilon_total,
                seed=seed,
                accountant=accountant,
                delta=delta,
            )
            self._sessions[session_id] = session
            return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            if session_id not in self._sessions:
                raise KeyError(f"unknown session {session_id!r}")
            return self._sessions[session_id]

    def close(self, session_id: str) -> Session:
        """Close and drop a session; its kernel (and budget ledger) survives
        on the returned object for final auditing."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise KeyError(f"unknown session {session_id!r}")
        session.close()
        return session

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def for_tenant(self, tenant: str) -> list[Session]:
        return [session for session in self.sessions() if session.tenant == tenant]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions
