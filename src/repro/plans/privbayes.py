"""PrivBayes baseline and the PrivBayesLS plan (Sec. 9.2, plan #17).

PrivBayes privately learns a Bayesian network, measures the marginals that are
its sufficient statistics, and combines them back into a full-domain estimate.
The baseline combines the noisy marginals through the network's factorisation
(its synthetic-data step, here kept in distribution form); PrivBayesLS keeps
the same selection and measurement but replaces that custom combination step
with EKTELO's generic least-squares inference operator — the one-operator swap
the paper credits with the improvement seen in Table 5.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..matrix import Total

from ..operators.selection.privbayes import (
    privbayes_select,
    privbayes_synthetic_distribution,
)
from ..private.protected import ProtectedDataSource
from .base import Plan, PlanResult, infer_least_squares


class _PrivBayesBase(Plan):
    """Shared selection + measurement steps of PrivBayes and PrivBayesLS."""

    def __init__(
        self,
        domain: Sequence[int],
        select_share: float = 0.3,
        max_parents: int = 2,
        seed: int = 0,
    ):
        self.domain = tuple(int(d) for d in domain)
        self.select_share = select_share
        self.max_parents = max_parents
        self.seed = seed

    def _select_and_measure(self, source: ProtectedDataSource, epsilon: float):
        n = source.domain_size
        if int(np.prod(self.domain)) != n:
            raise ValueError("domain does not match the vector source")
        total_epsilon = 0.05 * epsilon
        select_epsilon = self.select_share * epsilon
        measure_epsilon = epsilon - select_epsilon - total_epsilon

        noisy_total = max(source.vector_laplace(Total(n), total_epsilon)[0], 1.0)
        measurements, network = privbayes_select(
            source,
            self.domain,
            select_epsilon,
            max_parents=self.max_parents,
            total_records=noisy_total,
            seed=self.seed,
        )
        answers = source.vector_laplace(measurements, measure_epsilon)
        return measurements, answers, network, noisy_total


class PrivBayesPlan(_PrivBayesBase):
    """The PrivBayes baseline: noisy marginals combined through the Bayes net."""

    name = "PrivBayes"
    signature = "SPB LM (factorised combine)"
    plan_id = None

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        measurements, answers, network, noisy_total = self._select_and_measure(source, epsilon)

        # Slice the stacked answers back into per-marginal tables.
        marginal_estimates: dict[tuple[int, ...], np.ndarray] = {}
        offset = 0
        for attribute, parents in network:
            keep = (attribute, *parents)
            size = int(np.prod([self.domain[a] for a in keep]))
            marginal_estimates[keep] = answers[offset : offset + size]
            offset += size
        distribution = privbayes_synthetic_distribution(network, marginal_estimates, self.domain)
        x_hat = distribution * noisy_total
        return self._wrap(source, before, x_hat, network=network)


class PrivBayesLsPlan(_PrivBayesBase):
    """Plan #17 — PrivBayes selection and measurement with least-squares inference."""

    name = "PrivBayesLS"
    signature = "SPB LM LS"
    plan_id = 17

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        measurements, answers, network, _ = self._select_and_measure(source, epsilon)
        # The measurement stack follows the DP-selected network structure,
        # which varies per request — keep its Gram out of the shared cache.
        estimate = infer_least_squares(measurements, answers)
        x_hat = np.clip(estimate.x_hat, 0.0, None)
        return self._wrap(source, before, x_hat, network=network)
