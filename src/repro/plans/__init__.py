"""Plan library: the algorithms of Fig. 2 plus the case-study plans."""

from .base import Plan, PlanResult, with_representation
from .cdf import cdf_estimator
from .data_dependent import AdaptiveGridPlan, AhpPlan, DawaPlan, MwemPlan
from .data_independent import (
    GreedyHPlan,
    H2Plan,
    HbPlan,
    HdmmPlan,
    IdentityPlan,
    PriveletPlan,
    QuadtreePlan,
    UniformGridPlan,
    UniformPlan,
)
from .mwem_variants import MwemVariantB, MwemVariantC, MwemVariantD
from .naive_bayes import (
    NAIVE_BAYES_PLANS,
    nb_identity,
    nb_select_ls,
    nb_workload,
    nb_workload_ls,
)
from .privbayes import PrivBayesLsPlan, PrivBayesPlan
from .registry import (
    PLAN_TABLE,
    PLANS_BY_ID,
    PLANS_BY_NAME,
    available_plans,
    get_plan,
    make_plan,
    plan_signatures,
)
from .striped import DawaStripedPlan, HbStripedKronPlan, HbStripedPlan

__all__ = [
    "Plan",
    "PlanResult",
    "with_representation",
    "IdentityPlan",
    "UniformPlan",
    "PriveletPlan",
    "H2Plan",
    "HbPlan",
    "GreedyHPlan",
    "QuadtreePlan",
    "UniformGridPlan",
    "HdmmPlan",
    "MwemPlan",
    "AhpPlan",
    "DawaPlan",
    "AdaptiveGridPlan",
    "MwemVariantB",
    "MwemVariantC",
    "MwemVariantD",
    "HbStripedPlan",
    "DawaStripedPlan",
    "HbStripedKronPlan",
    "PrivBayesPlan",
    "PrivBayesLsPlan",
    "cdf_estimator",
    "nb_identity",
    "nb_workload",
    "nb_workload_ls",
    "nb_select_ls",
    "NAIVE_BAYES_PLANS",
    "PLAN_TABLE",
    "PLANS_BY_NAME",
    "PLANS_BY_ID",
    "available_plans",
    "get_plan",
    "make_plan",
    "plan_signatures",
]
