"""Plan registry: the Fig. 2 table as code.

Maps plan names to factories plus the plan-signature metadata used by the
transparency example (``examples/plan_signatures.py``).  Factories take the
keyword arguments a plan needs beyond the protected source and epsilon
(workloads, domain shapes, stripe axes, ...), so benchmarks can instantiate
plans uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from .base import Plan
from .data_dependent import AdaptiveGridPlan, AhpPlan, DawaPlan, MwemPlan
from .data_independent import (
    GreedyHPlan,
    H2Plan,
    HbPlan,
    HdmmPlan,
    IdentityPlan,
    PriveletPlan,
    QuadtreePlan,
    UniformGridPlan,
    UniformPlan,
)
from .mwem_variants import MwemVariantB, MwemVariantC, MwemVariantD
from .privbayes import PrivBayesLsPlan, PrivBayesPlan
from .striped import DawaStripedPlan, HbStripedKronPlan, HbStripedPlan


@dataclass(frozen=True)
class PlanEntry:
    """One row of the Fig. 2 plan table."""

    plan_id: int | None
    name: str
    citation: str
    signature: str
    factory: Callable[..., Plan]


PLAN_TABLE: list[PlanEntry] = [
    PlanEntry(1, "Identity", "Dwork et al. 2006", "SI LM", IdentityPlan),
    PlanEntry(2, "Privelet", "Xiao et al. 2010", "SP LM LS", PriveletPlan),
    PlanEntry(3, "Hierarchical (H2)", "Hay et al. 2010", "SH2 LM LS", H2Plan),
    PlanEntry(4, "Hierarchical Opt (HB)", "Qardaji et al. 2013", "SHB LM LS", HbPlan),
    PlanEntry(5, "Greedy-H", "Li et al. 2014", "SG LM LS", GreedyHPlan),
    PlanEntry(6, "Uniform", "-", "ST LM LS", UniformPlan),
    PlanEntry(7, "MWEM", "Hardt et al. 2012", "I:( SW LM MW )", MwemPlan),
    PlanEntry(8, "AHP", "Zhang et al. 2014", "PA TR SI LM LS", AhpPlan),
    PlanEntry(9, "DAWA", "Li et al. 2014", "PD TR SG LM LS", DawaPlan),
    PlanEntry(10, "Quadtree", "Cormode et al. 2012", "SQ LM LS", QuadtreePlan),
    PlanEntry(11, "UniformGrid", "Qardaji et al. 2013", "SU LM LS", UniformGridPlan),
    PlanEntry(12, "AdaptiveGrid", "Qardaji et al. 2013", "SU LM LS PU TP[ SA LM]", AdaptiveGridPlan),
    PlanEntry(13, "HDMM", "McKenna et al. 2018", "SHD LM LS", HdmmPlan),
    PlanEntry(14, "DAWA-Striped", "NEW", "PS TP[ PD TR SG LM] LS", DawaStripedPlan),
    PlanEntry(15, "HB-Striped", "NEW", "PS TP[ SHB LM] LS", HbStripedPlan),
    PlanEntry(16, "HB-Striped_kron", "NEW", "SS LM LS", HbStripedKronPlan),
    PlanEntry(17, "PrivBayesLS", "NEW", "SPB LM LS", PrivBayesLsPlan),
    PlanEntry(18, "MWEM variant b", "NEW", "I:( SW SH2 LM MW )", MwemVariantB),
    PlanEntry(19, "MWEM variant c", "NEW", "I:( SW LM NLS )", MwemVariantC),
    PlanEntry(20, "MWEM variant d", "NEW", "I:( SW SH2 LM NLS )", MwemVariantD),
    PlanEntry(None, "PrivBayes", "Zhang et al. 2017", "SPB LM (factorised combine)", PrivBayesPlan),
]

PLANS_BY_NAME = {entry.name: entry for entry in PLAN_TABLE}
PLANS_BY_ID = {entry.plan_id: entry for entry in PLAN_TABLE if entry.plan_id is not None}


def get_plan(name: str, **kwargs) -> Plan:
    """Instantiate a plan by its Fig. 2 name."""
    if name not in PLANS_BY_NAME:
        raise KeyError(f"unknown plan {name!r}; available: {sorted(PLANS_BY_NAME)}")
    return PLANS_BY_NAME[name].factory(**kwargs)


def available_plans() -> list[str]:
    """Sorted names of every registered plan (for service discovery)."""
    return sorted(PLANS_BY_NAME)


def make_plan(name: str, params: Mapping[str, object] | None = None) -> Plan:
    """Parameterised registry lookup used by the service scheduler.

    ``params`` is the keyword-argument mapping a request carries (workload
    intervals, domain shapes, representations, ...); ``None`` means the plan's
    defaults.  Unlike :func:`get_plan` this validates the name before touching
    the factory so schedulers can reject bad requests cheaply.
    """
    if name not in PLANS_BY_NAME:
        raise KeyError(f"unknown plan {name!r}; available: {available_plans()}")
    return get_plan(name, **dict(params or {}))


def plan_signatures() -> list[tuple[int | None, str, str]]:
    """The (id, name, signature) triples of Fig. 2, for the transparency example."""
    return [(entry.plan_id, entry.name, entry.signature) for entry in PLAN_TABLE]
