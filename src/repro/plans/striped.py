"""Striped plans for high-dimensional census data (Sec. 9.2, plans #14-#16).

A *stripe* fixes every attribute except one; splitting the full-domain vector
by stripes yields one small 1-D vector per combination of the other
attributes.  Lower-dimensional techniques (HB, DAWA) then run on each stripe,
and parallel composition means the per-stripe budget is the full budget.

* HB-Striped (#15) runs HB on every stripe (the measurements are identical
  across stripes because HB is data-independent);
* DAWA-Striped (#14) runs DAWA on every stripe (the partitions differ because
  DAWA adapts to each stripe's data);
* HB-Striped_kron (#16) expresses the same measurements as HB-Striped with a
  single Kronecker-product measurement matrix — no explicit splitting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..matrix import Identity, ReductionMatrix
from ..operators.partition import l1_partition_batch, stripe_partition
from ..operators.selection import greedy_h_select, hb_select
from ..operators.selection.stripe import stripe_kron_select
from ..private.protected import ProtectedDataSource
from .base import Plan, PlanResult, infer_least_squares, with_representation


class HbStripedPlan(Plan):
    """Plan #15 — partition into stripes, run HB + least squares in each."""

    name = "HB-Striped"
    signature = "PS TP[ SHB LM] LS"
    plan_id = 15

    def __init__(self, domain: Sequence[int], stripe_axis: int, representation: str = "implicit"):
        self.domain = tuple(int(d) for d in domain)
        self.stripe_axis = int(stripe_axis)
        self.representation = representation

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        if int(np.prod(self.domain)) != source.domain_size:
            raise ValueError("domain does not match the vector source")
        partition = stripe_partition(self.domain, self.stripe_axis)
        stripes = source.split_by_partition(partition)
        stripe_length = self.domain[self.stripe_axis]
        measurements = with_representation(hb_select(stripe_length), self.representation)

        estimates = np.zeros(source.domain_size)
        split_indices = partition.split_indices()
        gram_cache = kwargs.get("gram_cache")
        for stripe, cells in zip(stripes, split_indices):
            answers = stripe.vector_laplace(measurements, epsilon)
            # The HB strategy is identical in every stripe, so with a cache
            # one factorisation serves all stripes (and all later requests).
            estimate = infer_least_squares(measurements, answers, gram_cache=gram_cache)
            estimates[cells] = estimate.x_hat
        return self._wrap(
            source, before, estimates, num_stripes=len(stripes), stripe_length=stripe_length
        )


class DawaStripedPlan(Plan):
    """Plan #14 — partition into stripes, run the full DAWA pipeline in each."""

    name = "DAWA-Striped"
    signature = "PS TP[ PD TR SG LM] LS"
    plan_id = 14

    def __init__(
        self,
        domain: Sequence[int],
        stripe_axis: int,
        partition_share: float = 0.25,
        representation: str = "implicit",
    ):
        self.domain = tuple(int(d) for d in domain)
        self.stripe_axis = int(stripe_axis)
        self.partition_share = partition_share
        self.representation = representation

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        if int(np.prod(self.domain)) != source.domain_size:
            raise ValueError("domain does not match the vector source")
        partition = stripe_partition(self.domain, self.stripe_axis)
        stripes = source.split_by_partition(partition)
        split_indices = partition.split_indices()

        partition_epsilon = self.partition_share * epsilon
        measure_epsilon = epsilon - partition_epsilon

        # Stage one of every stripe's DAWA first: the noisy histograms are
        # collected stripe by stripe (budget accounting is unchanged — the
        # same Vector Laplace calls, under parallel composition), then a
        # single l1_partition_batch runs the L1 DP for all stripes at once,
        # vectorizing the per-end recurrence across the stripe axis.
        stripe_length = self.domain[self.stripe_axis]
        stripe_identity = Identity(stripe_length)
        noisy_histograms = np.stack(
            [stripe.vector_laplace(stripe_identity, partition_epsilon) for stripe in stripes]
        )
        assignments = l1_partition_batch(noisy_histograms, 1.0 / partition_epsilon)

        estimates = np.zeros(source.domain_size)
        total_groups = 0
        for stripe, cells, assignment in zip(stripes, split_indices, assignments):
            stripe_partition_matrix = ReductionMatrix(assignment)
            reduced = stripe.reduce_by_partition(stripe_partition_matrix)
            measurements = with_representation(
                greedy_h_select(reduced.domain_size), self.representation
            )
            answers = reduced.vector_laplace(measurements, measure_epsilon)
            # Each stripe's DAWA partition is fresh DP noise, so the reduced
            # strategies are one-off: no shared Gram caching.
            estimate = infer_least_squares(measurements, answers)
            estimates[cells] = stripe_partition_matrix.expand_vector(estimate.x_hat)
            total_groups += stripe_partition_matrix.num_groups
        return self._wrap(
            source, before, estimates, num_stripes=len(stripes), total_groups=total_groups
        )


class HbStripedKronPlan(Plan):
    """Plan #16 — the HB-Striped measurements as one Kronecker product matrix."""

    name = "HB-Striped_kron"
    signature = "SS LM LS"
    plan_id = 16

    def __init__(self, domain: Sequence[int], stripe_axis: int, representation: str = "implicit"):
        self.domain = tuple(int(d) for d in domain)
        self.stripe_axis = int(stripe_axis)
        self.representation = representation

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        if int(np.prod(self.domain)) != source.domain_size:
            raise ValueError("domain does not match the vector source")
        measurements = with_representation(
            stripe_kron_select(self.domain, self.stripe_axis), self.representation
        )
        answers = source.vector_laplace(measurements, epsilon)
        estimate = infer_least_squares(
            measurements, answers, gram_cache=kwargs.get("gram_cache")
        )
        return self._wrap(
            source, before, estimate.x_hat, num_measurements=measurements.shape[0]
        )
