"""Plan protocol and shared helpers.

A *plan* is EKTELO's unit of algorithm authorship: client-side code that
composes operators.  All plans in this reproduction implement a common
interface so the benchmark harness and registry can treat them uniformly:

* ``run(source, epsilon, **kwargs)`` takes a protected *vector* source (the
  output of T-Vectorize) and a privacy budget and returns a
  :class:`PlanResult` whose ``x_hat`` estimates the data vector;
* ``signature`` is the operator signature of Fig. 2 (for the transparency
  experiment / plan-signature table).

Plans never see raw data: every interaction goes through the
:class:`~repro.private.protected.ProtectedDataSource` handle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..matrix import DenseMatrix, LinearQueryMatrix, SparseMatrix, ensure_matrix
from ..private.protected import ProtectedDataSource
from ..telemetry.spans import trace_span

#: The matrix representations compared in the Sec. 10.2 scalability study.
REPRESENTATIONS = ("implicit", "sparse", "dense")

#: Noise mechanisms a plan's measurement step can resolve to.
NOISE_KINDS = ("laplace", "gaussian")


def plan_stage(name: str, **attributes):
    """Open a ``plan.stage.<name>`` span on the active tracer (no-op default).

    Plans bracket their operator stages (select, partition, measure, infer,
    update rounds) with this helper so a traced service request decomposes
    into exactly the operator composition the paper's plan signatures
    describe.  With no active tracer it returns the shared no-op handle.
    """
    return trace_span(f"plan.stage.{name}", **attributes)


def measure_vector(
    source: ProtectedDataSource,
    queries: LinearQueryMatrix,
    epsilon: float,
    noise: str = "laplace",
    delta: float | None = None,
) -> np.ndarray:
    """Run a plan's measurement step with the requested noise mechanism.

    Plans call this instead of ``source.vector_laplace`` directly so a single
    ``noise="laplace"|"gaussian"`` knob (threaded through ``plan_params`` by
    the service) switches the mechanism without touching plan logic:
    ``laplace`` is the paper's Vector Laplace; ``gaussian`` calibrates to the
    matrix's L2 sensitivity and charges through the kernel's accountant
    (``delta=None`` uses the accountant's per-measurement default — it is
    rejected outright under pure ε-DP accounting).  Inference is unaffected:
    a single measurement matrix carries one uniform noise scale either way,
    and the per-row weighting of :func:`infer_least_squares` already covers
    mixed-scale stacks.
    """
    if noise == "laplace":
        with plan_stage("measure", noise=noise, epsilon=float(epsilon), rows=int(queries.shape[0])):
            return source.vector_laplace(queries, epsilon)
    if noise == "gaussian":
        with plan_stage("measure", noise=noise, epsilon=float(epsilon), rows=int(queries.shape[0])):
            return source.vector_gaussian(queries, epsilon, delta=delta)
    raise ValueError(f"unknown noise kind {noise!r}; expected one of {NOISE_KINDS}")


def infer_least_squares(
    measurements: LinearQueryMatrix,
    answers: np.ndarray,
    method: str | None = None,
    gram_cache=None,
    **kwargs,
):
    """Least-squares inference with the service-default solver resolution.

    Plans call this instead of :func:`repro.operators.inference.least_squares`
    directly so the scheduler can influence the solve without every plan
    re-implementing the policy: ``method=None`` resolves to ``"auto"`` when a
    ``gram_cache`` is supplied (the :class:`~repro.service.scheduler.PlanScheduler`
    passes its shared ``ArtifactCache``, so the normal-equations factorisation
    is built once per strategy and reused by every later request on it — keyed
    automatically by the strategy's canonical
    :meth:`~repro.matrix.base.LinearQueryMatrix.strategy_key`) and to the
    stand-alone default ``"lsmr"`` otherwise.
    """
    from ..operators.inference import least_squares

    if method is None:
        method = "auto" if gram_cache is not None else "lsmr"
    with plan_stage("infer", method=method, shared_gram=gram_cache is not None) as span:
        estimate = least_squares(
            measurements, answers, method=method, gram_cache=gram_cache, **kwargs
        )
        span.set_attributes(
            iterations=int(estimate.iterations),
            residual_norm=float(estimate.residual_norm),
        )
        return estimate


def with_representation(matrix: LinearQueryMatrix, representation: str) -> LinearQueryMatrix:
    """Materialise a measurement matrix in the requested representation.

    ``implicit`` leaves the matrix as constructed (possibly lazy); ``sparse``
    and ``dense`` materialise it, reproducing the representation switch of the
    Fig. 4 experiments.
    """
    if representation == "implicit":
        return matrix
    if representation == "sparse":
        return SparseMatrix(matrix.sparse())
    if representation == "dense":
        return DenseMatrix(matrix.dense())
    raise ValueError(f"unknown representation {representation!r}; expected one of {REPRESENTATIONS}")


@dataclass
class PlanResult:
    """Output of a plan execution."""

    #: estimate of the data vector the plan was run on
    x_hat: np.ndarray
    #: budget consumed by this plan (difference of kernel counters)
    budget_spent: float
    #: free-form diagnostics (measurement counts, partition sizes, ...)
    info: dict = field(default_factory=dict)

    def answer(self, workload: LinearQueryMatrix) -> np.ndarray:
        """Answers to a workload computed from the estimated data vector."""
        return ensure_matrix(workload).matvec(self.x_hat)


class Plan(ABC):
    """Base class of all plans (the rows of Fig. 2)."""

    #: human-readable plan name, e.g. ``"DAWA"``.
    name: str = "plan"
    #: operator signature following Fig. 2, e.g. ``"PD TR SG LM LS"``.
    signature: str = ""
    #: identifier in Fig. 2 (None for plans outside the figure).
    plan_id: int | None = None

    @abstractmethod
    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        """Execute the plan against a protected vector source."""

    def __call__(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        return self.run(source, epsilon, **kwargs)

    def _wrap(
        self, source: ProtectedDataSource, before: float, x_hat: np.ndarray, **info
    ) -> PlanResult:
        """Build a :class:`PlanResult`, computing the budget actually spent."""
        spent = source.budget_consumed() - before
        info.setdefault("seed", source.kernel.seed)
        return PlanResult(np.asarray(x_hat, dtype=np.float64), budget_spent=spent, info=info)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
