"""Data-dependent plans (Fig. 2, plans #7-#9, #12).

These plans adapt to the input data, either through a data-dependent partition
(AHP, DAWA), through iterative selection (MWEM) or through a two-level grid
whose granularity reacts to observed counts (AdaptiveGrid).
"""

from __future__ import annotations

import numpy as np

from ..matrix import Identity, LinearQueryMatrix, Total, ensure_matrix
from ..operators.inference import mwem_update
from ..operators.partition import ahp_partition, dawa_partition
from ..operators.selection import adaptive_grid_select, greedy_h_select, uniform_grid_select
from ..operators.selection.worst_approx import worst_approximated
from ..private.protected import ProtectedDataSource
from .base import (
    Plan,
    PlanResult,
    infer_least_squares,
    measure_vector,
    plan_stage,
    with_representation,
)


class MwemPlan(Plan):
    """Plan #7 — Multiplicative Weights Exponential Mechanism (Hardt et al. 2012).

    Each round selects the worst-approximated workload query with the
    exponential mechanism (half the per-round budget), measures it with
    Laplace noise (the other half), and applies the multiplicative-weights
    update using the full measurement history.

    ``noise="gaussian"`` switches the per-round measurement to the Gaussian
    mechanism.  Under a zCDP accountant this is where MWEM's many small
    charges pay off: ρ-costs add up far slower than the ε-sum of basic
    composition, so the same nominal per-round parameters leave much more
    budget standing (see ``examples/accounting_gaussian.py``).
    """

    name = "MWEM"
    signature = "I:( SW LM MW )"
    plan_id = 7

    def __init__(
        self,
        workload: LinearQueryMatrix,
        rounds: int = 10,
        total_records: float | None = None,
        history_passes: int = 10,
        noise: str = "laplace",
        delta: float | None = None,
    ):
        self.workload = ensure_matrix(workload)
        self.rounds = rounds
        self.total_records = total_records
        self.history_passes = history_passes
        self.noise = noise
        self.delta = delta

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        n = source.domain_size
        if self.workload.shape[1] != n:
            raise ValueError("workload does not match the vector's domain size")

        if self.total_records is None:
            # MWEM assumes a known total; estimate it with 5% of the budget.
            total_epsilon = 0.05 * epsilon
            total = max(source.vector_laplace(Total(n), total_epsilon)[0], 1.0)
            remaining = epsilon - total_epsilon
        else:
            total = float(self.total_records)
            remaining = epsilon

        x_hat = np.full(n, total / n)
        per_round = remaining / self.rounds
        history: list[tuple[np.ndarray, np.ndarray, float]] = []

        for round_index in range(self.rounds):
            with plan_stage(
                "mwem_round", plan=self.name, round=round_index, epsilon=per_round
            ):
                x_hat = self._round(source, x_hat, total, per_round, history, n)

        return self._wrap(source, before, x_hat, rounds=self.rounds, total_estimate=total)

    def _round(self, source, x_hat, total, per_round, history, n):
        """One MWEM round: select worst query, measure it, replay history."""
        _, row = worst_approximated(source, self.workload, x_hat, per_round / 2.0)
        from ..matrix.dense import DenseMatrix

        measurement = DenseMatrix(row.reshape(1, -1))
        noisy = measure_vector(
            source, measurement, per_round / 2.0, noise=self.noise, delta=self.delta
        )[0]
        # The row's support is extracted once here; every later history
        # replay exponentiates only on it (bit-identical to the dense
        # update — exp(0) = 1 — but free of full-domain exp calls).
        # Near-dense rows keep the plain update: the gather would cost
        # more than the exps it saves.
        support = np.flatnonzero(row)
        history.append((row, support if 2 * support.size <= n else None, noisy))
        # Multiplicative-weights update over the full history (several passes).
        for _ in range(self.history_passes):
            for past_row, past_support, past_answer in history:
                x_hat = mwem_update(
                    x_hat, past_row, past_answer, total, support=past_support
                )
        return x_hat


class AhpPlan(Plan):
    """Plan #8 — AHP: data-adaptive clustering partition, then identity measurements."""

    name = "AHP"
    signature = "PA TR SI LM LS"
    plan_id = 8

    def __init__(
        self,
        partition_share: float = 0.5,
        eta: float = 0.35,
        gap_ratio: float = 0.5,
        representation: str = "implicit",
    ):
        self.partition_share = partition_share
        self.eta = eta
        self.gap_ratio = gap_ratio
        self.representation = representation

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        partition_epsilon = self.partition_share * epsilon
        measure_epsilon = epsilon - partition_epsilon
        with plan_stage("partition", plan=self.name, epsilon=partition_epsilon) as span:
            partition = ahp_partition(
                source, partition_epsilon, eta=self.eta, gap_ratio=self.gap_ratio
            )
            span.set_attribute("num_groups", int(partition.num_groups))
        reduced = source.reduce_by_partition(partition)
        measurements = with_representation(
            Identity(reduced.domain_size), self.representation
        )
        answers = reduced.vector_laplace(measurements, measure_epsilon)
        # The reduced domain size follows the per-request DP-noised partition,
        # so the Identity strategy is effectively one-off (and trivial for
        # LSMR anyway): keep it out of the shared Gram cache.
        estimate = infer_least_squares(measurements, answers)
        x_hat = partition.expand_vector(estimate.x_hat)
        return self._wrap(
            source, before, x_hat, num_groups=partition.num_groups
        )


class DawaPlan(Plan):
    """Plan #9 — DAWA: L1-optimal interval partition, then Greedy-H on the groups."""

    name = "DAWA"
    signature = "PD TR SG LM LS"
    plan_id = 9

    def __init__(
        self,
        workload_intervals: list[tuple[int, int]] | None = None,
        partition_share: float = 0.25,
        representation: str = "implicit",
    ):
        self.workload_intervals = workload_intervals
        self.partition_share = partition_share
        self.representation = representation

    def _reduced_intervals(self, partition) -> list[tuple[int, int]] | None:
        """Map the workload's ranges onto the reduced (group) domain."""
        if self.workload_intervals is None:
            return None
        groups = partition.groups
        reduced = []
        for lo, hi in self.workload_intervals:
            reduced.append((int(groups[lo]), int(groups[hi])))
        return reduced

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        partition_epsilon = self.partition_share * epsilon
        measure_epsilon = epsilon - partition_epsilon
        with plan_stage("partition", plan=self.name, epsilon=partition_epsilon) as span:
            partition = dawa_partition(source, partition_epsilon)
            span.set_attribute("num_groups", int(partition.num_groups))
        reduced = source.reduce_by_partition(partition)
        intervals = self._reduced_intervals(partition)
        with plan_stage("select", plan=self.name) as span:
            measurements = with_representation(
                greedy_h_select(reduced.domain_size, intervals), self.representation
            )
            span.set_attribute("num_measurements", int(measurements.shape[0]))
        answers = reduced.vector_laplace(measurements, measure_epsilon)
        # The DAWA partition is rebuilt from fresh DP noise on every request,
        # so its reduced-domain strategy (and Gram) is one-off: solve with
        # stand-alone LSMR instead of filling the shared cache with
        # never-reused factorisations.
        estimate = infer_least_squares(measurements, answers)
        x_hat = partition.expand_vector(estimate.x_hat)
        return self._wrap(source, before, x_hat, num_groups=partition.num_groups)


class AdaptiveGridPlan(Plan):
    """Plan #12 — two-level grid whose second level adapts to first-level counts."""

    name = "AdaptiveGrid"
    signature = "SU LM LS PU TP[ SA LM]"
    plan_id = 12

    def __init__(
        self,
        shape: tuple[int, int],
        first_level_share: float = 0.5,
        representation: str = "implicit",
        c: float = 10.0,
        c2: float = 5.0,
    ):
        self.shape = shape
        self.first_level_share = first_level_share
        self.representation = representation
        self.c = c
        self.c2 = c2

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        rows, cols = self.shape
        n = source.domain_size
        if rows * cols != n:
            raise ValueError("2-D shape does not match the vector's domain size")

        first_epsilon = self.first_level_share * epsilon
        second_epsilon = epsilon - first_epsilon

        # Level 1: coarse uniform grid.
        total_epsilon = 0.1 * first_epsilon
        noisy_total = max(source.vector_laplace(Total(n), total_epsilon)[0], 1.0)
        level1_grid = uniform_grid_select(rows, cols, noisy_total, first_epsilon, c=self.c)
        level1_rects = level1_grid.rects
        level1 = with_representation(level1_grid, self.representation)
        level1_answers = source.vector_laplace(level1, first_epsilon - total_epsilon)

        # Level 2: adapt the granularity inside each coarse block to its count.
        second_parts: list[LinearQueryMatrix] = []
        for region, noisy_count in zip(level1_rects, level1_answers):
            finer = adaptive_grid_select(
                region, rows, cols, noisy_count, second_epsilon, c2=self.c2
            )
            if finer is not None:
                second_parts.append(finer)

        matrices: list[LinearQueryMatrix] = [level1]
        answers = [level1_answers]
        if second_parts:
            from ..matrix.combinators import VStack

            level2 = with_representation(VStack(second_parts), self.representation)
            answers.append(source.vector_laplace(level2, second_epsilon))
            matrices.append(level2)

        from ..matrix.combinators import VStack

        all_measurements = matrices[0] if len(matrices) == 1 else VStack(matrices)
        # The level-2 grid adapts to noisy level-1 counts, so the stacked
        # strategy is unique per request — keep its Gram out of the shared cache.
        estimate = infer_least_squares(all_measurements, np.concatenate(answers))
        return self._wrap(
            source,
            before,
            estimate.x_hat,
            num_measurements=all_measurements.shape[0],
            second_level_blocks=sum(m.shape[0] for m in second_parts),
        )
