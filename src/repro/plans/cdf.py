"""The CDF-estimation plan of Algorithm 1 (the paper's running example).

Given a protected census-like table, estimate the empirical CDF of ``salary``
for a filtered sub-population:

1. Where / Select table transformations restrict to the sub-population,
2. T-Vectorize builds the salary histogram vector,
3. AHPpartition (spending half the budget) groups similar counts,
4. V-ReduceByPartition applies the partition,
5. Identity selection + Vector Laplace (the other half of the budget),
6. NNLS inference maps the reduced noisy counts back to the original domain,
7. the Prefix workload turns the estimated histogram into a CDF.
"""

from __future__ import annotations

import numpy as np

from ..matrix import Identity, Prefix
from ..operators.inference import nnls
from ..operators.partition import ahp_partition
from ..private.protected import ProtectedDataSource


def cdf_estimator(
    table_source: ProtectedDataSource,
    value_attribute: str,
    epsilon: float,
    where: dict | None = None,
    partition_share: float = 0.5,
) -> np.ndarray:
    """Run Algorithm 1 and return the estimated empirical CDF.

    Parameters
    ----------
    table_source:
        Protected handle to the input table (the ``Protected(source_uri)`` of
        Algorithm 1 line 1).
    value_attribute:
        The attribute whose CDF is estimated (``salary`` in the paper).
    epsilon:
        Total budget of the plan.
    where:
        Optional filter (e.g. ``{"gender": 0, "age": (3, 3)}``) applied before
        vectorising.
    partition_share:
        Fraction of the budget given to AHPpartition (0.5 in Algorithm 1).
    """
    filtered = table_source.where(where) if where else table_source
    projected = filtered.select([value_attribute])
    vector = projected.vectorize()
    n = vector.domain_size

    partition_epsilon = partition_share * epsilon
    measure_epsilon = epsilon - partition_epsilon

    partition = ahp_partition(vector, partition_epsilon)
    reduced = vector.reduce_by_partition(partition)
    noisy = reduced.vector_laplace(Identity(reduced.domain_size), measure_epsilon)

    # NNLS(P, y): find a non-negative x with P x ≈ y on the original domain.
    estimate = nnls(partition, noisy)
    prefix = Prefix(n)
    return prefix.matvec(estimate.x_hat)
