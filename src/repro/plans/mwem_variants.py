"""MWEM variants obtained by recombining operators (Sec. 9.1, plans #18-#20).

The three variants modify the original MWEM plan (#7) along two axes:

* **variant b** (#18) — augmented query selection: each round's selected query
  is padded with disjoint interval queries that cost no extra budget under
  parallel composition, gradually building a binary hierarchy;
* **variant c** (#19) — alternative inference: non-negative least squares with
  a high-confidence total replaces the multiplicative-weights update;
* **variant d** (#20) — both changes together, which the paper reports as the
  sweet spot (large error improvement at a fraction of variant b's runtime).
"""

from __future__ import annotations

import numpy as np

from ..matrix import LinearQueryMatrix, Total, ensure_matrix
from ..matrix.combinators import VStack
from ..operators.inference import multiplicative_weights, nnls_with_total
from ..operators.selection.worst_approx import augment_with_hierarchy, worst_approximated
from ..private.protected import ProtectedDataSource
from .base import Plan, PlanResult

#: Cap (in ``rows * domain_size`` doubles) on the measurement-row cache the
#: MWEM variants grow across rounds for multiplicative-weights inference.
#: Beyond it the cache is dropped and inference falls back to blocked row
#: extraction inside :func:`multiplicative_weights`.
_HISTORY_ROW_CACHE_CELLS = 16_777_216


class _MwemVariantBase(Plan):
    """Shared loop of the MWEM variants (selection / measurement / inference hooks)."""

    augment_selection = False
    use_nnls = False

    def __init__(
        self,
        workload: LinearQueryMatrix,
        rounds: int = 10,
        total_records: float | None = None,
        history_passes: int = 10,
    ):
        self.workload = ensure_matrix(workload)
        self.rounds = rounds
        self.total_records = total_records
        self.history_passes = history_passes

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        n = source.domain_size
        if self.workload.shape[1] != n:
            raise ValueError("workload does not match the vector's domain size")

        if self.total_records is None:
            total_epsilon = 0.05 * epsilon
            total = max(source.vector_laplace(Total(n), total_epsilon)[0], 1.0)
            remaining = epsilon - total_epsilon
        else:
            total = float(self.total_records)
            remaining = epsilon

        x_hat = np.full(n, total / n)
        per_round = remaining / self.rounds
        measured: list[tuple[LinearQueryMatrix, np.ndarray]] = []
        # Dense rows of every measurement so far, grown one block per round:
        # each round's MW inference reuses them (and their supports) instead
        # of re-extracting the whole history from the stacked matrix.  None
        # once the cache outgrows its memory budget (it cannot be partially
        # used, so it is dropped for the remaining rounds).
        row_blocks: list[np.ndarray] | None = [] if not self.use_nnls else None
        cached_rows = 0

        for round_index in range(self.rounds):
            _, row = worst_approximated(source, self.workload, x_hat, per_round / 2.0)
            if self.augment_selection:
                measurement = augment_with_hierarchy(row, round_index, n)
            else:
                from ..matrix.dense import DenseMatrix

                measurement = DenseMatrix(row.reshape(1, -1))
            answers = source.vector_laplace(measurement, per_round / 2.0)
            measured.append((measurement, answers))
            if row_blocks is not None:
                cached_rows += measurement.shape[0]
                if cached_rows * n > _HISTORY_ROW_CACHE_CELLS:
                    row_blocks = None
                else:
                    row_blocks.append(measurement.rows(np.arange(measurement.shape[0])))
            x_hat = self._infer(measured, total, n, x_hat, row_blocks)

        return self._wrap(
            source,
            before,
            x_hat,
            rounds=self.rounds,
            total_estimate=total,
            measured_queries=int(sum(m.shape[0] for m, _ in measured)),
        )

    # ------------------------------------------------------------------
    def _infer(
        self,
        measured: list[tuple[LinearQueryMatrix, np.ndarray]],
        total: float,
        n: int,
        x_hat: np.ndarray,
        row_blocks: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        matrices = [m for m, _ in measured]
        answers = np.concatenate([y for _, y in measured])
        stacked = matrices[0] if len(matrices) == 1 else VStack(matrices)
        if self.use_nnls:
            estimate = nnls_with_total(stacked, answers, total=total)
            return estimate.x_hat
        row_cache = np.concatenate(row_blocks) if row_blocks else None
        estimate = multiplicative_weights(
            stacked,
            answers,
            total=total,
            x0=x_hat,
            iterations=self.history_passes,
            row_cache=row_cache,
        )
        return estimate.x_hat


class MwemVariantB(_MwemVariantBase):
    """Plan #18 — worst-approx + H2-style augmentation, multiplicative weights."""

    name = "MWEM variant b"
    signature = "I:( SW SH2 LM MW )"
    plan_id = 18
    augment_selection = True
    use_nnls = False


class MwemVariantC(_MwemVariantBase):
    """Plan #19 — original selection, NNLS inference with a known total."""

    name = "MWEM variant c"
    signature = "I:( SW LM NLS )"
    plan_id = 19
    augment_selection = False
    use_nnls = True


class MwemVariantD(_MwemVariantBase):
    """Plan #20 — augmented selection and NNLS inference together."""

    name = "MWEM variant d"
    signature = "I:( SW SH2 LM NLS )"
    plan_id = 20
    augment_selection = True
    use_nnls = True
