"""Data-independent plans (Fig. 2, plans #1-#6, #10, #11, #13).

All of these share the same three-operator idiom the paper highlights:
*query selection → Vector Laplace → least-squares inference*, differing only
in the selection operator.  Their error does not depend on the input data.
"""

from __future__ import annotations

import numpy as np

from ..matrix import Identity, LinearQueryMatrix, Total, ensure_matrix
from ..operators.selection import (
    greedy_h_select,
    h2_select,
    hb_select,
    hdmm_select,
    quadtree_select,
    uniform_grid_select,
    wavelet_select,
)
from ..private.protected import ProtectedDataSource
from .base import (
    Plan,
    PlanResult,
    infer_least_squares,
    measure_vector,
    plan_stage,
    with_representation,
)


class _SelectMeasureInferPlan(Plan):
    """Shared implementation of the select → measure → least-squares idiom.

    ``inference_method=None`` (the default) defers to the service policy:
    LSMR stand-alone, shared normal equations when the scheduler provides its
    Gram cache.  Pass an explicit method to pin the solver either way.

    ``noise`` picks the measurement mechanism: the paper's Vector Laplace
    (default) or the Gaussian mechanism (L2-calibrated, charged through the
    kernel's accountant — requires an (ε, δ)/zCDP accountant); ``delta``
    optionally pins the per-call δ target of Gaussian measurements.
    """

    def __init__(
        self,
        representation: str = "implicit",
        inference_method: str | None = None,
        noise: str = "laplace",
        delta: float | None = None,
    ):
        self.representation = representation
        self.inference_method = inference_method
        self.noise = noise
        self.delta = delta

    def _select(self, source: ProtectedDataSource, **kwargs) -> LinearQueryMatrix:
        raise NotImplementedError

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        with plan_stage("select", plan=self.name) as span:
            measurements = with_representation(
                ensure_matrix(self._select(source, **kwargs)), self.representation
            )
            span.set_attribute("num_measurements", int(measurements.shape[0]))
        answers = measure_vector(
            source, measurements, epsilon, noise=self.noise, delta=self.delta
        )
        estimate = infer_least_squares(
            measurements,
            answers,
            method=self.inference_method,
            gram_cache=kwargs.get("gram_cache"),
        )
        return self._wrap(
            source,
            before,
            estimate.x_hat,
            num_measurements=measurements.shape[0],
            inference_iterations=estimate.iterations,
        )


class IdentityPlan(Plan):
    """Plan #1 — the Laplace mechanism on every cell (no inference needed)."""

    name = "Identity"
    signature = "SI LM"
    plan_id = 1

    def __init__(
        self,
        representation: str = "implicit",
        noise: str = "laplace",
        delta: float | None = None,
    ):
        self.representation = representation
        self.noise = noise
        self.delta = delta

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        measurements = with_representation(Identity(source.domain_size), self.representation)
        answers = measure_vector(
            source, measurements, epsilon, noise=self.noise, delta=self.delta
        )
        return self._wrap(source, before, answers, num_measurements=measurements.shape[0])


class UniformPlan(Plan):
    """Plan #6 — measure only the total and assume uniformity."""

    name = "Uniform"
    signature = "ST LM LS"
    plan_id = 6

    def __init__(self, noise: str = "laplace", delta: float | None = None):
        self.noise = noise
        self.delta = delta

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        n = source.domain_size
        noisy_total = measure_vector(
            source, Total(n), epsilon, noise=self.noise, delta=self.delta
        )[0]
        x_hat = np.full(n, max(noisy_total, 0.0) / n)
        return self._wrap(source, before, x_hat, num_measurements=1)


class PriveletPlan(_SelectMeasureInferPlan):
    """Plan #2 — Haar wavelet measurements (Xiao et al. 2010)."""

    name = "Privelet"
    signature = "SP LM LS"
    plan_id = 2

    def _select(self, source: ProtectedDataSource, **kwargs) -> LinearQueryMatrix:
        return wavelet_select(source.domain_size)


class H2Plan(_SelectMeasureInferPlan):
    """Plan #3 — binary hierarchy of interval counts (Hay et al. 2010)."""

    name = "H2"
    signature = "SH2 LM LS"
    plan_id = 3

    def _select(self, source: ProtectedDataSource, **kwargs) -> LinearQueryMatrix:
        return h2_select(source.domain_size)


class HbPlan(_SelectMeasureInferPlan):
    """Plan #4 — hierarchy with optimised branching factor (Qardaji et al. 2013)."""

    name = "HB"
    signature = "SHB LM LS"
    plan_id = 4

    def _select(self, source: ProtectedDataSource, **kwargs) -> LinearQueryMatrix:
        return hb_select(source.domain_size)


class GreedyHPlan(_SelectMeasureInferPlan):
    """Plan #5 — workload-tuned weighted hierarchy (Li et al. 2014)."""

    name = "Greedy-H"
    signature = "SG LM LS"
    plan_id = 5

    def __init__(
        self,
        workload_intervals: list[tuple[int, int]] | None = None,
        representation: str = "implicit",
        noise: str = "laplace",
        delta: float | None = None,
    ):
        super().__init__(representation=representation, noise=noise, delta=delta)
        self.workload_intervals = workload_intervals

    def _select(self, source: ProtectedDataSource, **kwargs) -> LinearQueryMatrix:
        return greedy_h_select(source.domain_size, self.workload_intervals)


class QuadtreePlan(_SelectMeasureInferPlan):
    """Plan #10 — quadtree decomposition of a 2-D domain (Cormode et al. 2012)."""

    name = "QuadTree"
    signature = "SQ LM LS"
    plan_id = 10

    def __init__(
        self,
        shape: tuple[int, int],
        representation: str = "implicit",
        noise: str = "laplace",
        delta: float | None = None,
    ):
        super().__init__(representation=representation, noise=noise, delta=delta)
        self.shape = shape

    def _select(self, source: ProtectedDataSource, **kwargs) -> LinearQueryMatrix:
        rows, cols = self.shape
        if rows * cols != source.domain_size:
            raise ValueError("2-D shape does not match the vector's domain size")
        return quadtree_select(rows, cols)


class UniformGridPlan(Plan):
    """Plan #11 — a single flat grid with data-size-dependent granularity."""

    name = "UniformGrid"
    signature = "SU LM LS"
    plan_id = 11

    def __init__(self, shape: tuple[int, int], representation: str = "implicit", c: float = 10.0):
        self.shape = shape
        self.representation = representation
        self.c = c

    def run(self, source: ProtectedDataSource, epsilon: float, **kwargs) -> PlanResult:
        before = source.budget_consumed()
        rows, cols = self.shape
        n = source.domain_size
        if rows * cols != n:
            raise ValueError("2-D shape does not match the vector's domain size")
        # 10% of the budget estimates the total, the rest measures the grid.
        total_epsilon = 0.1 * epsilon
        noisy_total = max(source.vector_laplace(Total(n), total_epsilon)[0], 1.0)
        measurements = with_representation(
            uniform_grid_select(rows, cols, noisy_total, epsilon, c=self.c), self.representation
        )
        answers = source.vector_laplace(measurements, epsilon - total_epsilon)
        # The grid granularity follows the DP-noised total, so the strategy
        # varies across requests — keep its Gram out of the shared cache.
        estimate = infer_least_squares(measurements, answers)
        return self._wrap(
            source, before, estimate.x_hat, num_measurements=measurements.shape[0]
        )


class HdmmPlan(_SelectMeasureInferPlan):
    """Plan #13 — HDMM-style workload-optimised strategy (McKenna et al. 2018)."""

    name = "HDMM"
    signature = "SHD LM LS"
    plan_id = 13

    def __init__(
        self,
        workload: LinearQueryMatrix,
        representation: str = "implicit",
        noise: str = "laplace",
        delta: float | None = None,
    ):
        super().__init__(representation=representation, noise=noise, delta=delta)
        self.workload = ensure_matrix(workload)

    def _select(self, source: ProtectedDataSource, **kwargs) -> LinearQueryMatrix:
        if self.workload.shape[1] != source.domain_size:
            raise ValueError("workload does not match the vector's domain size")
        return hdmm_select(self.workload)
