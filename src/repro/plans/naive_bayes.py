"""Differentially-private Naive Bayes plans (Sec. 9.3).

Learning a Naive Bayes classifier with a binary label and k predictors needs
2k+1 one-dimensional histograms: the label histogram plus the label-by-value
joint histogram of every predictor.  The case study compares four ways of
estimating those histograms under a total budget epsilon:

* **Identity** (baseline, Plan #1 applied to the full contingency table) —
  measure every cell of the joint domain and marginalise the noisy table;
* **Workload** (the prior-work baseline, "Cormode") — measure the 2k+1
  histograms directly with Vector Laplace;
* **WorkloadLS** — Workload plus a least-squares inference step that makes the
  histograms consistent (a one-operator change that improves accuracy);
* **SelectLS** (Algorithm 8) — per-histogram subplans: large-domain histograms
  get a DAWA partition before measurement, small ones are measured directly;
  all measurements feed one global least-squares inference.

Each function takes a *training* :class:`Relation`, builds a fresh protected
kernel around it with the given budget, and returns a fitted
:class:`~repro.analysis.classify.NaiveBayesModel`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.classify import NaiveBayesModel, fit_naive_bayes_from_histograms
from ..dataset.relation import Relation
from ..matrix import Identity, LinearQueryMatrix, marginal
from ..matrix.combinators import Product, VStack
from ..operators.inference import least_squares
from ..operators.partition import dawa_partition, marginal_partition
from ..private.protected import protect
from ..workload import naive_bayes_workload


def _histogram_shapes(
    relation: Relation, label: str, predictors: Sequence[str]
) -> tuple[list[int], int, list[int]]:
    domain = list(relation.schema.domain)
    label_axis = relation.schema.index_of(label)
    predictor_axes = [relation.schema.index_of(p) for p in predictors]
    return domain, label_axis, predictor_axes


def _split_workload_answers(
    answers: np.ndarray, domain: Sequence[int], label_axis: int, predictor_axes: Sequence[int]
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Split stacked naive-bayes workload answers into the label and joint tables."""
    label_size = domain[label_axis]
    label_histogram = answers[:label_size]
    joints = []
    offset = label_size
    for axis in predictor_axes:
        size = label_size * domain[axis]
        joints.append(answers[offset : offset + size].reshape(label_size, domain[axis]))
        offset += size
    return label_histogram, joints


def _histograms_from_vector(
    x_hat: np.ndarray, domain: Sequence[int], label_axis: int, predictor_axes: Sequence[int]
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Marginalise an estimated full-domain vector into the NB histograms."""
    label_matrix = marginal(domain, [label_axis])
    label_histogram = label_matrix.matvec(x_hat)
    joints = []
    for axis in predictor_axes:
        joint_matrix = marginal(domain, [label_axis, axis])
        joints.append(joint_matrix.matvec(x_hat).reshape(domain[label_axis], domain[axis]))
    return label_histogram, joints


def nb_identity(
    train: Relation, label: str, predictors: Sequence[str], epsilon: float, seed: int | None = None
) -> NaiveBayesModel:
    """Identity baseline: noisy full contingency table, then marginalise."""
    domain, label_axis, predictor_axes = _histogram_shapes(train, label, predictors)
    source = protect(train, epsilon, seed=seed).vectorize()
    noisy = source.vector_laplace(Identity(source.domain_size), epsilon)
    label_histogram, joints = _histograms_from_vector(noisy, domain, label_axis, predictor_axes)
    return fit_naive_bayes_from_histograms(label_histogram, joints)


def nb_workload(
    train: Relation, label: str, predictors: Sequence[str], epsilon: float, seed: int | None = None
) -> NaiveBayesModel:
    """Workload baseline ("Cormode"): measure the 2k+1 histograms directly."""
    domain, label_axis, predictor_axes = _histogram_shapes(train, label, predictors)
    workload = naive_bayes_workload(domain, label_axis, predictor_axes)
    source = protect(train, epsilon, seed=seed).vectorize()
    answers = source.vector_laplace(workload, epsilon)
    label_histogram, joints = _split_workload_answers(answers, domain, label_axis, predictor_axes)
    return fit_naive_bayes_from_histograms(label_histogram, joints)


def nb_workload_ls(
    train: Relation, label: str, predictors: Sequence[str], epsilon: float, seed: int | None = None
) -> NaiveBayesModel:
    """WorkloadLS: the Workload plan followed by least-squares inference."""
    domain, label_axis, predictor_axes = _histogram_shapes(train, label, predictors)
    workload = naive_bayes_workload(domain, label_axis, predictor_axes)
    source = protect(train, epsilon, seed=seed).vectorize()
    answers = source.vector_laplace(workload, epsilon)
    estimate = least_squares(workload, answers)
    x_hat = np.clip(estimate.x_hat, 0.0, None)
    label_histogram, joints = _histograms_from_vector(x_hat, domain, label_axis, predictor_axes)
    return fit_naive_bayes_from_histograms(label_histogram, joints)


def nb_select_ls(
    train: Relation,
    label: str,
    predictors: Sequence[str],
    epsilon: float,
    seed: int | None = None,
    large_domain_threshold: int = 80,
    dawa_share: float = 0.25,
) -> NaiveBayesModel:
    """SelectLS (Algorithm 8): per-histogram subplans with a global LS inference.

    For each of the 2k+1 histograms the full-domain vector is reduced to the
    corresponding marginal; histograms over more than ``large_domain_threshold``
    cells first get a DAWA partition (spending ``dawa_share`` of that
    histogram's budget), the rest are measured cell-by-cell.  All measurements
    are mapped back to the full domain and combined with least squares.
    """
    domain, label_axis, predictor_axes = _histogram_shapes(train, label, predictors)
    source = protect(train, epsilon, seed=seed).vectorize()

    histogram_axes: list[list[int]] = [[label_axis]] + [
        [label_axis, axis] for axis in predictor_axes
    ]
    per_histogram_epsilon = epsilon / len(histogram_axes)

    measurement_parts: list[LinearQueryMatrix] = []
    answer_parts: list[np.ndarray] = []
    for axes in histogram_axes:
        reduction = marginal_partition(domain, axes)
        reduced = source.reduce_by_partition(reduction)
        marginal_size = reduced.domain_size
        # The reduced vector's queries act on the full domain through the
        # partition matrix: a measurement M on x' equals (M P) on x.
        if marginal_size > large_domain_threshold:
            dawa_epsilon = dawa_share * per_histogram_epsilon
            measure_epsilon = per_histogram_epsilon - dawa_epsilon
            group_partition = dawa_partition(reduced, dawa_epsilon)
            grouped = reduced.reduce_by_partition(group_partition)
            answers = grouped.vector_laplace(Identity(grouped.domain_size), measure_epsilon)
            full_domain_queries = Product(group_partition, reduction)
        else:
            answers = reduced.vector_laplace(Identity(marginal_size), per_histogram_epsilon)
            full_domain_queries = reduction
        measurement_parts.append(full_domain_queries)
        answer_parts.append(answers)

    stacked = VStack(measurement_parts)
    estimate = least_squares(stacked, np.concatenate(answer_parts))
    x_hat = np.clip(estimate.x_hat, 0.0, None)
    label_histogram, joints = _histograms_from_vector(x_hat, domain, label_axis, predictor_axes)
    return fit_naive_bayes_from_histograms(label_histogram, joints)


#: Registry of the DP Naive Bayes fitting procedures compared in Fig. 3.
NAIVE_BAYES_PLANS = {
    "Identity": nb_identity,
    "Workload": nb_workload,
    "WorkloadLS": nb_workload_ls,
    "SelectLS": nb_select_ls,
}
