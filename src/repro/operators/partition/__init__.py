"""Partition-selection operators: choose a partition matrix P for reduce/split."""

from .ahp import ahp_partition, ahp_partition_from_noisy, cluster_sorted_counts
from .dawa import (
    dawa_partition,
    dawa_partition_from_noisy,
    l1_partition,
    l1_partition_batch,
)
from .structural import (
    grid_partition,
    marginal_partition,
    stripe_partition,
    uniform_chunks_partition,
)
from .workload_based import reduce_workload_and_vector, workload_based_partition

__all__ = [
    "ahp_partition",
    "ahp_partition_from_noisy",
    "cluster_sorted_counts",
    "dawa_partition",
    "dawa_partition_from_noisy",
    "l1_partition",
    "l1_partition_batch",
    "workload_based_partition",
    "reduce_workload_and_vector",
    "stripe_partition",
    "grid_partition",
    "marginal_partition",
    "uniform_chunks_partition",
]
