"""Workload-based partition selection (Sec. 8, Algorithm 4).

Two cells of the data vector can be merged without any loss for a workload
``W`` whenever their columns in ``W`` are identical — every workload query
either ignores both or treats them identically.  Algorithm 4 finds the groups
of identical columns *without materialising the workload*: it draws a random
vector ``v``, computes ``h = W.T v`` with one rmatvec, and groups equal values
of ``h``.  Two distinct columns collide with probability ~1e-16 per pair in
64-bit floating point; repeating the hash drives the failure probability to
zero, so we use a small fixed number of repetitions.

This operator is Public: it reads only the workload, never the private data.
"""

from __future__ import annotations

import numpy as np

from ...matrix import LinearQueryMatrix, ReductionMatrix, ensure_matrix


def workload_based_partition(
    workload: LinearQueryMatrix,
    repetitions: int = 2,
    seed: int = 0,
    decimals: int = 9,
) -> ReductionMatrix:
    """Compute the lossless workload-based reduction matrix ``P`` (Def. 8.2).

    Parameters
    ----------
    workload:
        The workload matrix ``W`` (implicit matrices are fine: only
        ``rmatvec`` is used).
    repetitions:
        Number of independent random projections to hash columns with;
        repetitions multiply the (already negligible) collision probability.
    seed:
        Seed of the random projections (a public choice).
    decimals:
        Rounding applied before grouping, which makes the grouping robust to
        floating-point round-off in implicit matvecs.
    """
    workload = ensure_matrix(workload)
    rng = np.random.default_rng(seed)
    m, n = workload.shape
    signatures = np.empty((repetitions, n))
    for r in range(repetitions):
        v = rng.uniform(0.0, 1.0, size=m)
        signatures[r] = workload.rmatvec(v)
    # Normalise each signature's scale before rounding so `decimals` is meaningful.
    scales = np.maximum(np.abs(signatures).max(axis=1, keepdims=True), 1.0)
    rounded = np.round(signatures / scales, decimals=decimals)
    _, assignment = np.unique(rounded, axis=1, return_inverse=True)
    return ReductionMatrix(assignment)


def reduce_workload_and_vector(
    workload: LinearQueryMatrix, data_vector: np.ndarray, **kwargs
) -> tuple[LinearQueryMatrix, np.ndarray, ReductionMatrix]:
    """Convenience: compute the partition and apply it to both workload and data.

    Returns ``(W', x', P)`` with ``W' = W P+`` and ``x' = P x`` so that
    ``W x = W' x'`` (Prop. 8.3).  Intended for non-private experimentation and
    testing; inside plans the data reduction goes through the protected kernel
    (``ProtectedDataSource.reduce_by_partition``).
    """
    partition = workload_based_partition(workload, **kwargs)
    reduced_workload = partition.reduce_workload(workload)
    reduced_vector = partition.reduce_vector(np.asarray(data_vector, dtype=np.float64))
    return reduced_workload, reduced_vector, partition
