"""Structural (data-independent) partition selection operators.

These Public operators partition the vectorised domain by its *structure*
rather than by the data:

* :func:`stripe_partition` — one group per combination of the non-stripe
  attributes, so each group is a 1-D "stripe" along the stripe attribute
  (used by the HB-Striped and DAWA-Striped census plans, Sec. 9.2);
* :func:`grid_partition` — rectangular blocks of a 2-D domain (used by
  UniformGrid / AdaptiveGrid);
* :func:`marginal_partition` — groups cells by their value on a subset of
  attributes, reducing the full-domain vector to a marginal vector (used by
  the Naive Bayes SelectLS plan, Sec. 9.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...matrix import ReductionMatrix


def stripe_partition(domain: Sequence[int], stripe_axis: int) -> ReductionMatrix:
    """Partition a multi-dimensional domain into stripes along ``stripe_axis``.

    Each group fixes the values of every attribute except ``stripe_axis``;
    splitting by this partition yields one 1-D vector (of length
    ``domain[stripe_axis]``) per combination of the other attributes.
    """
    domain = tuple(int(d) for d in domain)
    if not 0 <= stripe_axis < len(domain):
        raise ValueError("stripe_axis outside the domain")
    indices = np.indices(domain)
    other_axes = [a for a in range(len(domain)) if a != stripe_axis]
    if other_axes:
        other_sizes = [domain[a] for a in other_axes]
        group = np.ravel_multi_index(
            tuple(indices[a] for a in other_axes), tuple(other_sizes)
        )
    else:
        group = np.zeros(domain, dtype=int)
    return ReductionMatrix(group.ravel())


def grid_partition(rows: int, cols: int, cell_rows: int, cell_cols: int) -> ReductionMatrix:
    """Partition a 2-D domain into rectangular blocks (row-major group order)."""
    if cell_rows <= 0 or cell_cols <= 0:
        raise ValueError("block sizes must be positive")
    r = np.arange(rows)[:, None] // cell_rows
    c = np.arange(cols)[None, :] // cell_cols
    blocks_per_row = int(np.ceil(cols / cell_cols))
    group = r * blocks_per_row + c
    return ReductionMatrix(group.ravel())


def marginal_partition(domain: Sequence[int], keep: Sequence[int]) -> ReductionMatrix:
    """Partition the full domain by the value of the kept attributes.

    Reducing by this partition turns the full-domain vector into the marginal
    vector over ``keep`` (in the kept attributes' axis order).
    """
    domain = tuple(int(d) for d in domain)
    keep = [int(k) for k in keep]
    for k in keep:
        if not 0 <= k < len(domain):
            raise ValueError("kept attribute outside the domain")
    indices = np.indices(domain)
    if keep:
        group = np.ravel_multi_index(
            tuple(indices[k] for k in keep), tuple(domain[k] for k in keep)
        )
    else:
        group = np.zeros(domain, dtype=int)
    return ReductionMatrix(group.ravel())


def uniform_chunks_partition(n: int, num_groups: int) -> ReductionMatrix:
    """Partition a 1-D domain into ``num_groups`` contiguous equal-width chunks."""
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    num_groups = min(num_groups, n)
    edges = np.linspace(0, n, num_groups + 1).astype(int)
    assignment = np.zeros(n, dtype=int)
    for g, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        assignment[lo:hi] = g
    return ReductionMatrix(assignment)
