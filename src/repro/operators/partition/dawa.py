"""DAWA partition selection (the PD operator, Plan #9).

The first stage of DAWA (Li et al. 2014) spends a fraction of the budget on
finding a partition of the 1-D domain into contiguous intervals that are
approximately uniform, so that measuring only the interval totals (stage two)
loses little information while greatly reducing noise.

The original uses an L1-cost dynamic program over noisy interval costs with
interval lengths restricted to powers of two (for an O(n log n) running time).
We implement the same structure:

1. spend ``epsilon`` on a noisy histogram (identity Laplace measurement),
2. compute, for every dyadic-length candidate interval, the (noisy) L1
   deviation-from-uniformity cost, corrected by the expected contribution of
   the Laplace noise,
3. run the dynamic program over interval end points to find the minimum-cost
   segmentation of the domain into candidate intervals.

Because only step 1 touches the private data, the operator is Private→Public
with cost exactly ``epsilon``; steps 2-3 are post-processing.

**Vectorized engine.**  The seed implementation issued one Python-level
``interval_cost`` call per (end point, dyadic length) pair — O(n log n) calls,
each slicing O(length) cells.  :func:`l1_partition` now precomputes every
dyadic-length interval cost with prefix sums and a vectorized accumulation
over window offsets, leaving only the O(n) DP recurrence, and
:func:`l1_partition_batch` additionally vectorizes the DP *across* equal-length
histograms (the striped-plan hot path: one DAWA stage one per stripe), so k
stripes cost one pass of k-wide NumPy ops instead of k scalar DPs.  The
original scalar implementation is retained as :func:`_reference_l1_partition`;
property tests assert the vectorized assignments are identical to it.
"""

from __future__ import annotations

import numpy as np

from ...matrix import Identity, ReductionMatrix
from ...private.protected import ProtectedDataSource


def _dyadic_lengths(n: int) -> list[int]:
    lengths = []
    length = 1
    while length <= n:
        lengths.append(length)
        length *= 2
    return lengths


def _reference_l1_partition(noisy: np.ndarray, noise_scale: float) -> np.ndarray:
    """Scalar reference implementation of the DAWA L1 partition DP.

    This is the seed implementation, retained verbatim as the ground truth for
    the vectorized engine: one Python-level ``interval_cost`` call per
    (end, dyadic length) pair.  Property tests assert :func:`l1_partition`
    returns identical assignments; benchmarks measure the speedup against it.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    n = noisy.size
    prefix = np.concatenate([[0.0], np.cumsum(noisy)])

    def interval_cost(lo: int, hi: int) -> float:
        """Cost of the inclusive interval [lo, hi]."""
        length = hi - lo + 1
        segment = noisy[lo : hi + 1]
        mean = (prefix[hi + 1] - prefix[lo]) / length
        deviation = float(np.abs(segment - mean).sum())
        corrected = max(deviation - noise_scale * length, 0.0)
        return corrected + noise_scale

    lengths = _dyadic_lengths(n)
    best_cost = np.full(n + 1, np.inf)
    best_cost[0] = 0.0
    back_pointer = np.zeros(n + 1, dtype=int)
    for end in range(1, n + 1):
        for length in lengths:
            start = end - length
            if start < 0:
                break
            cost = best_cost[start] + interval_cost(start, end - 1)
            if cost < best_cost[end]:
                best_cost[end] = cost
                back_pointer[end] = start

    assignment = np.zeros(n, dtype=int)
    boundaries = []
    position = n
    while position > 0:
        start = back_pointer[position]
        boundaries.append((start, position - 1))
        position = start
    for group, (lo, hi) in enumerate(reversed(boundaries)):
        assignment[lo : hi + 1] = group
    return assignment


def _dyadic_interval_costs(
    blocks: np.ndarray, noise_scale: float
) -> list[np.ndarray]:
    """Noise-corrected L1 costs of every dyadic-length interval, per histogram.

    ``blocks`` is a ``(k, m)`` stack of histograms.  Returns one ``(k, m-l+1)``
    array per dyadic length ``l``; entry ``[:, s]`` is the cost of the interval
    ``[s, s+l)`` in each histogram.  Interval means come from prefix sums; the
    deviation sum accumulates over the ``l`` window offsets (one vectorized op
    per offset across all start positions and histograms) — or, when there are
    fewer windows than offsets, over the windows instead — so no cost is ever
    computed by a per-interval Python call.
    """
    k, m = blocks.shape
    prefix = np.zeros((k, m + 1))
    np.cumsum(blocks, axis=1, out=prefix[:, 1:])
    costs = []
    for length in _dyadic_lengths(m):
        num_windows = m - length + 1
        means = (prefix[:, length:] - prefix[:, :-length]) / length
        if length <= num_windows:
            deviations = np.abs(blocks[:, :num_windows] - means)
            for offset in range(1, length):
                deviations += np.abs(blocks[:, offset : offset + num_windows] - means)
        else:
            deviations = np.empty((k, num_windows))
            for start in range(num_windows):
                segment = blocks[:, start : start + length]
                deviations[:, start] = np.abs(segment - means[:, start, None]).sum(axis=1)
        costs.append(np.maximum(deviations - noise_scale * length, 0.0) + noise_scale)
    return costs


def _dp_single(costs: list[np.ndarray], lengths: list[int], m: int) -> np.ndarray:
    """O(m) DP over one histogram's precomputed interval costs.

    Plain-float inner loop (the ~log m candidate lengths per end point):
    for a single histogram the constant factor of per-end NumPy dispatch
    exceeds the arithmetic, so Python floats are the fastest exact evaluator.
    Returns the ``(m+1,)`` back-pointer array.
    """
    cost_rows = [cost[0].tolist() for cost in costs]
    best = [0.0] + [np.inf] * m
    back = np.zeros(m + 1, dtype=np.intp)
    num_lengths = len(lengths)
    for end in range(1, m + 1):
        reachable = min(end.bit_length(), num_lengths)
        best_value = np.inf
        best_start = 0
        for j in range(reachable):
            start = end - lengths[j]
            value = best[start] + cost_rows[j][start]
            if value < best_value:
                best_value = value
                best_start = start
        best[end] = best_value
        back[end] = best_start
    return back


def _dp_batch(costs: list[np.ndarray], lengths: list[int], k: int, m: int) -> np.ndarray:
    """O(m) DP vectorized across ``k`` histograms; returns ``(m+1, k)`` back pointers.

    Interval costs are re-laid-out end-indexed once, so each DP step is a
    single fancy gather of the reachable ``best`` states plus one add and one
    argmin over the ~log m candidate lengths — all k-wide.
    """
    num_lengths = len(lengths)
    lengths_arr = np.asarray(lengths, dtype=np.intp)
    # end_costs[j, end, :] = cost of the interval of length lengths[j] ending at end.
    end_costs = np.full((num_lengths, m + 1, k), np.inf)
    for j, (length, cost) in enumerate(zip(lengths, costs)):
        end_costs[j, length:, :] = cost.T
    best = np.full((m + 1, k), np.inf)
    best[0] = 0.0
    back = np.zeros((m + 1, k), dtype=np.intp)
    rows = np.arange(k)
    for end in range(1, m + 1):
        reachable = min(end.bit_length(), num_lengths)
        starts = end - lengths_arr[:reachable]
        candidates = best[starts] + end_costs[:reachable, end]
        # First minimum wins, i.e. the shortest candidate interval — the same
        # tie-break as the reference's strict-< update over ascending lengths.
        choice = np.argmin(candidates, axis=0)
        best[end] = candidates[choice, rows]
        back[end] = end - lengths_arr[choice]
    return back


def _assignments_from_back_pointers(back: np.ndarray, k: int, m: int) -> np.ndarray:
    """Walk ``(m+1, k)`` back pointers to per-cell group ids, k-wide.

    Marks every interval start while following all k pointer chains in
    lock-step; group ids are then one cumulative sum (groups numbered left to
    right, exactly like the reference's backtrack).
    """
    starts_mask = np.zeros((k, m), dtype=np.int64)
    positions = np.full(k, m, dtype=np.intp)
    rows = np.arange(k)
    while True:
        active = positions > 0
        if not active.any():
            break
        active_rows = rows[active]
        new_positions = back[positions[active], active_rows]
        starts_mask[active_rows, new_positions] = 1
        positions[active] = new_positions
    return np.cumsum(starts_mask, axis=1) - 1


def l1_partition_batch(blocks: np.ndarray, noise_scale: float) -> np.ndarray:
    """DAWA L1 partitions of a ``(k, m)`` stack of equal-length noisy histograms.

    Returns the ``(k, m)`` per-cell group assignments, one partition per
    histogram, identical to running :func:`l1_partition` on each row.  The
    interval costs and the DP recurrence are vectorized across the k
    histograms, which is where striped plans (one DAWA stage one per stripe)
    spend their partitioning time.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 2:
        raise ValueError("l1_partition_batch expects a (k, m) stack of histograms")
    k, m = blocks.shape
    if k == 0 or m == 0:
        return np.zeros((k, m), dtype=int)
    lengths = _dyadic_lengths(m)
    costs = _dyadic_interval_costs(blocks, noise_scale)
    if k == 1:
        back = _dp_single(costs, lengths, m)[:, None]
    else:
        back = _dp_batch(costs, lengths, k, m)
    return _assignments_from_back_pointers(back, k, m).astype(int)


def l1_partition(noisy: np.ndarray, noise_scale: float) -> np.ndarray:
    """Minimum-L1-cost segmentation of a noisy histogram into dyadic-length intervals.

    The cost of an interval is the L1 deviation of its (noisy) cells from their
    mean, minus the expected contribution of the noise (``noise_scale`` per
    cell), floored at zero, plus a constant per-interval penalty equal to the
    noise scale — the same bias correction DAWA applies so that pure-noise
    regions are merged rather than split.

    Returns the per-cell group assignment.  Assignments are identical to the
    retained scalar :func:`_reference_l1_partition`: guaranteed bit-exact
    whenever the interval costs are exactly representable (integer or
    dyadic-rational histograms — the vectorized accumulation and the
    reference's pairwise sums then agree exactly), and matching on arbitrary
    float histograms unless two DP candidates tie within the final ulp.  The
    interval costs are precomputed with vectorized prefix-sum/window kernels
    and only the O(n) DP recurrence remains a loop.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    if noisy.ndim != 1:
        raise ValueError("l1_partition expects a 1-D histogram; use l1_partition_batch")
    if noisy.size == 0:
        return np.zeros(0, dtype=int)
    return l1_partition_batch(noisy[None, :], noise_scale)[0]


def dawa_partition(
    source: ProtectedDataSource, epsilon: float
) -> ReductionMatrix:
    """Select a DAWA stage-one partition of a protected vector source.

    Parameters
    ----------
    source:
        Protected handle to a 1-D vector source.
    epsilon:
        Budget spent on the noisy histogram driving the segmentation (the
        paper's ``rho * epsilon`` share).
    """
    n = source.domain_size
    noisy = source.vector_laplace(Identity(n), epsilon)
    noise_scale = 1.0 / epsilon
    return ReductionMatrix(l1_partition(noisy, noise_scale))


def dawa_partition_from_noisy(noisy: np.ndarray, epsilon: float) -> ReductionMatrix:
    """Post-processing-only variant when a noisy histogram is already available."""
    return ReductionMatrix(l1_partition(np.asarray(noisy, dtype=np.float64), 1.0 / epsilon))
