"""DAWA partition selection (the PD operator, Plan #9).

The first stage of DAWA (Li et al. 2014) spends a fraction of the budget on
finding a partition of the 1-D domain into contiguous intervals that are
approximately uniform, so that measuring only the interval totals (stage two)
loses little information while greatly reducing noise.

The original uses an L1-cost dynamic program over noisy interval costs with
interval lengths restricted to powers of two (for an O(n log n) running time).
We implement the same structure:

1. spend ``epsilon`` on a noisy histogram (identity Laplace measurement),
2. compute, for every dyadic-length candidate interval, the (noisy) L1
   deviation-from-uniformity cost, corrected by the expected contribution of
   the Laplace noise,
3. run the dynamic program over interval end points to find the minimum-cost
   segmentation of the domain into candidate intervals.

Because only step 1 touches the private data, the operator is Private→Public
with cost exactly ``epsilon``; steps 2-3 are post-processing.
"""

from __future__ import annotations

import numpy as np

from ...matrix import Identity, ReductionMatrix
from ...private.protected import ProtectedDataSource


def _dyadic_lengths(n: int) -> list[int]:
    lengths = []
    length = 1
    while length <= n:
        lengths.append(length)
        length *= 2
    return lengths


def l1_partition(noisy: np.ndarray, noise_scale: float) -> np.ndarray:
    """Minimum-L1-cost segmentation of a noisy histogram into dyadic-length intervals.

    The cost of an interval is the L1 deviation of its (noisy) cells from their
    mean, minus the expected contribution of the noise (``noise_scale`` per
    cell), floored at zero, plus a constant per-interval penalty equal to the
    noise scale — the same bias correction DAWA applies so that pure-noise
    regions are merged rather than split.

    Returns the per-cell group assignment.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    n = noisy.size
    prefix = np.concatenate([[0.0], np.cumsum(noisy)])

    def interval_cost(lo: int, hi: int) -> float:
        """Cost of the inclusive interval [lo, hi]."""
        length = hi - lo + 1
        segment = noisy[lo : hi + 1]
        mean = (prefix[hi + 1] - prefix[lo]) / length
        deviation = float(np.abs(segment - mean).sum())
        corrected = max(deviation - noise_scale * length, 0.0)
        return corrected + noise_scale

    lengths = _dyadic_lengths(n)
    best_cost = np.full(n + 1, np.inf)
    best_cost[0] = 0.0
    back_pointer = np.zeros(n + 1, dtype=int)
    for end in range(1, n + 1):
        for length in lengths:
            start = end - length
            if start < 0:
                break
            cost = best_cost[start] + interval_cost(start, end - 1)
            if cost < best_cost[end]:
                best_cost[end] = cost
                back_pointer[end] = start

    assignment = np.zeros(n, dtype=int)
    boundaries = []
    position = n
    while position > 0:
        start = back_pointer[position]
        boundaries.append((start, position - 1))
        position = start
    for group, (lo, hi) in enumerate(reversed(boundaries)):
        assignment[lo : hi + 1] = group
    return assignment


def dawa_partition(
    source: ProtectedDataSource, epsilon: float
) -> ReductionMatrix:
    """Select a DAWA stage-one partition of a protected vector source.

    Parameters
    ----------
    source:
        Protected handle to a 1-D vector source.
    epsilon:
        Budget spent on the noisy histogram driving the segmentation (the
        paper's ``rho * epsilon`` share).
    """
    n = source.domain_size
    noisy = source.vector_laplace(Identity(n), epsilon)
    noise_scale = 1.0 / epsilon
    return ReductionMatrix(l1_partition(noisy, noise_scale))


def dawa_partition_from_noisy(noisy: np.ndarray, epsilon: float) -> ReductionMatrix:
    """Post-processing-only variant when a noisy histogram is already available."""
    return ReductionMatrix(l1_partition(np.asarray(noisy, dtype=np.float64), 1.0 / epsilon))
