"""AHP partition selection (the PA operator, Plan #8).

The AHP algorithm (Zhang et al. 2014) spends part of the budget on a noisy
histogram, thresholds small counts to zero, sorts the remaining noisy counts
and greedily clusters values that are close, producing a partition of the
domain whose groups have approximately uniform counts.  The partition is then
applied with V-ReduceByPartition and the group totals are re-measured.

This is a Private→Public operator: it consumes budget through the kernel's
Vector Laplace primitive; the clustering itself is post-processing of the
noisy histogram.
"""

from __future__ import annotations

import numpy as np

from ...matrix import Identity, ReductionMatrix
from ...private.protected import ProtectedDataSource


def cluster_sorted_counts(noisy: np.ndarray, gap_ratio: float = 0.5) -> np.ndarray:
    """Group cells whose (sorted) noisy counts are close.

    Cells are sorted by noisy count; a new group starts whenever the jump to
    the next count exceeds ``gap_ratio`` times the running group mean (with an
    absolute floor of 1.0 to avoid splitting pure-noise cells).  Returns the
    per-cell group assignment in original cell order.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    order = np.argsort(noisy, kind="stable")
    assignment = np.zeros(noisy.size, dtype=int)
    group = 0
    group_start_value = noisy[order[0]] if noisy.size else 0.0
    group_sum = 0.0
    group_count = 0
    for rank, cell in enumerate(order):
        value = noisy[cell]
        if group_count > 0:
            group_mean = group_sum / group_count
            threshold = max(gap_ratio * max(abs(group_mean), 1.0), 1.0)
            if value - group_start_value > threshold:
                group += 1
                group_start_value = value
                group_sum = 0.0
                group_count = 0
        assignment[cell] = group
        group_sum += value
        group_count += 1
    return assignment


def ahp_partition(
    source: ProtectedDataSource,
    epsilon: float,
    eta: float = 0.35,
    gap_ratio: float = 0.5,
) -> ReductionMatrix:
    """Select an AHP partition of a protected vector source.

    Parameters
    ----------
    source:
        Protected handle to a vector source.
    epsilon:
        Budget spent on the noisy histogram used to form the partition.
    eta:
        Thresholding constant: noisy counts below ``eta * log(n) / epsilon``
        are treated as zero before clustering (AHP's sparsity filter).
    gap_ratio:
        Clustering aggressiveness (larger → coarser partitions).
    """
    n = source.domain_size
    noisy = source.vector_laplace(Identity(n), epsilon)
    cutoff = eta * np.log(max(n, 2)) / epsilon
    filtered = np.where(noisy < cutoff, 0.0, noisy)
    assignment = cluster_sorted_counts(filtered, gap_ratio=gap_ratio)
    return ReductionMatrix(assignment)


def ahp_partition_from_noisy(
    noisy: np.ndarray, epsilon: float, eta: float = 0.35, gap_ratio: float = 0.5
) -> ReductionMatrix:
    """Post-processing-only variant when a noisy histogram is already available."""
    noisy = np.asarray(noisy, dtype=np.float64)
    cutoff = eta * np.log(max(noisy.size, 2)) / epsilon
    filtered = np.where(noisy < cutoff, 0.0, noisy)
    return ReductionMatrix(cluster_sorted_counts(filtered, gap_ratio=gap_ratio))
