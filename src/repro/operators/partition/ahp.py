"""AHP partition selection (the PA operator, Plan #8).

The AHP algorithm (Zhang et al. 2014) spends part of the budget on a noisy
histogram, thresholds small counts to zero, sorts the remaining noisy counts
and greedily clusters values that are close, producing a partition of the
domain whose groups have approximately uniform counts.  The partition is then
applied with V-ReduceByPartition and the group totals are re-measured.

This is a Private→Public operator: it consumes budget through the kernel's
Vector Laplace primitive; the clustering itself is post-processing of the
noisy histogram.

**Vectorized engine.**  The seed clustered cell-by-cell in a Python loop over
the sorted order.  :func:`cluster_sorted_counts` now scans each group's sorted
suffix with vectorized running means and break tests (geometrically growing
windows, so the total work stays linear in practice), producing assignments
identical to the retained scalar :func:`_reference_cluster_sorted_counts` —
the running group sums are cumulative sums in the same accumulation order, so
even the floating-point break decisions match bit for bit.
"""

from __future__ import annotations

import numpy as np

from ...matrix import Identity, ReductionMatrix
from ...private.protected import ProtectedDataSource

#: Initial vectorized scan window of :func:`cluster_sorted_counts`; windows
#: double until the group's break point is found, so a group of final size g
#: costs O(g) total work regardless of how the domain is split into groups.
_SCAN_WINDOW = 64


def _reference_cluster_sorted_counts(
    noisy: np.ndarray, gap_ratio: float = 0.5
) -> np.ndarray:
    """Scalar reference implementation of the AHP greedy clustering.

    The seed implementation, retained verbatim as ground truth: one Python
    iteration per cell in sorted order.  Property tests assert the vectorized
    :func:`cluster_sorted_counts` matches it exactly.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    order = np.argsort(noisy, kind="stable")
    assignment = np.zeros(noisy.size, dtype=int)
    group = 0
    group_start_value = noisy[order[0]] if noisy.size else 0.0
    group_sum = 0.0
    group_count = 0
    for rank, cell in enumerate(order):
        value = noisy[cell]
        if group_count > 0:
            group_mean = group_sum / group_count
            threshold = max(gap_ratio * max(abs(group_mean), 1.0), 1.0)
            if value - group_start_value > threshold:
                group += 1
                group_start_value = value
                group_sum = 0.0
                group_count = 0
        assignment[cell] = group
        group_sum += value
        group_count += 1
    return assignment


def _group_break(sorted_values: np.ndarray, start: int, gap_ratio: float) -> int:
    """Rank at which the group starting at ``start`` ends (exclusive).

    Scans the sorted suffix in geometrically growing windows.  The running
    group means are cumulative sums restarted at ``start`` — the same
    accumulation order as the scalar reference's ``group_sum`` — so the break
    test is evaluated on bit-identical floating-point values.
    """
    n = sorted_values.size
    window = _SCAN_WINDOW
    while True:
        hi = min(n, start + 1 + window)
        segment = sorted_values[start:hi]
        running_sums = np.cumsum(segment)
        counts = np.arange(1, segment.size)
        means = running_sums[:-1] / counts
        thresholds = np.maximum(gap_ratio * np.maximum(np.abs(means), 1.0), 1.0)
        breaks = segment[1:] - segment[0] > thresholds
        hit = int(np.argmax(breaks)) if breaks.size else 0
        if breaks.size and breaks[hit]:
            return start + 1 + hit
        if hi == n:
            return n
        window *= 2


def cluster_sorted_counts(noisy: np.ndarray, gap_ratio: float = 0.5) -> np.ndarray:
    """Group cells whose (sorted) noisy counts are close.

    Cells are sorted by noisy count; a new group starts whenever the jump to
    the next count exceeds ``gap_ratio`` times the running group mean (with an
    absolute floor of 1.0 to avoid splitting pure-noise cells).  Returns the
    per-cell group assignment in original cell order.

    Vectorized: one scan per *group* (not per cell), with the break point of
    each group located by windowed vectorized comparisons.  Assignments are
    identical to :func:`_reference_cluster_sorted_counts`.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    n = noisy.size
    assignment = np.zeros(n, dtype=int)
    if n == 0:
        return assignment
    order = np.argsort(noisy, kind="stable")
    sorted_values = noisy[order]
    group_of_rank = np.empty(n, dtype=int)
    group = 0
    start = 0
    while start < n:
        end = _group_break(sorted_values, start, gap_ratio)
        group_of_rank[start:end] = group
        group += 1
        start = end
    assignment[order] = group_of_rank
    return assignment


def ahp_partition(
    source: ProtectedDataSource,
    epsilon: float,
    eta: float = 0.35,
    gap_ratio: float = 0.5,
) -> ReductionMatrix:
    """Select an AHP partition of a protected vector source.

    Parameters
    ----------
    source:
        Protected handle to a vector source.
    epsilon:
        Budget spent on the noisy histogram used to form the partition.
    eta:
        Thresholding constant: noisy counts below ``eta * log(n) / epsilon``
        are treated as zero before clustering (AHP's sparsity filter).
    gap_ratio:
        Clustering aggressiveness (larger → coarser partitions).
    """
    n = source.domain_size
    noisy = source.vector_laplace(Identity(n), epsilon)
    cutoff = eta * np.log(max(n, 2)) / epsilon
    filtered = np.where(noisy < cutoff, 0.0, noisy)
    assignment = cluster_sorted_counts(filtered, gap_ratio=gap_ratio)
    return ReductionMatrix(assignment)


def ahp_partition_from_noisy(
    noisy: np.ndarray, epsilon: float, eta: float = 0.35, gap_ratio: float = 0.5
) -> ReductionMatrix:
    """Post-processing-only variant when a noisy histogram is already available."""
    noisy = np.asarray(noisy, dtype=np.float64)
    cutoff = eta * np.log(max(noisy.size, 2)) / epsilon
    filtered = np.where(noisy < cutoff, 0.0, noisy)
    return ReductionMatrix(cluster_sorted_counts(filtered, gap_ratio=gap_ratio))
