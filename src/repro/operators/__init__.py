"""Operator library: transformations, measurements, selection, partition, inference."""

from . import inference, partition, selection
from .measurement import laplace_noise_scale, noisy_count, vector_laplace
from .transformation import (
    select,
    t_vectorize,
    v_reduce_by_partition,
    v_split_by_partition,
    where,
)

__all__ = [
    "inference",
    "partition",
    "selection",
    "vector_laplace",
    "noisy_count",
    "laplace_noise_scale",
    "t_vectorize",
    "v_reduce_by_partition",
    "v_split_by_partition",
    "where",
    "select",
]
