"""Operator library: transformations, measurements, selection, partition, inference."""

from . import inference, partition, selection
from .measurement import (
    gaussian_noise_scale,
    laplace_noise_scale,
    noisy_count,
    vector_gaussian,
    vector_laplace,
)
from .transformation import (
    select,
    t_vectorize,
    v_reduce_by_partition,
    v_split_by_partition,
    where,
)

__all__ = [
    "inference",
    "partition",
    "selection",
    "vector_laplace",
    "vector_gaussian",
    "noisy_count",
    "laplace_noise_scale",
    "gaussian_noise_scale",
    "t_vectorize",
    "v_reduce_by_partition",
    "v_split_by_partition",
    "where",
    "select",
]
