"""Transformation operators — functional wrappers matching the paper's names.

The actual transformations are implemented by :class:`~repro.dataset.relation.Relation`
(tables) and by the protected kernel (stability tracking); these wrappers give
plan code the operator names used in the paper's pseudocode:

* ``t_vectorize``          — Algorithm 1 line 4,
* ``v_reduce_by_partition`` — Algorithm 1 line 6,
* ``v_split_by_partition``  — Algorithm 5 line 4.
"""

from __future__ import annotations

from ..matrix import ReductionMatrix
from ..private.protected import ProtectedDataSource


def t_vectorize(source: ProtectedDataSource) -> ProtectedDataSource:
    """T-Vectorize: turn a protected table into a protected data vector (1-stable)."""
    return source.vectorize()


def v_reduce_by_partition(
    source: ProtectedDataSource, partition: ReductionMatrix
) -> ProtectedDataSource:
    """V-ReduceByPartition: ``x' = P x`` on a protected vector source (1-stable)."""
    return source.reduce_by_partition(partition)


def v_split_by_partition(
    source: ProtectedDataSource, partition: ReductionMatrix
) -> list[ProtectedDataSource]:
    """V-SplitByPartition: split a protected vector into per-group sources.

    The kernel introduces a dummy partition node so that measurements on the
    disjoint pieces compose in parallel (Algorithm 2, partition case).
    """
    return source.split_by_partition(partition)


def where(source: ProtectedDataSource, predicate) -> ProtectedDataSource:
    """Where: filter the records of a protected table (1-stable)."""
    return source.where(predicate)


def select(source: ProtectedDataSource, attributes) -> ProtectedDataSource:
    """Select: project a protected table onto a subset of attributes (1-stable)."""
    return source.select(attributes)
