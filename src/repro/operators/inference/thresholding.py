"""Thresholding post-processing (the HR operator of Fig. 1).

A simple, widely used inference heuristic: zero-out estimated cells whose
value falls below a threshold (by default the noise scale), which suppresses
the spurious mass the Laplace mechanism spreads over empty cells of sparse
data vectors.  Pure post-processing, so it never touches the private data.
"""

from __future__ import annotations

import numpy as np

from .least_squares import InferenceResult


def threshold(
    x_hat: np.ndarray,
    cutoff: float | None = None,
    noise_scale: float | None = None,
    non_negative: bool = True,
) -> InferenceResult:
    """Zero-out small estimated counts.

    Parameters
    ----------
    x_hat:
        Estimated data vector (any inference output).
    cutoff:
        Explicit threshold; values with absolute value below it are set to 0.
    noise_scale:
        If ``cutoff`` is not given, use ``2 * noise_scale`` (twice the Laplace
        scale ≈ the 86th percentile of the noise magnitude).
    non_negative:
        Also clip negative estimates to zero.
    """
    x_hat = np.asarray(x_hat, dtype=np.float64).copy()
    if cutoff is None:
        if noise_scale is None:
            raise ValueError("either cutoff or noise_scale must be provided")
        cutoff = 2.0 * float(noise_scale)
    x_hat[np.abs(x_hat) < cutoff] = 0.0
    if non_negative:
        x_hat = np.clip(x_hat, 0.0, None)
    return InferenceResult(x_hat, iterations=1, residual_norm=0.0)
