"""Least-squares inference operators (Sec. 5.5 and 7.6).

Given a measurement matrix ``M`` (possibly implicit) and noisy answers ``y``,
ordinary least squares finds ``x̂ = argmin_x ||M x - y||_2``.  Optional
per-query weights account for measurements taken with different noise scales
(rows are scaled by ``w_i`` before solving, which is equivalent to weighted
least squares with weights ``w_i^2``).

Two solution strategies are provided:

* ``method="direct"`` — solve the normal equations with a dense factorisation;
  cubic in the domain size, only viable for small domains (used as the
  baseline in the Fig. 5 scalability experiment).
* ``method="lsmr"`` (default) — scipy's iterative LSMR solver driven purely by
  matvec/rmatvec, so it runs on implicit matrices without materialisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.linalg import lsmr

from ...matrix import LinearQueryMatrix, Weighted, ensure_matrix
from ...matrix.combinators import VStack


@dataclass
class InferenceResult:
    """Estimated data vector plus solver diagnostics."""

    x_hat: np.ndarray
    iterations: int
    residual_norm: float


def _apply_weights(
    queries: LinearQueryMatrix, answers: np.ndarray, weights: np.ndarray | None
) -> tuple[LinearQueryMatrix, np.ndarray]:
    """Scale rows and answers by per-query weights (no-op if weights is None)."""
    if weights is None:
        return queries, np.asarray(answers, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    answers = np.asarray(answers, dtype=np.float64)
    if weights.shape != (queries.shape[0],):
        raise ValueError("weights must have one entry per query")
    if np.allclose(weights, weights[0]):
        # Uniform weights do not change the minimiser.
        return queries, answers
    from ...matrix.dense import SparseMatrix
    from scipy import sparse as sp

    diag = SparseMatrix(sp.diags(weights))
    from ...matrix.combinators import Product

    return Product(diag, queries), weights * answers


def least_squares(
    queries: LinearQueryMatrix,
    answers: np.ndarray,
    weights: np.ndarray | None = None,
    method: str = "lsmr",
    max_iterations: int | None = None,
    tolerance: float = 1e-8,
) -> InferenceResult:
    """Ordinary least-squares estimate of the data vector.

    Parameters
    ----------
    queries:
        The measurement matrix ``M`` (any :class:`LinearQueryMatrix`).
    answers:
        Noisy answers ``y`` with one entry per row of ``M``.
    weights:
        Optional per-query weights (inverse noise scales).
    method:
        ``"lsmr"`` (iterative, works on implicit matrices) or ``"direct"``
        (dense normal equations).
    """
    queries = ensure_matrix(queries)
    answers = np.asarray(answers, dtype=np.float64)
    if answers.shape != (queries.shape[0],):
        raise ValueError(
            f"answers of shape {answers.shape} do not match {queries.shape[0]} queries"
        )
    queries, answers = _apply_weights(queries, answers, weights)

    if method == "direct":
        dense = queries.dense()
        x_hat, residuals, _, _ = np.linalg.lstsq(dense, answers, rcond=None)
        residual = float(np.linalg.norm(dense @ x_hat - answers))
        return InferenceResult(x_hat, iterations=1, residual_norm=residual)
    if method != "lsmr":
        raise ValueError(f"unknown least-squares method {method!r}")

    operator = queries.as_linear_operator()
    max_iterations = max_iterations or max(2 * queries.shape[1], 100)
    solution = lsmr(operator, answers, atol=tolerance, btol=tolerance, maxiter=max_iterations)
    x_hat, istop, itn, normr = solution[0], solution[1], solution[2], solution[3]
    return InferenceResult(np.asarray(x_hat), iterations=int(itn), residual_norm=float(normr))


def least_squares_from_parts(
    parts: list[tuple[LinearQueryMatrix, np.ndarray, float]],
    method: str = "lsmr",
) -> InferenceResult:
    """Global least squares over measurements collected from different plan steps.

    ``parts`` is a list of ``(M_i, y_i, noise_scale_i)`` triples, all expressed
    over the *same* data vector (use partition expansion to map measurements on
    reduced domains back to the original domain first).  Each part is weighted
    by the inverse of its noise scale so noisier measurements count less.
    """
    if not parts:
        raise ValueError("at least one measurement part is required")
    matrices = []
    answers = []
    weights = []
    for matrix, y, scale in parts:
        matrix = ensure_matrix(matrix)
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (matrix.shape[0],):
            raise ValueError("answers do not match the measurement matrix")
        matrices.append(matrix)
        answers.append(y)
        weights.append(np.full(matrix.shape[0], 1.0 / max(scale, 1e-12)))
    stacked = matrices[0] if len(matrices) == 1 else VStack(matrices)
    return least_squares(
        stacked,
        np.concatenate(answers),
        weights=np.concatenate(weights),
        method=method,
    )
