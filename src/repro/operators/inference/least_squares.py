"""Least-squares inference operators (Sec. 5.5 and 7.6).

Given a measurement matrix ``M`` (possibly implicit) and noisy answers ``y``,
ordinary least squares finds ``x̂ = argmin_x ||M x - y||_2``.  Optional
per-query weights account for measurements taken with different noise scales
(rows are scaled by ``w_i`` before solving, which is equivalent to weighted
least squares with weights ``w_i^2``).

Four solution strategies are provided:

* ``method="direct"`` — dense factorisation of the materialised matrix; cubic
  in the larger dimension, only viable for small problems (used as the
  baseline in the Fig. 5 scalability experiment).
* ``method="lsmr"`` (default) — scipy's iterative LSMR solver driven purely by
  matvec/rmatvec, so it runs on implicit matrices without materialisation.
* ``method="normal"`` — solve the normal equations ``(M.T M) x = M.T y`` with
  the blocked vectorized :meth:`~repro.matrix.base.LinearQueryMatrix.gram_dense`
  kernel.  For the common tall-skinny measurement case (``m >> n``) this is
  dramatically faster than both alternatives, and the ``n x n`` Gram matrix is
  data-independent, so it can be cached and shared across requests via the
  service's :class:`~repro.service.artifact_cache.ArtifactCache` (pass
  ``gram_cache``/``gram_key``).
* ``method="auto"`` — picks ``"normal"`` for tall-skinny problems with a
  moderate domain, ``"lsmr"`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Protocol

import numpy as np
from scipy import sparse as sp
from scipy.linalg import cho_factor, cho_solve
from scipy.sparse.linalg import factorized, lsmr

from ...matrix import LinearQueryMatrix, ensure_matrix
from ...matrix.combinators import VStack
from ...telemetry.spans import trace_span


class SupportsGetOrBuild(Protocol):
    """Anything with an ``ArtifactCache``-style ``get_or_build`` method."""

    def get_or_build(self, key: Hashable, builder): ...


#: ``method="auto"`` switches to the normal equations when the measurement
#: matrix has at least this many rows per column ...
_AUTO_NORMAL_ASPECT = 2.0
#: ... and no more than this many columns (the Gram solve is O(n^3)).
_AUTO_NORMAL_MAX_DOMAIN = 4096


@dataclass
class InferenceResult:
    """Estimated data vector plus solver diagnostics."""

    x_hat: np.ndarray
    iterations: int
    residual_norm: float


@dataclass
class NormalEquations:
    """Cached normal-equations artifact: the Gram matrix and its factorisation.

    Both depend only on the (public) measurement strategy and weights, never on
    the noisy answers, so the artifact is data-independent and safe to share
    across requests and tenants through the service's ``ArtifactCache``.

    ``gram`` is either a dense ndarray (factorised with Cholesky, ``cho``) or a
    scipy CSR matrix (factorised with a sparse LU via
    ``scipy.sparse.linalg.factorized``, ``lu``), whichever
    :meth:`~repro.matrix.base.LinearQueryMatrix.gram_auto` decided fits the
    strategy's structure.  When the Gram is singular (rank-deficient
    measurements) both factorisations are ``None`` and solves fall back to the
    minimum-norm pseudo-inverse solution.
    """

    gram: np.ndarray | sp.spmatrix
    cho: tuple | None
    lu: Callable[[np.ndarray], np.ndarray] | None = None

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.gram)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``gram @ x = rhs`` for a vector or a stack of columns."""
        if self.cho is not None:
            return cho_solve(self.cho, rhs)
        if self.lu is not None:
            rhs = np.asarray(rhs)
            if rhs.ndim == 2:
                try:
                    return np.asarray(self.lu(rhs))
                except Exception:
                    # umfpack-backed factorized() solves only accept 1-D
                    # right-hand sides; fall back to one solve per column.
                    return np.stack(
                        [self.lu(rhs[:, j]) for j in range(rhs.shape[1])], axis=1
                    )
            return self.lu(rhs)
        gram = self.gram.toarray() if sp.issparse(self.gram) else self.gram
        return np.linalg.lstsq(gram, rhs, rcond=None)[0]


def build_normal_equations(
    queries: LinearQueryMatrix, prefer: str = "auto"
) -> NormalEquations:
    """Materialise ``M.T M`` and factorise it, exploiting sparsity when it fits.

    ``prefer`` is ``"auto"`` (let the strategy's structural nnz estimate pick
    the representation), ``"sparse"`` (force CSR + sparse LU) or ``"dense"``
    (force the blocked dense Gram kernel + Cholesky).
    """
    with trace_span(
        "solve.build_normal_equations",
        prefer=prefer,
        rows=int(queries.shape[0]),
        cols=int(queries.shape[1]),
    ) as span:
        if prefer == "auto":
            gram = queries.gram_auto()
        elif prefer == "sparse":
            gram = queries.gram_sparse()
        elif prefer == "dense":
            gram = queries.gram_dense()
        else:
            raise ValueError(f"unknown Gram preference {prefer!r}")
        if sp.issparse(gram):
            gram = gram.tocsr()
            try:
                lu = factorized(gram.tocsc())
            except RuntimeError:
                # Exactly singular: solves fall back to the pseudo-inverse.
                lu = None
            span.set_attributes(gram_kind="sparse", gram_nnz=int(gram.nnz))
            return NormalEquations(gram, cho=None, lu=lu)
        try:
            cho = cho_factor(gram)
        except np.linalg.LinAlgError:
            cho = None
        span.set_attribute("gram_kind", "dense")
        return NormalEquations(gram, cho)


def _apply_weights(
    queries: LinearQueryMatrix, answers: np.ndarray, weights: np.ndarray | None
) -> tuple[LinearQueryMatrix, np.ndarray, float]:
    """Fold per-query weights into the system.

    Returns ``(queries, answers, uniform_scale)``.  Non-uniform weights are
    folded in as a diagonal row scaling (``uniform_scale`` is 1.0).  Exactly
    uniform weights leave the system untouched and return the common weight as
    ``uniform_scale`` instead: the minimiser is invariant under a uniform row
    scaling, so solvers can keep sharing strategy-keyed Gram artifacts across
    noise scales — but they must multiply reported residual norms by
    ``uniform_scale`` so the units match the non-uniform case.
    """
    if weights is None:
        return queries, np.asarray(answers, dtype=np.float64), 1.0
    weights = np.asarray(weights, dtype=np.float64)
    answers = np.asarray(answers, dtype=np.float64)
    if weights.shape != (queries.shape[0],):
        raise ValueError("weights must have one entry per query")
    if not np.any(weights):
        # All-zero weights erase every equation; a silent unweighted solve
        # (the old shortcut's behaviour) would claim a residual it never saw.
        raise ValueError("weights must not be all zero")
    if np.allclose(weights, weights[0]):
        # abs(): the residual scale is a norm factor, so a (pathological)
        # uniform negative weight must not flip residual_norm's sign.
        return queries, answers, abs(float(weights[0]))
    from ...matrix.dense import SparseMatrix

    diag = SparseMatrix(sp.diags(weights))
    from ...matrix.combinators import Product

    return Product(diag, queries), weights * answers, 1.0


def least_squares(
    queries: LinearQueryMatrix,
    answers: np.ndarray,
    weights: np.ndarray | None = None,
    method: str = "lsmr",
    max_iterations: int | None = None,
    tolerance: float = 1e-8,
    gram_cache: SupportsGetOrBuild | None = None,
    gram_key: Hashable | None = None,
) -> InferenceResult:
    """Ordinary least-squares estimate of the data vector.

    Parameters
    ----------
    queries:
        The measurement matrix ``M`` (any :class:`LinearQueryMatrix`).
    answers:
        Noisy answers ``y`` with one entry per row of ``M``.
    weights:
        Optional per-query weights (inverse noise scales).
    method:
        ``"lsmr"`` (iterative, works on implicit matrices), ``"direct"``
        (dense factorisation), ``"normal"`` (dense normal equations through the
        vectorized Gram kernel), or ``"auto"`` (normal for tall-skinny
        problems, lsmr otherwise).
    max_iterations:
        Iteration cap for the lsmr solver.  ``None`` (the only sentinel) means
        "use the default of ``max(2n, 100)``"; an explicit ``0`` is honoured
        and returns the zero vector after no iterations.
    gram_cache / gram_key:
        Optional cache (anything with an ``ArtifactCache``-style
        ``get_or_build``) for the ``method="normal"`` Gram matrix.  The key
        must uniquely identify the *weighted* measurement matrix — the Gram is
        data-independent but does depend on the weights, so include them (or a
        digest of them) in the key when they vary.  When ``gram_cache`` is
        given and ``gram_key`` is ``None``, the key is derived automatically
        from the weighted matrix's canonical
        :meth:`~repro.matrix.base.LinearQueryMatrix.strategy_key`, so equal
        strategies share one factorisation without the caller inventing keys.
    """
    queries = ensure_matrix(queries)
    answers = np.asarray(answers, dtype=np.float64)
    if answers.shape != (queries.shape[0],):
        raise ValueError(
            f"answers of shape {answers.shape} do not match {queries.shape[0]} queries"
        )
    # ``scale`` is a uniform row weight left out of the solve (the minimiser
    # is invariant, and keeping the system unscaled lets equal strategies
    # share one cached Gram across noise scales); residual norms are
    # multiplied back so they are always reported in weighted units.
    queries, answers, scale = _apply_weights(queries, answers, weights)

    if method == "auto":
        m, n = queries.shape
        # With a shared Gram cache the factorisation amortises across
        # requests, so normal equations win from square systems (m >= n)
        # upward; without one they must beat LSMR on a single cold solve,
        # which takes the tall-skinny aspect.
        aspect = 1.0 if gram_cache is not None else _AUTO_NORMAL_ASPECT
        tall_skinny = m >= aspect * n and n <= _AUTO_NORMAL_MAX_DOMAIN
        method = "normal" if tall_skinny else "lsmr"

    with trace_span(
        "solve.least_squares",
        method=method,
        rows=int(queries.shape[0]),
        cols=int(queries.shape[1]),
    ) as span:
        if method == "direct":
            dense = queries.dense()
            x_hat, residuals, _, _ = np.linalg.lstsq(dense, answers, rcond=None)
            residual = scale * float(np.linalg.norm(dense @ x_hat - answers))
            span.set_attributes(iterations=1, residual_norm=residual)
            return InferenceResult(x_hat, iterations=1, residual_norm=residual)
        if method == "normal":
            if gram_cache is not None:
                if gram_key is None:
                    gram_key = queries.strategy_key()
                # The builder only runs on a miss, so an empty flag list after
                # get_or_build means the factorisation came from the cache —
                # works for any SupportsGetOrBuild, not just ArtifactCache.
                built: list[bool] = []

                def _build():
                    built.append(True)
                    return build_normal_equations(queries)

                normal = gram_cache.get_or_build(("least_squares_gram", gram_key), _build)
                span.set_attribute("gram_cache_hit", not built)
            else:
                normal = build_normal_equations(queries)
            x_hat = normal.solve(queries.rmatvec(answers))
            residual = scale * float(np.linalg.norm(queries.matvec(x_hat) - answers))
            span.set_attributes(iterations=1, residual_norm=residual)
            return InferenceResult(np.asarray(x_hat), iterations=1, residual_norm=residual)
        if method != "lsmr":
            raise ValueError(f"unknown least-squares method {method!r}")

        operator = queries.as_linear_operator()
        if max_iterations is None:
            max_iterations = max(2 * queries.shape[1], 100)
        solution = lsmr(operator, answers, atol=tolerance, btol=tolerance, maxiter=max_iterations)
        x_hat, istop, itn, normr = solution[0], solution[1], solution[2], solution[3]
        span.set_attributes(iterations=int(itn), residual_norm=scale * float(normr))
        return InferenceResult(
            np.asarray(x_hat), iterations=int(itn), residual_norm=scale * float(normr)
        )


def least_squares_from_parts(
    parts: list[tuple[LinearQueryMatrix, np.ndarray, float]],
    method: str = "lsmr",
    gram_cache: SupportsGetOrBuild | None = None,
    gram_key: Hashable | None = None,
) -> InferenceResult:
    """Global least squares over measurements collected from different plan steps.

    ``parts`` is a list of ``(M_i, y_i, noise_scale_i)`` triples, all expressed
    over the *same* data vector (use partition expansion to map measurements on
    reduced domains back to the original domain first).  Each part is weighted
    by the inverse of its noise scale so noisier measurements count less.

    ``gram_cache``/``gram_key`` are forwarded to :func:`least_squares`; with a
    cache and no explicit key, the key derives from the *weighted* stack's
    canonical strategy key, so repeated multi-step plans on the same strategy
    and noise split share one normal-equations factorisation.
    """
    if not parts:
        raise ValueError("at least one measurement part is required")
    matrices = []
    answers = []
    weights = []
    for matrix, y, scale in parts:
        matrix = ensure_matrix(matrix)
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (matrix.shape[0],):
            raise ValueError("answers do not match the measurement matrix")
        matrices.append(matrix)
        answers.append(y)
        weights.append(np.full(matrix.shape[0], 1.0 / max(scale, 1e-12)))
    stacked = matrices[0] if len(matrices) == 1 else VStack(matrices)
    return least_squares(
        stacked,
        np.concatenate(answers),
        weights=np.concatenate(weights),
        method=method,
        gram_cache=gram_cache,
        gram_key=gram_key,
    )
