"""Inference operators: estimate the data vector from noisy measurements."""

from .least_squares import (
    InferenceResult,
    NormalEquations,
    build_normal_equations,
    least_squares,
    least_squares_from_parts,
)
from .mult_weights import estimate_total, multiplicative_weights, mwem_update
from .nnls import nnls, nnls_with_total
from .thresholding import threshold
from .tree_based import hierarchical_measurements, tree_based_least_squares

__all__ = [
    "InferenceResult",
    "NormalEquations",
    "build_normal_equations",
    "least_squares",
    "least_squares_from_parts",
    "nnls",
    "nnls_with_total",
    "estimate_total",
    "multiplicative_weights",
    "mwem_update",
    "threshold",
    "tree_based_least_squares",
    "hierarchical_measurements",
]
