"""Multiplicative-weights inference (used by MWEM, Sec. 5.5).

The multiplicative-weights update maintains a non-negative estimate ``x̂`` of
the data vector with a fixed total and repeatedly reweights cells according to
how much each measured query under- or over-estimates its noisy answer:

    x̂ ← x̂ ⊙ exp( q * (y - q·x̂) / (2 * total) )        for each query q,

followed by renormalisation to the total.  This is closely related to
maximum-entropy inference and is most effective when the measured query set is
incomplete.  Only matvec/rmatvec are needed, so implicit matrices work.

**Support-sparse sequential updates.**  A counting-query row is typically
non-zero on a short range of the domain, yet the textbook update exponentiates
every cell — ``exp(0) = 1`` everywhere outside the support.  The sequential
mode therefore extracts each row's non-zero support once (reused across all
passes for cached rows) and applies the exponential only on the support,
leaving off-support cells untouched.  Because the off-support factor is
*exactly* 1, the trajectory is bit-identical to the dense update; only the
wasted ``exp`` calls disappear.
"""

from __future__ import annotations

import numpy as np

from ...matrix import LinearQueryMatrix, ensure_matrix
from .least_squares import InferenceResult


#: Largest row-cache size (``num_queries * domain_size`` doubles) that
#: :func:`multiplicative_weights` materialises up front.  Above this the rows
#: are still extracted through the vectorized blocked kernel, but one block at
#: a time inside each pass to bound memory.
_ROW_CACHE_CELLS = 16_777_216

_ROW_BLOCK = 256

#: ``support_sparse=None`` applies the support-sparse exponential to rows
#: whose support covers at most this fraction of the domain; denser rows keep
#: the plain dense update (the gather overhead would exceed the saved exps).
_SUPPORT_DENSITY = 0.5


def _row_supports(rows: np.ndarray, support_sparse: bool | None) -> list:
    """Per-row ``(indices, values)`` supports, or ``None`` where dense is better.

    ``support_sparse`` mirrors the :func:`multiplicative_weights` parameter:
    ``None`` keeps the support only when it is small enough to win
    (:data:`_SUPPORT_DENSITY`), ``True`` forces it, ``False`` disables it.
    """
    if support_sparse is False:
        return [None] * rows.shape[0]
    cutoff = rows.shape[1] if support_sparse else _SUPPORT_DENSITY * rows.shape[1]
    supports = []
    for row in rows:
        indices = np.flatnonzero(row)
        supports.append((indices, row[indices]) if indices.size <= cutoff else None)
    return supports


def _pass_rows(
    queries: LinearQueryMatrix,
    cached: np.ndarray | None,
    cached_supports: list | None,
    support_sparse: bool | None,
):
    """Yield ``(i, row_i, support_i)`` for one MW pass without per-row rmatvec calls."""
    if cached is not None:
        for i, row in enumerate(cached):
            yield i, row, cached_supports[i]
        return
    num_queries = queries.shape[0]
    for lo in range(0, num_queries, _ROW_BLOCK):
        block = queries.rows(np.arange(lo, min(lo + _ROW_BLOCK, num_queries)))
        supports = _row_supports(block, support_sparse)
        for offset, row in enumerate(block):
            yield lo + offset, row, supports[offset]


def estimate_total(queries: LinearQueryMatrix, answers: np.ndarray) -> float:
    """MWEM's known-total stand-in when no total is supplied.

    Total-like rows — rows that sum every cell with coefficient one — answer
    the total directly, so their noisy answers average to an unbiased estimate;
    when the query set has none, the largest answer magnitude is the best
    available lower bound.  Rows are classified from two matvecs (row sums and
    squared row sums), so implicit matrices never materialise: a row with both
    equal to the domain size must be all ones, given coefficients in [0, 1].
    """
    queries = ensure_matrix(queries)
    answers = np.asarray(answers, dtype=np.float64)
    n = queries.shape[1]
    ones = np.ones(n)
    row_sums = queries.matvec(ones)
    squared_sums = queries.square().matvec(ones)
    total_like = np.isclose(row_sums, n) & np.isclose(squared_sums, n)
    if np.any(total_like):
        # Same floor as the fallback: a heavily-noised total can come back
        # non-positive, and a degenerate total collapses the MW update.
        return float(max(np.mean(answers[total_like]), 1.0))
    return float(max(np.max(np.abs(answers)), 1.0))


def multiplicative_weights(
    queries: LinearQueryMatrix,
    answers: np.ndarray,
    total: float | None = None,
    x0: np.ndarray | None = None,
    iterations: int = 50,
    update_rounds: int = 1,
    mode: str = "sequential",
    support_sparse: bool | None = None,
    row_cache: np.ndarray | None = None,
) -> InferenceResult:
    """Estimate the data vector with the multiplicative-weights update rule.

    Parameters
    ----------
    queries:
        Measurement matrix ``M`` (rows are assumed to have entries in [0, 1],
        as is the case for counting queries).
    answers:
        Noisy answers ``y``.
    total:
        Total number of records.  If ``None`` it is estimated from the answers
        (mean of any total-like rows, otherwise the max answer; see
        :func:`estimate_total`), matching MWEM's assumption of a known total.
    x0:
        Starting estimate; defaults to the uniform distribution over the domain
        scaled to ``total``.
    iterations:
        Number of passes over the query set.
    update_rounds:
        Extra inner repetitions per query within a pass.
    mode:
        ``"sequential"`` (default) applies the classic one-query-at-a-time
        Gauss–Seidel update and is numerically identical to the seed
        implementation, but pre-extracts all query rows through the blocked
        :meth:`~repro.matrix.base.LinearQueryMatrix.rows` kernel instead of
        issuing one rmatvec per query per pass.  ``"batched"`` applies the
        Jacobi-style whole-pass update — one matvec for all estimates and one
        rmatvec to fold every error back into the exponent — which is much
        faster on large query sets but follows a (slightly) different
        optimisation trajectory.
    support_sparse:
        Sequential-mode exponential policy.  ``None`` (default) applies the
        exponential only on a row's non-zero support whenever the support is
        small enough to win; ``True``/``False`` force the support-sparse or
        dense update.  All three settings produce bit-identical trajectories
        (``exp(0) = 1`` exactly); the flag exists for benchmarks and tests.
    row_cache:
        Optional pre-extracted dense rows of ``queries`` (shape ``(m, n)``).
        Callers that grow a measurement set incrementally (the MWEM plan
        family) pass the rows they already hold, skipping re-extraction.
    """
    queries = ensure_matrix(queries)
    answers = np.asarray(answers, dtype=np.float64)
    if answers.shape != (queries.shape[0],):
        raise ValueError("answers do not match the number of queries")
    if mode not in ("sequential", "batched"):
        raise ValueError(f"unknown multiplicative-weights mode {mode!r}")
    n = queries.shape[1]

    if total is None:
        total = estimate_total(queries, answers)
    total = max(float(total), 1e-9)

    if x0 is None:
        x_hat = np.full(n, total / n)
    else:
        x_hat = np.clip(np.asarray(x0, dtype=np.float64), 1e-12, None)
        x_hat *= total / x_hat.sum()

    num_queries = queries.shape[0]
    if mode == "batched":
        for _ in range(iterations):
            for _ in range(update_rounds):
                errors = answers - queries.matvec(x_hat)
                x_hat = x_hat * np.exp(queries.rmatvec(errors) / (2.0 * total))
                x_hat *= total / x_hat.sum()
    else:
        cached = None
        cached_supports = None
        if row_cache is not None:
            row_cache = np.asarray(row_cache, dtype=np.float64)
            if row_cache.shape != queries.shape:
                raise ValueError(
                    f"row_cache of shape {row_cache.shape} does not match the "
                    f"{queries.shape} query matrix"
                )
            cached = row_cache
        elif num_queries * n <= _ROW_CACHE_CELLS:
            cached = queries.rows(np.arange(num_queries))
        if cached is not None:
            # Supports are extracted once and reused by every pass.
            cached_supports = _row_supports(cached, support_sparse)
        for _ in range(iterations):
            for i, row, support in _pass_rows(queries, cached, cached_supports, support_sparse):
                for _ in range(update_rounds):
                    estimate = float(row @ x_hat)
                    error = answers[i] - estimate
                    # Standard MW step size from Hardt-Ligett-McSherry.
                    if support is None:
                        x_hat = x_hat * np.exp(row * error / (2.0 * total))
                    else:
                        indices, values = support
                        x_hat[indices] = x_hat[indices] * np.exp(
                            values * error / (2.0 * total)
                        )
                    x_hat *= total / x_hat.sum()

    residual = float(np.linalg.norm(queries.matvec(x_hat) - answers))
    return InferenceResult(x_hat, iterations=iterations, residual_norm=residual)


def mwem_update(
    x_hat: np.ndarray,
    query_row: np.ndarray,
    noisy_answer: float,
    total: float,
    support: np.ndarray | None = None,
) -> np.ndarray:
    """A single multiplicative-weights update (used inside the MWEM plan loop).

    ``support`` optionally carries the row's precomputed non-zero indices
    (``np.flatnonzero(query_row)``); the exponential is then applied only on
    the support, which is bit-identical to the dense update (``exp(0) = 1``)
    but skips the full-domain exponentiation.  Plans that replay a measurement
    history every round extract each row's support once at measurement time.
    """
    x_hat = np.clip(np.asarray(x_hat, dtype=np.float64), 1e-12, None)
    estimate = float(query_row @ x_hat)
    error = noisy_answer - estimate
    if support is None:
        updated = x_hat * np.exp(query_row * error / (2.0 * max(total, 1e-9)))
        updated *= x_hat.sum() / updated.sum()
        return updated
    prior_sum = x_hat.sum()
    updated = x_hat  # np.clip returned a fresh array we own
    updated[support] = updated[support] * np.exp(
        query_row[support] * error / (2.0 * max(total, 1e-9))
    )
    updated *= prior_sum / updated.sum()
    return updated
