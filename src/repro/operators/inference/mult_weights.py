"""Multiplicative-weights inference (used by MWEM, Sec. 5.5).

The multiplicative-weights update maintains a non-negative estimate ``x̂`` of
the data vector with a fixed total and repeatedly reweights cells according to
how much each measured query under- or over-estimates its noisy answer:

    x̂ ← x̂ ⊙ exp( q * (y - q·x̂) / (2 * total) )        for each query q,

followed by renormalisation to the total.  This is closely related to
maximum-entropy inference and is most effective when the measured query set is
incomplete.  Only matvec/rmatvec are needed, so implicit matrices work.
"""

from __future__ import annotations

import numpy as np

from ...matrix import LinearQueryMatrix, ensure_matrix
from .least_squares import InferenceResult


#: Largest row-cache size (``num_queries * domain_size`` doubles) that
#: :func:`multiplicative_weights` materialises up front.  Above this the rows
#: are still extracted through the vectorized blocked kernel, but one block at
#: a time inside each pass to bound memory.
_ROW_CACHE_CELLS = 16_777_216

_ROW_BLOCK = 256


def _pass_rows(queries: LinearQueryMatrix, cached: np.ndarray | None):
    """Yield ``(i, row_i)`` for one MW pass without per-row rmatvec calls."""
    if cached is not None:
        yield from enumerate(cached)
        return
    num_queries = queries.shape[0]
    for lo in range(0, num_queries, _ROW_BLOCK):
        block = queries.rows(np.arange(lo, min(lo + _ROW_BLOCK, num_queries)))
        for offset, row in enumerate(block):
            yield lo + offset, row


def multiplicative_weights(
    queries: LinearQueryMatrix,
    answers: np.ndarray,
    total: float | None = None,
    x0: np.ndarray | None = None,
    iterations: int = 50,
    update_rounds: int = 1,
    mode: str = "sequential",
) -> InferenceResult:
    """Estimate the data vector with the multiplicative-weights update rule.

    Parameters
    ----------
    queries:
        Measurement matrix ``M`` (rows are assumed to have entries in [0, 1],
        as is the case for counting queries).
    answers:
        Noisy answers ``y``.
    total:
        Total number of records.  If ``None`` it is estimated from the answers
        (mean of any total-like rows, otherwise the max answer), matching
        MWEM's assumption of a known total.
    x0:
        Starting estimate; defaults to the uniform distribution over the domain
        scaled to ``total``.
    iterations:
        Number of passes over the query set.
    update_rounds:
        Extra inner repetitions per query within a pass.
    mode:
        ``"sequential"`` (default) applies the classic one-query-at-a-time
        Gauss–Seidel update and is numerically identical to the seed
        implementation, but pre-extracts all query rows through the blocked
        :meth:`~repro.matrix.base.LinearQueryMatrix.rows` kernel instead of
        issuing one rmatvec per query per pass.  ``"batched"`` applies the
        Jacobi-style whole-pass update — one matvec for all estimates and one
        rmatvec to fold every error back into the exponent — which is much
        faster on large query sets but follows a (slightly) different
        optimisation trajectory.
    """
    queries = ensure_matrix(queries)
    answers = np.asarray(answers, dtype=np.float64)
    if answers.shape != (queries.shape[0],):
        raise ValueError("answers do not match the number of queries")
    if mode not in ("sequential", "batched"):
        raise ValueError(f"unknown multiplicative-weights mode {mode!r}")
    n = queries.shape[1]

    if total is None:
        total = float(max(np.max(np.abs(answers)), 1.0))
    total = max(float(total), 1e-9)

    if x0 is None:
        x_hat = np.full(n, total / n)
    else:
        x_hat = np.clip(np.asarray(x0, dtype=np.float64), 1e-12, None)
        x_hat *= total / x_hat.sum()

    num_queries = queries.shape[0]
    if mode == "batched":
        for _ in range(iterations):
            for _ in range(update_rounds):
                errors = answers - queries.matvec(x_hat)
                x_hat = x_hat * np.exp(queries.rmatvec(errors) / (2.0 * total))
                x_hat *= total / x_hat.sum()
    else:
        cached = None
        if num_queries * n <= _ROW_CACHE_CELLS:
            cached = queries.rows(np.arange(num_queries))
        for _ in range(iterations):
            for i, row in _pass_rows(queries, cached):
                for _ in range(update_rounds):
                    estimate = float(row @ x_hat)
                    error = answers[i] - estimate
                    # Standard MW step size from Hardt-Ligett-McSherry.
                    x_hat = x_hat * np.exp(row * error / (2.0 * total))
                    x_hat *= total / x_hat.sum()

    residual = float(np.linalg.norm(queries.matvec(x_hat) - answers))
    return InferenceResult(x_hat, iterations=iterations, residual_norm=residual)


def mwem_update(
    x_hat: np.ndarray,
    query_row: np.ndarray,
    noisy_answer: float,
    total: float,
) -> np.ndarray:
    """A single multiplicative-weights update (used inside the MWEM plan loop)."""
    x_hat = np.clip(np.asarray(x_hat, dtype=np.float64), 1e-12, None)
    estimate = float(query_row @ x_hat)
    error = noisy_answer - estimate
    updated = x_hat * np.exp(query_row * error / (2.0 * max(total, 1e-9)))
    updated *= x_hat.sum() / updated.sum()
    return updated
