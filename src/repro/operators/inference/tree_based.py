"""Tree-based least squares for hierarchical measurements (Hay et al. 2010).

This is the *specialised* inference algorithm the paper compares against in
Fig. 5 ("Tree-based"): for measurements forming a complete ``b``-ary hierarchy
over the domain (every internal node measured once, all with equal noise), the
least-squares solution can be computed in two linear passes over the tree —
a bottom-up pass that combines each node's own measurement with the sum of its
children, and a top-down pass that redistributes the mismatch between a parent
and the sum of its children.

It is logically equivalent to ordinary least squares on the hierarchical
measurement matrix, but only applies to that special structure, which is
precisely the limitation EKTELO's generic iterative inference removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .least_squares import InferenceResult


@dataclass
class _TreeNode:
    lo: int
    hi: int  # inclusive
    noisy: float = 0.0
    weighted: float = 0.0
    children: list["_TreeNode"] = field(default_factory=list)


def _build_tree(lo: int, hi: int, branching: int) -> _TreeNode:
    node = _TreeNode(lo, hi)
    length = hi - lo + 1
    if length <= 1:
        return node
    edges = np.linspace(lo, hi + 1, branching + 1).astype(int)
    for k in range(branching):
        c_lo, c_hi = edges[k], edges[k + 1] - 1
        if c_hi >= c_lo:
            node.children.append(_build_tree(c_lo, c_hi, branching))
    return node


def hierarchical_measurements(x: np.ndarray, branching: int = 2) -> list[tuple[int, int]]:
    """Intervals measured by the tree (root included, leaves included)."""
    intervals: list[tuple[int, int]] = []

    def visit(node: _TreeNode) -> None:
        intervals.append((node.lo, node.hi))
        for child in node.children:
            visit(child)

    visit(_build_tree(0, len(x) - 1, branching))
    return intervals


def tree_based_least_squares(
    noisy_by_interval: dict[tuple[int, int], float],
    n: int,
    branching: int = 2,
) -> InferenceResult:
    """Consistency-enforcing inference for a complete hierarchy of noisy counts.

    Parameters
    ----------
    noisy_by_interval:
        Mapping from ``(lo, hi)`` inclusive intervals of the hierarchy to their
        noisy counts.  Every node of the complete ``branching``-ary hierarchy
        over ``[0, n)`` must be present.
    n:
        Domain size.
    branching:
        Branching factor of the hierarchy.
    """
    root = _build_tree(0, n - 1, branching)

    # Bottom-up: weighted combination of own measurement and children's sums.
    def upward(node: _TreeNode) -> tuple[float, int]:
        key = (node.lo, node.hi)
        if key not in noisy_by_interval:
            raise KeyError(f"missing measurement for interval {key}")
        own = noisy_by_interval[key]
        if not node.children:
            node.weighted = own
            return node.weighted, 1
        child_sum = 0.0
        height = 0
        for child in node.children:
            value, child_height = upward(child)
            child_sum += value
            height = max(height, child_height)
        b = max(len(node.children), 2)
        # Hay et al. weights: alpha = (b^h - b^(h-1)) / (b^h - 1) for height h.
        alpha = (b**height - b ** (height - 1)) / (b**height - 1) if height >= 1 else 1.0
        node.weighted = alpha * own + (1 - alpha) * child_sum
        return node.weighted, height + 1

    upward(root)

    # Top-down: redistribute the parent/children mismatch equally.
    x_hat = np.zeros(n)

    def downward(node: _TreeNode, adjusted: float) -> None:
        if not node.children:
            length = node.hi - node.lo + 1
            x_hat[node.lo : node.hi + 1] = adjusted / length
            return
        child_sum = sum(child.weighted for child in node.children)
        correction = (adjusted - child_sum) / len(node.children)
        for child in node.children:
            downward(child, child.weighted + correction)

    downward(root, root.weighted)
    return InferenceResult(x_hat, iterations=1, residual_norm=0.0)
