"""Non-negative least-squares inference (Definition 5.2).

``x̂ = argmin_{x >= 0} ||M x - y||_2`` solved with the limited-memory BFGS
algorithm with bound constraints (L-BFGS-B), exactly as the paper describes
(Sec. 7.6).  The objective and gradient only need matrix-vector products with
``M`` and ``M.T``, so implicit matrices are supported without materialisation.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ...matrix import LinearQueryMatrix, ensure_matrix
from .least_squares import InferenceResult, _apply_weights


def nnls(
    queries: LinearQueryMatrix,
    answers: np.ndarray,
    weights: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-9,
) -> InferenceResult:
    """Non-negative least-squares estimate of the data vector.

    Parameters
    ----------
    queries, answers, weights:
        As in :func:`repro.operators.inference.least_squares.least_squares`.
    x0:
        Optional warm start (defaults to a uniform vector matching the scale of
        the answers).
    """
    queries = ensure_matrix(queries)
    answers = np.asarray(answers, dtype=np.float64)
    if answers.shape != (queries.shape[0],):
        raise ValueError("answers do not match the number of queries")
    # Uniform weights are left out of the solve (same minimiser, better
    # conditioning for L-BFGS-B) and folded back into the residual units.
    queries, answers, scale = _apply_weights(queries, answers, weights)
    n = queries.shape[1]

    if x0 is None:
        # Rough scale: distribute the (pseudo) total mass uniformly.
        total_guess = max(float(np.mean(np.abs(answers))), 1.0)
        x0 = np.full(n, total_guess / max(n, 1))
    x0 = np.clip(np.asarray(x0, dtype=np.float64), 0.0, None)

    def objective(x: np.ndarray):
        residual = queries.matvec(x) - answers
        value = 0.5 * float(residual @ residual)
        gradient = queries.rmatvec(residual)
        return value, gradient

    iterations = {"count": 0}

    def callback(_x):
        iterations["count"] += 1

    result = optimize.minimize(
        objective,
        x0,
        jac=True,
        method="L-BFGS-B",
        bounds=[(0.0, None)] * n,
        callback=callback,
        options={"maxiter": max_iterations, "ftol": tolerance, "gtol": 1e-10},
    )
    x_hat = np.clip(result.x, 0.0, None)
    residual = scale * float(np.linalg.norm(queries.matvec(x_hat) - answers))
    return InferenceResult(x_hat, iterations=max(iterations["count"], 1), residual_norm=residual)


def nnls_with_total(
    queries: LinearQueryMatrix,
    answers: np.ndarray,
    total: float,
    total_weight: float = 10.0,
    weights: np.ndarray | None = None,
) -> InferenceResult:
    """NNLS with a high-confidence estimate of the total count (Sec. 9.1).

    The MWEM variants incorporate a known (or separately measured) total by
    appending the total query as an extra row with a moderately large weight (kept small
    enough that the weighted system stays well-conditioned for L-BFGS-B), which the
    paper describes as adding prior information as a "noisy" answer with
    negligible noise scale.
    """
    from ...matrix import Total
    from ...matrix.combinators import VStack

    queries = ensure_matrix(queries)
    n = queries.shape[1]
    augmented = VStack([queries, Total(n)])
    augmented_answers = np.concatenate([np.asarray(answers, dtype=np.float64), [float(total)]])
    if weights is None:
        weights = np.ones(queries.shape[0])
    augmented_weights = np.concatenate([np.asarray(weights, dtype=np.float64), [total_weight]])
    # Start from the uniform distribution at the known total: directions the
    # measurements say nothing about stay uniform (matching MWEM's prior)
    # instead of drifting to an arbitrary scale.
    x0 = np.full(n, max(float(total), 0.0) / max(n, 1))
    return nnls(augmented, augmented_answers, weights=augmented_weights, x0=x0)
