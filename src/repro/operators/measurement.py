"""Measurement (query) operators — thin functional wrappers over the kernel.

EKTELO's paper has exactly two budget-spending query operators (Sec. 5.2):
Vector Laplace for vector sources and NoisyCount for table sources.  This
reproduction adds a third, Vector Gaussian, whose noise is calibrated to the
query matrix's **L2** sensitivity and charged through the kernel's pluggable
accountant (unavailable under pure ε-DP accounting — the Gaussian mechanism
only gives ``(ε, δ)`` / zCDP guarantees).  All three live inside the
protected kernel; these wrappers exist so plan code reads like the paper's
pseudocode (``vector_laplace(x, M, eps)``) while all privacy enforcement
stays in the kernel.
"""

from __future__ import annotations

import numpy as np

from ..accounting.base import gaussian_analytic_sigma
from ..matrix import LinearQueryMatrix, ensure_matrix
from ..private.protected import ProtectedDataSource


def vector_laplace(
    source: ProtectedDataSource, queries: LinearQueryMatrix, epsilon: float
) -> np.ndarray:
    """Noisy answers ``M x + (||M||_1 / eps) * Lap(1)^m`` on a vector source."""
    return source.vector_laplace(ensure_matrix(queries), epsilon)


def vector_gaussian(
    source: ProtectedDataSource,
    queries: LinearQueryMatrix,
    epsilon: float,
    delta: float | None = None,
) -> np.ndarray:
    """Noisy answers ``M x + N(0, σ²)^m`` with σ from the kernel's accountant.

    The per-call privacy target is ``(epsilon, delta)``; ``delta=None``
    resolves to the accountant's per-measurement default.
    """
    return source.vector_gaussian(ensure_matrix(queries), epsilon, delta=delta)


def noisy_count(source: ProtectedDataSource, epsilon: float) -> float:
    """Noisy cardinality ``|D| + Lap(1/eps)`` of a table source."""
    return source.noisy_count(epsilon)


def laplace_noise_scale(queries: LinearQueryMatrix, epsilon: float) -> float:
    """The noise scale Vector Laplace will use for this measurement (public)."""
    return ensure_matrix(queries).sensitivity() / epsilon


def gaussian_noise_scale(
    queries: LinearQueryMatrix, epsilon: float, delta: float
) -> float:
    """The σ the *analytic* Gaussian mechanism uses at an ``(ε, δ)`` target.

    Public planning helper: ``||M||_2 · sqrt(2·ln(1.25/δ)) / ε``.  A zCDP
    accountant calibrates tighter (``σ = ||M||_2 / sqrt(2ρ)``); this formula
    is the accountant-independent upper bound plans can reason with.
    """
    return gaussian_analytic_sigma(ensure_matrix(queries).sensitivity_l2(), epsilon, delta)
