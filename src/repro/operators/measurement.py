"""Measurement (query) operators — thin functional wrappers over the kernel.

EKTELO has exactly two budget-spending query operators (Sec. 5.2): Vector
Laplace for vector sources and NoisyCount for table sources.  Both live inside
the protected kernel; these wrappers exist so plan code reads like the paper's
pseudocode (``vector_laplace(x, M, eps)``) while all privacy enforcement stays
in the kernel.
"""

from __future__ import annotations

import numpy as np

from ..matrix import LinearQueryMatrix, ensure_matrix
from ..private.protected import ProtectedDataSource


def vector_laplace(
    source: ProtectedDataSource, queries: LinearQueryMatrix, epsilon: float
) -> np.ndarray:
    """Noisy answers ``M x + (||M||_1 / eps) * Lap(1)^m`` on a vector source."""
    return source.vector_laplace(ensure_matrix(queries), epsilon)


def noisy_count(source: ProtectedDataSource, epsilon: float) -> float:
    """Noisy cardinality ``|D| + Lap(1/eps)`` of a table source."""
    return source.noisy_count(epsilon)


def laplace_noise_scale(queries: LinearQueryMatrix, epsilon: float) -> float:
    """The noise scale Vector Laplace will use for this measurement (public)."""
    return ensure_matrix(queries).sensitivity() / epsilon
