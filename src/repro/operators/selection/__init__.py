"""Query-selection operators: choose which measurement matrix to ask."""

from .hdmm import classify_workload_factor, expected_total_error, hdmm_select, optimise_dimension
from .hierarchical import (
    adaptive_grid_select,
    greedy_h_select,
    quadtree_select,
    uniform_grid_select,
)
from .privbayes import (
    mutual_information_score,
    privbayes_select,
    privbayes_synthetic_distribution,
)
from .simple import (
    h2_select,
    hb_select,
    identity_select,
    prefix_select,
    total_select,
    wavelet_select,
)
from .stripe import stripe_kron_select
from .worst_approx import augment_with_hierarchy, worst_approximated

__all__ = [
    "identity_select",
    "total_select",
    "prefix_select",
    "wavelet_select",
    "h2_select",
    "hb_select",
    "greedy_h_select",
    "quadtree_select",
    "uniform_grid_select",
    "adaptive_grid_select",
    "hdmm_select",
    "optimise_dimension",
    "expected_total_error",
    "classify_workload_factor",
    "stripe_kron_select",
    "worst_approximated",
    "augment_with_hierarchy",
    "privbayes_select",
    "privbayes_synthetic_distribution",
    "mutual_information_score",
]
