"""Simplified PrivBayes query selection (the SPB operator, Plans #17 and PrivBayes).

PrivBayes (Zhang et al. 2017) privately learns a Bayesian network over the
attributes and then measures the sufficient statistics (low-dimensional
marginals) needed to fit its conditional distributions.  EKTELO wraps the
network-construction step as a Private→Public query-selection operator whose
output is a union of marginal measurement matrices.

This reproduction keeps the structure of the original:

1. attributes are added to the network one at a time (seeded random order of
   the remaining attributes is broken by the exponential mechanism),
2. for each new attribute, a parent set of bounded size is chosen by the
   exponential mechanism with (empirical) mutual information as the score,
3. the returned measurement matrix is the union of the marginals over each
   attribute together with its parents.

The mutual-information score is computed on the private vector inside the
kernel's exponential-mechanism primitive, so the budget accounting is handled
by the kernel.  The score sensitivity uses the PrivBayes bound
``(2/N) * log2(N) + (2/N)`` with ``N`` the (publicly provided or noisily
estimated) dataset size.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from ...matrix import LinearQueryMatrix, VStack, marginal
from ...private.protected import ProtectedDataSource


def _mutual_information(joint: np.ndarray) -> float:
    """Mutual information (in bits) of a 2-D joint count table."""
    total = joint.sum()
    if total <= 0:
        return 0.0
    p_joint = joint / total
    p_row = p_joint.sum(axis=1, keepdims=True)
    p_col = p_joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(p_joint > 0, p_joint / (p_row @ p_col), 1.0)
        terms = np.where(p_joint > 0, p_joint * np.log2(ratio), 0.0)
    return float(terms.sum())


def _marginal_table(x: np.ndarray, domain: Sequence[int], axes: Sequence[int]) -> np.ndarray:
    """Marginal count table of the full-domain vector over the given axes."""
    tensor = np.asarray(x, dtype=np.float64).reshape(tuple(domain))
    drop = tuple(a for a in range(len(domain)) if a not in set(axes))
    table = tensor.sum(axis=drop) if drop else tensor
    # Reorder surviving axes to the order requested.
    kept = [a for a in range(len(domain)) if a in set(axes)]
    order = [kept.index(a) for a in axes]
    return np.transpose(table, order)


def mutual_information_score(
    x: np.ndarray, domain: Sequence[int], attribute: int, parents: Sequence[int]
) -> float:
    """MI between ``attribute`` and the joint of ``parents`` on the vector ``x``."""
    if not parents:
        return 0.0
    axes = [attribute, *parents]
    table = _marginal_table(x, domain, axes)
    flat = table.reshape(table.shape[0], -1)
    return _mutual_information(flat)


def privbayes_select(
    source: ProtectedDataSource,
    domain: Sequence[int],
    epsilon: float,
    max_parents: int = 2,
    total_records: float | None = None,
    seed: int = 0,
) -> tuple[LinearQueryMatrix, list[tuple[int, tuple[int, ...]]]]:
    """Privately construct a Bayes net and return its marginal measurement matrix.

    Parameters
    ----------
    source:
        Protected handle to the *vectorised* table (full-domain vector).
    domain:
        Per-attribute domain sizes (public metadata).
    epsilon:
        Budget for the network construction (split evenly across attributes).
    max_parents:
        Maximum parent-set size of each node.
    total_records:
        Public or separately estimated dataset size, used in the MI score
        sensitivity; defaults to a conservative 1,000.
    seed:
        Seed of the (public) attribute ordering.

    Returns
    -------
    (measurements, network):
        ``measurements`` is the union of marginal matrices to pass to Vector
        Laplace; ``network`` lists ``(attribute, parents)`` pairs.
    """
    num_attributes = len(domain)
    if num_attributes == 0:
        raise ValueError("domain must have at least one attribute")
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(num_attributes))
    total_records = float(total_records or 1_000.0)
    score_sensitivity = (2.0 / total_records) * (np.log2(max(total_records, 2.0)) + 1.0)

    per_choice_epsilon = epsilon / max(num_attributes - 1, 1)
    network: list[tuple[int, tuple[int, ...]]] = [(order[0], tuple())]
    chosen: list[int] = [order[0]]

    for attribute in order[1:]:
        candidates: list[tuple[int, ...]] = []
        for size in range(1, min(max_parents, len(chosen)) + 1):
            candidates.extend(combinations(chosen, size))
        if not candidates:
            network.append((attribute, tuple()))
            chosen.append(attribute)
            continue

        def scores(x: np.ndarray, attribute=attribute, candidates=candidates) -> np.ndarray:
            return np.array(
                [
                    mutual_information_score(x, domain, attribute, parents)
                    for parents in candidates
                ]
            )

        index = source.exponential_mechanism(
            scores,
            num_candidates=len(candidates),
            epsilon=per_choice_epsilon,
            score_sensitivity=score_sensitivity,
        )
        network.append((attribute, tuple(candidates[index])))
        chosen.append(attribute)

    parts = []
    for attribute, parents in network:
        keep = (attribute, *parents)
        parts.append(marginal(domain, keep))
    measurements = parts[0] if len(parts) == 1 else VStack(parts)
    return measurements, network


def privbayes_synthetic_distribution(
    network: list[tuple[int, tuple[int, ...]]],
    marginal_estimates: dict[tuple[int, ...], np.ndarray],
    domain: Sequence[int],
) -> np.ndarray:
    """Combine estimated marginals into a full-domain distribution via the Bayes net.

    This reproduces PrivBayes' synthetic-data step in distribution form: the
    joint is the product of each attribute's conditional given its parents,
    estimated from the (noisy, non-negative, normalised) marginal tables.  The
    result is a probability vector over the full domain; multiply by the total
    count to compare with data vectors.
    """
    num_attributes = len(domain)
    joint = np.ones(tuple(domain), dtype=np.float64)
    for attribute, parents in network:
        keep = (attribute, *parents)
        # Marginal tables (as produced by `marginal(domain, keep)`) are laid out
        # in ascending attribute order, regardless of the order of `keep`.
        ordered_axes = sorted(keep)
        table = np.clip(np.asarray(marginal_estimates[keep], dtype=np.float64), 0.0, None)
        table = table.reshape(tuple(domain[a] for a in ordered_axes))
        attribute_axis = ordered_axes.index(attribute)
        if parents:
            parent_totals = table.sum(axis=attribute_axis, keepdims=True)
            conditional = np.full_like(table, 1.0 / domain[attribute])
            np.divide(table, parent_totals, out=conditional, where=parent_totals > 0)
        else:
            total = table.sum()
            conditional = table / total if total > 0 else np.full_like(table, 1.0 / table.size)
        broadcast_shape = tuple(
            domain[a] if a in set(keep) else 1 for a in range(num_attributes)
        )
        joint = joint * conditional.reshape(broadcast_shape)
    total_mass = joint.sum()
    if total_mass > 0:
        joint /= total_mass
    return joint.ravel()
