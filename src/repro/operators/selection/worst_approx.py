"""Worst-approximated query selection (the MWEM selection operator).

A Private→Public operator: it consults the private data (through the protected
kernel's exponential mechanism) to choose the workload query whose current
estimate is worst, i.e. the query maximising ``|q·x - q·x̂|``.

The augmented variant (used by MWEM variant b / d, Sec. 9.1) additionally
returns non-overlapping interval queries that can be measured "for free" under
parallel composition, building up a binary hierarchy across MWEM rounds.
"""

from __future__ import annotations

import numpy as np

from ...matrix import LinearQueryMatrix, RangeQueries, VStack, ensure_matrix
from ...private.protected import ProtectedDataSource


def worst_approximated(
    source: ProtectedDataSource,
    workload: LinearQueryMatrix,
    x_estimate: np.ndarray,
    epsilon: float,
) -> tuple[int, np.ndarray]:
    """Select the workload query worst approximated by ``x_estimate``.

    Returns the selected query's index and its dense row.  Consumes ``epsilon``
    of the budget through the kernel's exponential mechanism; the score
    sensitivity is 1 for counting queries with coefficients in [0, 1].
    """
    workload = ensure_matrix(workload)
    x_estimate = np.asarray(x_estimate, dtype=np.float64)
    estimate_answers = workload.matvec(x_estimate)

    def scores(x: np.ndarray) -> np.ndarray:
        return np.abs(workload.matvec(x) - estimate_answers)

    index = source.exponential_mechanism(
        scores, num_candidates=workload.shape[0], epsilon=epsilon, score_sensitivity=1.0
    )
    return index, workload.row(index)


def _row_support(row: np.ndarray) -> tuple[int, int]:
    """Smallest and largest index with a non-zero coefficient in the query row."""
    nonzero = np.nonzero(row)[0]
    if nonzero.size == 0:
        return 0, -1
    return int(nonzero[0]), int(nonzero[-1])


def augment_with_hierarchy(
    selected_row: np.ndarray, round_index: int, n: int
) -> LinearQueryMatrix:
    """MWEM variant b's augmented selection (Sec. 9.1).

    Starting from the selected query, add disjoint interval queries that do not
    intersect its support: length-``2^round_index`` intervals tiling the rest
    of the domain.  Because all returned queries are disjoint, measuring the
    whole set costs the same budget as measuring the single selected query
    (parallel composition within one Vector Laplace call: sensitivity stays 1).
    """
    selected_row = np.asarray(selected_row, dtype=np.float64)
    lo, hi = _row_support(selected_row)
    length = max(1, 2 ** max(round_index, 0))
    intervals: list[tuple[int, int]] = []
    position = 0
    while position < n:
        end = min(position + length - 1, n - 1)
        # Skip intervals overlapping the selected query's support.
        if hi < lo or end < lo or position > hi:
            intervals.append((position, end))
        position = end + 1

    from ...matrix.dense import DenseMatrix

    selected = DenseMatrix(selected_row.reshape(1, -1))
    if not intervals:
        return selected
    return VStack([selected, RangeQueries(n, intervals)])
