"""Data-independent query-selection operators with fixed strategies.

These operators depend only on public information (the domain size), so they
are Public operators in EKTELO's classification.  Each returns a measurement
matrix to be passed to Vector Laplace.
"""

from __future__ import annotations

import numpy as np

from ...matrix import (
    HaarWavelet,
    HierarchicalQueries,
    Identity,
    LinearQueryMatrix,
    Prefix,
    Total,
    optimal_branching_factor,
)


def identity_select(n: int) -> LinearQueryMatrix:
    """Identity strategy: measure every cell of the data vector (Plan #1)."""
    return Identity(n)


def total_select(n: int) -> LinearQueryMatrix:
    """Total strategy: measure only the overall count (the Uniform plan, #6)."""
    return Total(n)


def prefix_select(n: int) -> LinearQueryMatrix:
    """Prefix (empirical CDF) strategy: all prefix sums of the domain."""
    return Prefix(n)


def wavelet_select(n: int) -> LinearQueryMatrix:
    """Privelet strategy: the Haar wavelet transform (Plan #2).

    The domain is implicitly padded to the next power of two by callers when
    needed; here we require a power-of-two domain and raise otherwise, keeping
    the operator a faithful transcription of the Privelet measurement set.
    """
    padded = 1 << int(np.ceil(np.log2(max(n, 1))))
    if padded != n:
        raise ValueError(
            f"wavelet selection requires a power-of-two domain (got {n}); "
            "pad the data vector or use h2_select instead"
        )
    return HaarWavelet(n)


def h2_select(n: int) -> LinearQueryMatrix:
    """H2 strategy: a binary hierarchy of interval counts plus unit counts (Plan #3)."""
    return HierarchicalQueries(n, branching=2)


def hb_select(n: int) -> LinearQueryMatrix:
    """HB strategy: a hierarchy with the branching factor optimised for ``n`` (Plan #4)."""
    return HierarchicalQueries(n, branching=optimal_branching_factor(n))
