"""Stripe query selection for high-dimensional domains (Sec. 9.2, Plan #16).

``HB-Striped_kron`` replaces the explicit partition-and-iterate formulation of
HB-Striped with a single Kronecker-product measurement matrix: an HB hierarchy
on the stripe attribute and Identity on every other attribute.  The resulting
matrix measures exactly the same set of queries — all one-dimensional HB
measurements within every stripe — but as one compact implicit matrix.
"""

from __future__ import annotations

from typing import Sequence

from ...matrix import (
    HierarchicalQueries,
    Identity,
    Kronecker,
    LinearQueryMatrix,
    optimal_branching_factor,
)


def stripe_kron_select(
    domain: Sequence[int], stripe_axis: int, branching: int | None = None
) -> LinearQueryMatrix:
    """Kronecker measurement matrix for the striped-HB strategy.

    Parameters
    ----------
    domain:
        Per-attribute domain sizes of the vectorised table.
    stripe_axis:
        Index of the attribute along which one-dimensional hierarchies are
        measured (``Income`` in the paper's census case study).
    branching:
        Branching factor of the hierarchy; defaults to HB's optimised value.
    """
    if not 0 <= stripe_axis < len(domain):
        raise ValueError("stripe_axis outside the domain")
    factors: list[LinearQueryMatrix] = []
    for axis, size in enumerate(domain):
        if axis == stripe_axis:
            b = branching or optimal_branching_factor(size)
            factors.append(HierarchicalQueries(size, branching=b))
        else:
            factors.append(Identity(size))
    return Kronecker(factors)
