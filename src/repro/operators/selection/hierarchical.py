"""Workload-adaptive hierarchical query selection (Greedy-H) and 2-D strategies.

Greedy-H (from the DAWA paper, Li et al. 2014) builds a binary hierarchy whose
per-level measurement weights are tuned to the workload: levels whose
intervals are used by many workload queries receive more budget.  We implement
the standard decomposition of each workload range into canonical dyadic
intervals and allocate weights proportional to the cube root of usage, the
optimal allocation for independent Laplace measurements combined by least
squares.

The 2-D strategies (Quadtree, UniformGrid, AdaptiveGrid) follow Cormode et al.
2012 and Qardaji et al. 2013.
"""

from __future__ import annotations

import numpy as np

from ...matrix import (
    Identity,
    LinearQueryMatrix,
    RangeQueries,
    RangeQueries2D,
    VStack,
    Weighted,
    quadtree_rects,
)
from ...matrix.ranges import hierarchical_intervals


def _dyadic_decomposition(lo: int, hi: int, n: int) -> list[tuple[int, int]]:
    """Decompose the inclusive range [lo, hi] into maximal dyadic intervals."""
    pieces = []
    position = lo
    while position <= hi:
        # Largest power-of-two block aligned at `position` and fitting in the range.
        size = position & -position if position > 0 else n
        while position + size - 1 > hi or size > n:
            size //= 2
        size = max(size, 1)
        pieces.append((position, position + size - 1))
        position += size
    return pieces


def greedy_h_select(
    n: int, workload_intervals: list[tuple[int, int]] | None = None
) -> LinearQueryMatrix:
    """Greedy-H: a binary hierarchy with workload-tuned per-level weights (Plan #5).

    Parameters
    ----------
    n:
        Domain size.
    workload_intervals:
        The ``(lo, hi)`` ranges of the target workload.  If omitted, all range
        queries are assumed equally likely and the weights fall back to the
        H2-style uniform allocation.
    """
    levels: dict[int, list[tuple[int, int]]] = {}
    for lo, hi in hierarchical_intervals(n, branching=2):
        length = hi - lo + 1
        levels.setdefault(length, []).append((lo, hi))

    level_sizes = sorted(levels, reverse=True)
    usage = {size: 1.0 for size in level_sizes}
    usage[1] = 1.0  # unit-count level (the Identity part)

    if workload_intervals:
        for size in usage:
            usage[size] = 0.0
        for lo, hi in workload_intervals:
            for d_lo, d_hi in _dyadic_decomposition(lo, hi, n):
                usage[d_hi - d_lo + 1] = usage.get(d_hi - d_lo + 1, 0.0) + 1.0
        for size in list(usage):
            usage[size] = max(usage[size], 1e-3)

    # Optimal budget split across independent levels ~ usage^(1/3); weights are
    # normalised so the strategy's sensitivity stays comparable to H2's.
    weights = {size: float(value) ** (1.0 / 3.0) for size, value in usage.items()}
    mean_weight = np.mean(list(weights.values()))
    weights = {size: value / mean_weight for size, value in weights.items()}

    parts: list[LinearQueryMatrix] = [Weighted(Identity(n), weights.get(1, 1.0))]
    for size in level_sizes:
        intervals = levels[size]
        parts.append(Weighted(RangeQueries(n, intervals), weights.get(size, 1.0)))
    return VStack(parts)


def quadtree_select(rows: int, cols: int, min_size: int = 1) -> LinearQueryMatrix:
    """Quadtree strategy over a 2-D domain (Plan #10)."""
    return RangeQueries2D(rows, cols, quadtree_rects(rows, cols, min_size=min_size))


def uniform_grid_select(
    rows: int, cols: int, total_estimate: float, epsilon: float, c: float = 10.0
) -> LinearQueryMatrix:
    """UniformGrid strategy (Plan #11): one flat grid of block counts.

    The grid granularity follows Qardaji et al.: the number of blocks per axis
    is ``sqrt(N * eps / c)``, clipped to the domain.
    """
    blocks_per_axis = int(np.sqrt(max(total_estimate, 1.0) * epsilon / c))
    blocks_per_axis = int(np.clip(blocks_per_axis, 1, min(rows, cols)))
    cell_rows = int(np.ceil(rows / blocks_per_axis))
    cell_cols = int(np.ceil(cols / blocks_per_axis))
    rects = []
    for r in range(0, rows, cell_rows):
        for c_lo in range(0, cols, cell_cols):
            rects.append((r, min(r + cell_rows, rows) - 1, c_lo, min(c_lo + cell_cols, cols) - 1))
    return RangeQueries2D(rows, cols, rects)


def adaptive_grid_select(
    region: tuple[int, int, int, int],
    rows: int,
    cols: int,
    noisy_region_count: float,
    epsilon: float,
    c2: float = 5.0,
) -> LinearQueryMatrix | None:
    """AdaptiveGrid second-level strategy for one first-level region (Plan #12).

    Given the noisy count of a coarse region, choose the granularity of the
    finer grid inside it (``sqrt(count * eps / c2)`` blocks per axis).  Returns
    ``None`` when the region is too sparse to warrant further measurement —
    the caller then keeps the coarse estimate.
    """
    r_lo, r_hi, c_lo, c_hi = region
    height = r_hi - r_lo + 1
    width = c_hi - c_lo + 1
    blocks = int(np.sqrt(max(noisy_region_count, 0.0) * epsilon / c2))
    if blocks <= 1:
        return None
    blocks = min(blocks, min(height, width))
    cell_rows = int(np.ceil(height / blocks))
    cell_cols = int(np.ceil(width / blocks))
    rects = []
    for r in range(r_lo, r_hi + 1, cell_rows):
        for c in range(c_lo, c_hi + 1, cell_cols):
            rects.append((r, min(r + cell_rows - 1, r_hi), c, min(c + cell_cols - 1, c_hi)))
    return RangeQueries2D(rows, cols, rects)
