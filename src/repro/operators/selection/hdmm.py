"""Simplified HDMM-style query selection (Plan #13).

The High-Dimensional Matrix Mechanism (McKenna et al. 2018) optimises a
measurement strategy for a workload expressed as (unions of) Kronecker
products, optimising each dimension's strategy separately and combining the
results with Kronecker products.

Full HDMM solves a non-convex optimisation over "p-Identity" strategy
parameterisations.  This reproduction keeps the architecture — per-dimension
strategy choice, Kronecker combination, sensitivity-aware scoring — but
selects each dimension's strategy from a small candidate set (Identity,
Total+Identity, H2, HB, Wavelet) by exact expected-error computation when the
per-dimension domain is small and by structural heuristics otherwise.  The
substitution is documented in DESIGN.md; the operator still adapts to the
workload and scales through implicit matrices, which is what the paper's
evaluation exercises.
"""

from __future__ import annotations

import numpy as np

from ...matrix import (
    HaarWavelet,
    HierarchicalQueries,
    Identity,
    Kronecker,
    LinearQueryMatrix,
    Total,
    VStack,
    ensure_matrix,
    optimal_branching_factor,
)

#: Per-dimension domains above this size skip the exact expected-error scoring.
_EXACT_LIMIT = 1024


def _candidate_strategies(n: int) -> dict[str, LinearQueryMatrix]:
    candidates: dict[str, LinearQueryMatrix] = {
        "identity": Identity(n),
        "total+identity": VStack([Total(n), Identity(n)]),
        "h2": HierarchicalQueries(n, branching=2),
        "hb": HierarchicalQueries(n, branching=optimal_branching_factor(n)),
    }
    if n >= 2 and (n & (n - 1)) == 0:
        candidates["wavelet"] = HaarWavelet(n)
    return candidates


def expected_total_error(workload: LinearQueryMatrix, strategy: LinearQueryMatrix) -> float:
    """Expected total squared error of answering ``workload`` via ``strategy``.

    Uses the matrix-mechanism error formula ``||A||_1^2 * trace(W (A^T A)^+ W^T)``
    (Li et al. 2015), computed densely — only called for small domains.
    """
    W = ensure_matrix(workload).dense()
    A = ensure_matrix(strategy).dense()
    gram = A.T @ A
    pinv = np.linalg.pinv(gram)
    # If the strategy does not support the workload, the error is infinite.
    projection = W @ pinv @ gram
    if not np.allclose(projection, W, atol=1e-6):
        return float("inf")
    sensitivity = float(np.abs(A).sum(axis=0).max())
    return sensitivity**2 * float(np.trace(W @ pinv @ W.T))


def _score_heuristic(name: str, workload_kind: str) -> float:
    """Cheap strategy ranking when the domain is too large for exact scoring."""
    preference = {
        "total": ["total+identity", "identity", "hb", "h2", "wavelet"],
        "identity": ["identity", "total+identity", "hb", "h2", "wavelet"],
        "range": ["hb", "h2", "wavelet", "total+identity", "identity"],
        "prefix": ["hb", "h2", "wavelet", "total+identity", "identity"],
        "unknown": ["hb", "identity", "h2", "total+identity", "wavelet"],
    }[workload_kind]
    return float(preference.index(name)) if name in preference else float(len(preference))


def classify_workload_factor(factor: LinearQueryMatrix) -> str:
    """Structural classification of a per-dimension workload factor."""
    from ...matrix.core import Identity as IdentityCore
    from ...matrix.core import Ones, Prefix, Suffix, Total as TotalCore
    from ...matrix.ranges import RangeQueries

    if isinstance(factor, (TotalCore, Ones)):
        return "total"
    if isinstance(factor, IdentityCore):
        return "identity"
    if isinstance(factor, (Prefix, Suffix)):
        return "prefix"
    if isinstance(factor, RangeQueries):
        return "range"
    return "unknown"


def optimise_dimension(factor: LinearQueryMatrix) -> LinearQueryMatrix:
    """Choose a measurement strategy for one dimension of the workload."""
    n = factor.shape[1]
    candidates = _candidate_strategies(n)
    if n <= _EXACT_LIMIT:
        scores = {
            name: expected_total_error(factor, strategy) for name, strategy in candidates.items()
        }
        best = min(scores, key=scores.get)
        return candidates[best]
    kind = classify_workload_factor(factor)
    ranked = sorted(candidates, key=lambda name: _score_heuristic(name, kind))
    return candidates[ranked[0]]


def hdmm_select(workload: LinearQueryMatrix) -> LinearQueryMatrix:
    """HDMM-style strategy selection for a workload.

    If the workload is a Kronecker product (or a union of Kronecker products
    sharing the same factor shapes), each dimension is optimised independently
    and the per-dimension strategies are recombined with a Kronecker product.
    Otherwise the workload is treated as one-dimensional.
    """
    workload = ensure_matrix(workload)
    if isinstance(workload, Kronecker):
        return Kronecker([optimise_dimension(factor) for factor in workload.factors])
    if isinstance(workload, VStack):
        kron_parts = [m for m in workload.matrices if isinstance(m, Kronecker)]
        if kron_parts and len(kron_parts) == len(workload.matrices):
            num_dims = len(kron_parts[0].factors)
            if all(len(part.factors) == num_dims for part in kron_parts):
                strategies = []
                for dim in range(num_dims):
                    factors = [part.factors[dim] for part in kron_parts]
                    stacked = factors[0] if len(factors) == 1 else VStack(factors)
                    strategies.append(optimise_dimension(stacked))
                return Kronecker(strategies)
    return optimise_dimension(workload)
