"""Injectable monotonic clocks for the telemetry subsystem.

All timing in :mod:`repro.telemetry` flows through a *clock*: any zero-argument
callable returning monotonically non-decreasing seconds.  The default is
:func:`time.perf_counter`; tests inject a :class:`ManualClock` so span
durations, histogram observations and burn rates are exact and deterministic.
"""

from __future__ import annotations

import time
from typing import Callable

#: A clock is any ``() -> float`` returning monotonic seconds.
Clock = Callable[[], float]

#: The production default.
DEFAULT_CLOCK: Clock = time.perf_counter


class ManualClock:
    """A clock advanced explicitly by the caller (for deterministic tests).

    ``tick`` is added on every *read*, so code that brackets work with two
    reads sees a fixed, predictable duration; :meth:`advance` jumps the clock
    between operations.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0):
        self.now = float(start)
        self.tick = float(tick)

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self.now += seconds
