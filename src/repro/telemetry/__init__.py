"""Operator-level observability: tracing, metrics, privacy-spend odometer.

The paper's thesis is that every private computation is a *plan* — a
composition of operators with predictable cost and error.  This package makes
the composition observable at runtime without touching plan logic:

* :class:`Tracer` / :func:`trace_span` — hierarchical spans (request → plan
  stage → kernel measurement → solver call) with a thread-local context, so
  instrumented seams nest automatically and concurrent requests never mix.
  The default is the no-op :data:`NULL_TRACER`; the service activates a real
  tracer per request when the operator opts in.
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket histograms
  (p50/p95/p99 from buckets), aggregated across requests per tenant, plus a
  privacy-spend odometer (cumulative ε/ρ and burn rate per tenant per plan).
* :mod:`~repro.telemetry.exporters` — JSON-lines span dumps, Chrome
  ``chrome://tracing`` trace-event files, Prometheus text exposition.
* :class:`TraceContext` / :meth:`Tracer.adopt <repro.telemetry.spans.Tracer.adopt>`
  — distributed tracing across executor worker processes: a picklable trace
  position ships with each remote plan job, the worker records spans on a
  private tracer, and the driver adopts them into the live trace so one span
  tree covers every backend identically.
* :class:`FlightRecorder` — a bounded ring of recent spans and request
  outcomes that dumps a postmortem bundle on failures and breaker trips.
* :class:`SloEngine` / :class:`SloSpec` — declarative latency, error-rate and
  privacy-burn objectives with multi-window burn-rate alerting over the
  registry.

Everything is dependency-free and clock-injectable (see
:mod:`~repro.telemetry.clock`), so tests run deterministically and the
disabled path stays near-zero overhead.

Typical service usage::

    from repro.service import PlanScheduler, SessionManager
    from repro.telemetry import Tracer, write_chrome_trace

    scheduler = PlanScheduler(manager, tracer=Tracer())
    response = scheduler.execute(request)
    write_chrome_trace(scheduler.tracer.trace(response.trace_id), "trace.json")
"""

from .clock import DEFAULT_CLOCK, Clock, ManualClock
from .context import TraceContext, current_context
from .exporters import (
    prometheus_text,
    spans_to_chrome_trace,
    spans_to_jsonlines,
    write_chrome_trace,
    write_jsonlines,
    write_prometheus,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .recorder import FlightRecorder
from .slo import DEFAULT_WINDOWS, BurnWindow, SloEngine, SloSpec, default_slos
from .spans import (
    NOOP_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanHandle,
    Tracer,
    activate,
    current_tracer,
    trace_span,
)

__all__ = [
    "TraceContext",
    "current_context",
    "FlightRecorder",
    "SloSpec",
    "SloEngine",
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "default_slos",
    "Clock",
    "DEFAULT_CLOCK",
    "ManualClock",
    "Span",
    "SpanHandle",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NOOP_SPAN",
    "current_tracer",
    "activate",
    "trace_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "spans_to_jsonlines",
    "write_jsonlines",
    "spans_to_chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]
