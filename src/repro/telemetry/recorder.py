"""Flight recorder: bounded postmortem capture of spans and request outcomes.

A :class:`FlightRecorder` rides along with a scheduler and keeps two ring
buffers — the most recently finished spans (fed by
:meth:`~repro.telemetry.spans.Tracer.add_listener`) and the most recent
request outcomes.  When something goes wrong — a request fails, a circuit
breaker opens, a :class:`~repro.durability.faults.FaultInjector` kills a
worker — :meth:`dump` freezes everything into a **postmortem bundle**:

* ``spans.jsonl`` — the span ring as JSON lines (greppable),
* ``trace.json`` — the same spans as a Chrome/Perfetto trace document,
* ``metrics.json`` — a full metrics-registry snapshot (odometer included),
* ``state.json`` — the trigger reason/context plus breaker and admission
  stats and the recent request outcomes.

Bundles are written under ``directory/postmortem-<seq>-<reason>/`` when a
directory is configured, and always kept in the bounded in-memory
:attr:`bundles` list so tests and REPL debugging need no filesystem.  The
recorder is deliberately passive: it never raises out of ``dump`` into the
failing request path (a broken disk must not turn a shed request into a
crashed scheduler), and ring-buffer appends are O(1) deque operations cheap
enough for the hot path.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path

from .clock import DEFAULT_CLOCK, Clock
from .exporters import spans_to_chrome_trace, spans_to_jsonlines
from .spans import Span

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of spans + outcomes with postmortem dumps."""

    def __init__(
        self,
        max_spans: int = 2048,
        max_outcomes: int = 256,
        max_bundles: int = 16,
        directory: str | Path | None = None,
        clock: Clock | None = None,
    ):
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._outcomes: deque[dict] = deque(maxlen=max_outcomes)
        self._sequence = 0
        self.directory = Path(directory) if directory is not None else None
        #: Recent postmortem bundles (newest last), bounded by ``max_bundles``.
        self.bundles: deque[dict] = deque(maxlen=max_bundles)
        #: Paths of bundles written to disk (unbounded — they are just strings).
        self.bundle_paths: list[Path] = []

    # ------------------------------------------------------------------
    # Hot-path feeds.
    # ------------------------------------------------------------------
    def record_span(self, span: Span) -> None:
        """Tracer listener hook: remember a finished span."""
        with self._lock:
            self._spans.append(span)

    def record_outcome(self, outcome: dict) -> None:
        """Remember one request's outcome summary (plan, tenant, status...)."""
        with self._lock:
            self._outcomes.append(dict(outcome))

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def outcomes(self) -> list[dict]:
        with self._lock:
            return [dict(outcome) for outcome in self._outcomes]

    # ------------------------------------------------------------------
    # Postmortem.
    # ------------------------------------------------------------------
    def dump(
        self,
        reason: str,
        scheduler=None,
        context: dict | None = None,
    ) -> dict:
        """Freeze the rings into a postmortem bundle and (maybe) write it.

        ``scheduler`` is duck-typed: when given, the bundle includes its
        metrics snapshot and breaker/admission stats.  Never raises — a
        postmortem that cannot be written is reported inside the bundle
        rather than allowed to take down the failing request's handler.
        """
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
            spans = list(self._spans)
            outcomes = [dict(outcome) for outcome in self._outcomes]
        state: dict = {
            "reason": reason,
            "sequence": sequence,
            "time": self._clock(),
            "context": dict(context) if context else {},
            "outcomes": outcomes,
        }
        metrics_snapshot: dict = {}
        if scheduler is not None:
            metrics = getattr(scheduler, "metrics", None)
            if metrics is not None:
                try:
                    metrics_snapshot = metrics.snapshot()
                except Exception as exc:  # pragma: no cover - defensive
                    metrics_snapshot = {"error": repr(exc)}
            breaker = getattr(scheduler, "breaker", None)
            if breaker is not None:
                state["breaker"] = breaker.stats
            admission = getattr(scheduler, "admission", None)
            if admission is not None:
                state["admission"] = admission.stats
        bundle = {
            "reason": reason,
            "sequence": sequence,
            "context": state["context"],
            "spans": [span.to_dict() for span in spans],
            "outcomes": outcomes,
            "metrics": metrics_snapshot,
            "state": state,
            "chrome_trace": spans_to_chrome_trace(spans),
            "path": None,
        }
        if self.directory is not None:
            try:
                bundle["path"] = str(
                    self._write_bundle(reason, sequence, spans, bundle)
                )
            except OSError as exc:
                bundle["write_error"] = repr(exc)
        self.bundles.append(bundle)
        return bundle

    def _write_bundle(
        self, reason: str, sequence: int, spans: list[Span], bundle: dict
    ) -> Path:
        slug = "".join(ch if (ch.isalnum() or ch in "-_") else "-" for ch in reason)
        target = self.directory / f"postmortem-{sequence:04d}-{slug}"
        target.mkdir(parents=True, exist_ok=True)
        content = spans_to_jsonlines(spans)
        (target / "spans.jsonl").write_text(content + ("\n" if content else ""))
        (target / "trace.json").write_text(
            json.dumps(bundle["chrome_trace"], indent=2, default=float) + "\n"
        )
        (target / "metrics.json").write_text(
            json.dumps(bundle["metrics"], indent=2, sort_keys=True, default=float) + "\n"
        )
        (target / "state.json").write_text(
            json.dumps(bundle["state"], indent=2, sort_keys=True, default=float) + "\n"
        )
        self.bundle_paths.append(target)
        return target
