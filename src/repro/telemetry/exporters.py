"""Exporters: JSON-lines spans, Chrome trace-event files, Prometheus text.

Three operator-facing serialisations of the in-memory telemetry:

* :func:`spans_to_jsonlines` — one JSON object per finished span, ordered by
  start time; greppable, ingestible by any log pipeline.
* :func:`spans_to_chrome_trace` — the Chrome ``chrome://tracing`` /
  Perfetto trace-event JSON format (``"X"`` complete events, microsecond
  timestamps, one lane per thread), so a service request renders as a flame
  graph of plan stages, kernel measurements and solver calls.
* :func:`prometheus_text` — the Prometheus text exposition format over a
  :class:`~repro.telemetry.metrics.MetricsRegistry` (counters as ``_total``,
  histograms as cumulative ``_bucket{le=...}`` series).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Sequence

from .metrics import MetricsRegistry
from .spans import Span

__all__ = [
    "spans_to_jsonlines",
    "write_jsonlines",
    "spans_to_chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]


# ----------------------------------------------------------------------------
# JSON lines.
# ----------------------------------------------------------------------------
def spans_to_jsonlines(spans: Iterable[Span]) -> str:
    """Serialise spans to newline-delimited JSON, ordered by start time."""
    ordered = sorted(spans, key=lambda span: (span.start, span.span_id))
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True, default=float) for span in ordered)


def write_jsonlines(spans: Iterable[Span], path: str | Path) -> Path:
    path = Path(path)
    content = spans_to_jsonlines(spans)
    path.write_text(content + ("\n" if content else ""))
    return path


# ----------------------------------------------------------------------------
# Chrome trace-event format.
# ----------------------------------------------------------------------------
def spans_to_chrome_trace(spans: Sequence[Span], process_name: str = "repro.service") -> dict:
    """Build a Chrome/Perfetto trace-event document from finished spans.

    Timestamps are rebased to the earliest span start (the viewer expects
    small positive microsecond offsets, not raw ``perf_counter`` values) and
    each thread gets a named lane, so concurrent requests on scheduler
    workers show up side by side.
    """
    spans = sorted(spans, key=lambda span: (span.start, span.span_id))
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    base = spans[0].start if spans else 0.0
    thread_ids: dict[str, int] = {}
    for span in spans:
        tid = thread_ids.get(span.thread)
        if tid is None:
            tid = thread_ids[span.thread] = len(thread_ids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": span.thread},
                }
            )
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": (span.start - base) * 1e6,
                "dur": span.duration * 1e6,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                    **{str(k): v for k, v in span.attributes.items()},
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Sequence[Span], path: str | Path, process_name: str = "repro.service"
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(spans_to_chrome_trace(spans, process_name), indent=2, default=float) + "\n"
    )
    return path


# ----------------------------------------------------------------------------
# Prometheus text exposition.
# ----------------------------------------------------------------------------
def _metric_name(name: str, suffix: str = "") -> str:
    sanitised = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in name)
    return sanitised + suffix


def _labels(pairs, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(pairs) + tuple(extra)
    if not items:
        return ""
    rendered = ",".join(f'{k}="{v}"' for k, v in items)
    return f"{{{rendered}}}"


def _number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Serialise a registry in the Prometheus text exposition format."""
    counters, gauges, histograms = registry.instruments()
    lines: list[str] = []
    seen_types: set[str] = set()

    def _header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in sorted(counters, key=lambda c: (c.name, c.labels)):
        name = _metric_name(counter.name, "_total")
        _header(name, "counter")
        lines.append(f"{name}{_labels(counter.labels)} {_number(counter.value)}")
    for gauge in sorted(gauges, key=lambda g: (g.name, g.labels)):
        name = _metric_name(gauge.name)
        _header(name, "gauge")
        lines.append(f"{name}{_labels(gauge.labels)} {_number(gauge.value)}")
    for histogram in sorted(histograms, key=lambda h: (h.name, h.labels)):
        name = _metric_name(histogram.name)
        _header(name, "histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(
                f"{name}_bucket"
                f"{_labels(histogram.labels, (('le', _number(bound)),))} {cumulative}"
            )
        cumulative += histogram.counts[-1]
        lines.append(
            f"{name}_bucket{_labels(histogram.labels, (('le', '+Inf'),))} {cumulative}"
        )
        lines.append(f"{name}_sum{_labels(histogram.labels)} {_number(histogram.total)}")
        lines.append(f"{name}_count{_labels(histogram.labels)} {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path
