"""Exporters: JSON-lines spans, Chrome trace-event files, Prometheus text.

Three operator-facing serialisations of the in-memory telemetry:

* :func:`spans_to_jsonlines` — one JSON object per finished span, ordered by
  start time; greppable, ingestible by any log pipeline.
* :func:`spans_to_chrome_trace` — the Chrome ``chrome://tracing`` /
  Perfetto trace-event JSON format (``"X"`` complete events, microsecond
  timestamps, one lane per (process, thread)), so a service request renders
  as a flame graph of plan stages, kernel measurements and solver calls, with
  spans adopted from executor worker processes in their own ``pid`` lanes.
* :func:`prometheus_text` — the Prometheus text exposition format over a
  :class:`~repro.telemetry.metrics.MetricsRegistry` (counters as ``_total``,
  histograms as cumulative ``_bucket{le=...}`` series).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Sequence

from .metrics import MetricsRegistry
from .spans import Span

__all__ = [
    "spans_to_jsonlines",
    "write_jsonlines",
    "spans_to_chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]


# ----------------------------------------------------------------------------
# JSON lines.
# ----------------------------------------------------------------------------
def spans_to_jsonlines(spans: Iterable[Span]) -> str:
    """Serialise spans to newline-delimited JSON, ordered by start time."""
    ordered = sorted(spans, key=lambda span: (span.start, span.span_id))
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True, default=float) for span in ordered)


def write_jsonlines(spans: Iterable[Span], path: str | Path) -> Path:
    path = Path(path)
    content = spans_to_jsonlines(spans)
    path.write_text(content + ("\n" if content else ""))
    return path


# ----------------------------------------------------------------------------
# Chrome trace-event format.
# ----------------------------------------------------------------------------
def spans_to_chrome_trace(spans: Sequence[Span], process_name: str = "repro.service") -> dict:
    """Build a Chrome/Perfetto trace-event document from finished spans.

    Timestamps are rebased to the earliest span start (the viewer expects
    small positive microsecond offsets, not raw ``perf_counter`` values).
    Lanes are keyed on (process, thread): each distinct ``span.process``
    becomes its own ``pid`` with a ``process_name`` metadata row — the
    earliest-seen pid is labelled ``process_name``, later ones (spans adopted
    from executor workers) ``{process_name}/worker-{pid}`` — and each thread
    within a process gets a named ``tid`` lane, so concurrent requests and
    remote plan executions show up side by side instead of collapsing into
    one driver lane.
    """
    spans = sorted(spans, key=lambda span: (span.start, span.span_id))
    events: list[dict] = []
    base = spans[0].start if spans else 0.0
    process_ids: dict[int, int] = {}
    thread_ids: dict[tuple[int, str], int] = {}
    if not spans:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": process_name},
            }
        )
    for span in spans:
        pid = process_ids.get(span.process)
        if pid is None:
            pid = process_ids[span.process] = span.process
            label = (
                process_name
                if len(process_ids) == 1
                else f"{process_name}/worker-{span.process}"
            )
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        tid = thread_ids.get((pid, span.thread))
        if tid is None:
            tid = thread_ids[(pid, span.thread)] = (
                len([key for key in thread_ids if key[0] == pid]) + 1
            )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": span.thread},
                }
            )
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": (span.start - base) * 1e6,
                "dur": span.duration * 1e6,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                    **{str(k): v for k, v in span.attributes.items()},
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Sequence[Span], path: str | Path, process_name: str = "repro.service"
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(spans_to_chrome_trace(spans, process_name), indent=2, default=float) + "\n"
    )
    return path


# ----------------------------------------------------------------------------
# Prometheus text exposition.
# ----------------------------------------------------------------------------
def _metric_name(name: str, suffix: str = "") -> str:
    sanitised = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in name)
    return sanitised + suffix


def _escape_label_value(value: str) -> str:
    # Prometheus exposition format: backslash, double-quote and newline are
    # the three characters that must be escaped inside label values.
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(pairs, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(pairs) + tuple(extra)
    if not items:
        return ""
    rendered = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return f"{{{rendered}}}"


def _number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Serialise a registry in the Prometheus text exposition format."""
    counters, gauges, histograms = registry.instruments()
    lines: list[str] = []
    seen_types: set[str] = set()

    def _header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in sorted(counters, key=lambda c: (c.name, c.labels)):
        name = _metric_name(counter.name, "_total")
        _header(name, "counter")
        lines.append(f"{name}{_labels(counter.labels)} {_number(counter.value)}")
    for gauge in sorted(gauges, key=lambda g: (g.name, g.labels)):
        name = _metric_name(gauge.name)
        _header(name, "gauge")
        lines.append(f"{name}{_labels(gauge.labels)} {_number(gauge.value)}")
    for histogram in sorted(histograms, key=lambda h: (h.name, h.labels)):
        name = _metric_name(histogram.name)
        _header(name, "histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(
                f"{name}_bucket"
                f"{_labels(histogram.labels, (('le', _number(bound)),))} {cumulative}"
            )
        cumulative += histogram.counts[-1]
        lines.append(
            f"{name}_bucket{_labels(histogram.labels, (('le', '+Inf'),))} {cumulative}"
        )
        lines.append(f"{name}_sum{_labels(histogram.labels)} {_number(histogram.total)}")
        lines.append(f"{name}_count{_labels(histogram.labels)} {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path
