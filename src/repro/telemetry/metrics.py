"""Metrics: counters, gauges, fixed-bucket histograms and the spend odometer.

The :class:`MetricsRegistry` aggregates *across* requests — where a span
records one operation, a metric records the distribution.  Metrics are keyed
by name plus a small label set (``tenant=...``, ``plan=...``, ``cache=...``),
matching the Prometheus data model so the text exporter in
:mod:`repro.telemetry.exporters` is a direct serialisation.

Histograms use fixed buckets (latency-shaped by default) so percentile
estimates cost O(num_buckets) regardless of how many requests were observed;
:meth:`Histogram.percentile` interpolates linearly inside the winning bucket
and clamps to the observed min/max, which keeps small-sample estimates sane.

The registry doubles as the service's **privacy-spend odometer**: every
request's budget delta is recorded per (tenant, plan) together with first/last
observation times, so operators can read cumulative ε/ρ burn and burn *rate*
per tenant without walking session ledgers.

Registries are **mergeable**: :meth:`MetricsRegistry.export_state` captures
every instrument as picklable plain data and :meth:`MetricsRegistry.merge_state`
folds such a capture into another registry — counters and histogram bucket
vectors add, gauges take the incoming value, odometer entries accumulate.
This is how executor worker processes ship their per-job metrics delta home
(each job runs against a fresh worker-side registry, so the full capture *is*
the delta) without the cache hits and solver timings they observed vanishing.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from .clock import DEFAULT_CLOCK, Clock

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS"]

#: Geometric latency buckets (seconds): 100 µs ... ~100 s, then +inf overflow.
DEFAULT_LATENCY_BUCKETS = tuple(1e-4 * (10 ** (i / 3.0)) for i in range(19))

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    labels: _LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (queue depths, cache sizes)."""

    name: str
    labels: _LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Fixed-bucket histogram with O(buckets) percentile estimation.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything larger.  ``counts`` has
    ``len(bounds) + 1`` entries.
    """

    name: str
    labels: _LabelKey = ()
    bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf

    def __post_init__(self):
        self.bounds = tuple(float(b) for b in self.bounds)
        if list(self.bounds) != sorted(self.bounds) or len(set(self.bounds)) != len(self.bounds):
            raise ValueError("histogram bucket bounds must be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        # Linear scan beats bisect for the short default bucket list and is
        # branch-predictable for latency-shaped data (most hits land early).
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``) from buckets.

        The rank is located in the cumulative bucket counts and interpolated
        linearly between the bucket's edges; results are clamped to the exact
        observed ``[minimum, maximum]`` so the overflow bucket and sparse
        small samples cannot report values never seen.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return math.nan
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            lower_cumulative = cumulative
            cumulative += bucket_count
            if rank <= cumulative:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.maximum
                fraction = (rank - lower_cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - rank always <= count

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean if self.count else None,
            "p50": self.percentile(50) if self.count else None,
            "p95": self.percentile(95) if self.count else None,
            "p99": self.percentile(99) if self.count else None,
            "buckets": {
                **{f"le_{bound:g}": c for bound, c in zip(self.bounds, self.counts)},
                "le_inf": self.counts[-1],
            },
        }


@dataclass
class _SpendEntry:
    """Odometer cell: cumulative spend of one (tenant, plan) pair."""

    tenant: str
    plan: str
    unit: str
    spent: float = 0.0
    requests: int = 0
    first_time: float | None = None
    last_time: float | None = None

    def burn_rate(self) -> float | None:
        """Spend per second over the observed window (None below 2 samples)."""
        if self.first_time is None or self.last_time is None:
            return None
        window = self.last_time - self.first_time
        if window <= 0:
            return None
        return self.spent / window


class MetricsRegistry:
    """Thread-safe, label-aware registry of counters, gauges and histograms."""

    def __init__(self, clock: Clock | None = None):
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}
        self._spend: dict[tuple[str, str], _SpendEntry] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create; safe to call on hot paths).
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(name, key[1])
            return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(name, key[1])
            return instrument

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(
                    name, key[1], bounds=buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
                )
            return instrument

    # ------------------------------------------------------------------
    # Privacy-spend odometer.
    # ------------------------------------------------------------------
    def record_privacy_spend(
        self, tenant: str, plan: str, spent: float, unit: str = "epsilon",
        shard: str | None = None,
    ) -> None:
        """Add one request's budget delta (native units) to the odometer.

        Zero-spend requests (cache hits, rejected requests) still tick the
        request count so hit rates are readable next to the burn figures.
        ``shard`` additionally feeds a shard-labelled spend counter on a
        sharded service, so operators can see which shard is burning which
        tenant's budget; unsharded services emit no shard series at all.
        """
        now = self._clock()
        with self._lock:
            entry = self._spend.get((tenant, plan))
            if entry is None:
                entry = self._spend[(tenant, plan)] = _SpendEntry(tenant, plan, unit)
            entry.spent += float(spent)
            entry.requests += 1
            if entry.first_time is None:
                entry.first_time = now
            entry.last_time = now
        if shard is not None:
            self.counter(
                "privacy_spend_shard", tenant=tenant, shard=shard, unit=unit
            ).inc(max(float(spent), 0.0))

    def privacy_odometer(self) -> dict:
        """Per-tenant spend view: totals, per-plan breakdown, burn rates."""
        with self._lock:
            entries = [
                _SpendEntry(**vars(entry)) for entry in self._spend.values()
            ]
        tenants: dict[str, dict] = {}
        for entry in entries:
            tenant = tenants.setdefault(
                entry.tenant,
                {"unit": entry.unit, "total_spent": 0.0, "requests": 0, "plans": {}},
            )
            tenant["total_spent"] += entry.spent
            tenant["requests"] += entry.requests
            tenant["plans"][entry.plan] = {
                "spent": entry.spent,
                "requests": entry.requests,
                "burn_rate_per_second": entry.burn_rate(),
            }
        for tenant in tenants.values():
            rates = [
                plan["burn_rate_per_second"]
                for plan in tenant["plans"].values()
                if plan["burn_rate_per_second"] is not None
            ]
            tenant["burn_rate_per_second"] = sum(rates) if rates else None
        return tenants

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument (used by ``telemetry_report``)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {
                _render_key(c.name, c.labels): c.value for c in counters
            },
            "gauges": {_render_key(g.name, g.labels): g.value for g in gauges},
            "histograms": {
                _render_key(h.name, h.labels): h.snapshot() for h in histograms
            },
            "privacy_odometer": self.privacy_odometer(),
        }

    def instruments(self) -> tuple[list[Counter], list[Gauge], list[Histogram]]:
        """Raw instrument lists (used by the Prometheus exporter)."""
        with self._lock:
            return (
                list(self._counters.values()),
                list(self._gauges.values()),
                list(self._histograms.values()),
            )

    # ------------------------------------------------------------------
    # Mergeable state capture (worker metrics adoption).
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Every instrument as picklable plain data (lists and tuples only).

        The capture is loss-free: merging it into an empty registry with
        :meth:`merge_state` reproduces every counter value, histogram bucket
        vector (plus sum/count/min/max) and odometer entry exactly.
        """
        with self._lock:
            return {
                "counters": [
                    (c.name, c.labels, c.value) for c in self._counters.values()
                ],
                "gauges": [(g.name, g.labels, g.value) for g in self._gauges.values()],
                "histograms": [
                    (
                        h.name,
                        h.labels,
                        h.bounds,
                        list(h.counts),
                        h.total,
                        h.count,
                        h.minimum,
                        h.maximum,
                    )
                    for h in self._histograms.values()
                ],
                "spend": [
                    (
                        e.tenant,
                        e.plan,
                        e.unit,
                        e.spent,
                        e.requests,
                        e.first_time,
                        e.last_time,
                    )
                    for e in self._spend.values()
                ],
            }

    def merge_state(self, state: dict | None) -> None:
        """Fold an :meth:`export_state` capture into this registry.

        Counters add; gauges take the incoming value (last-write-wins — a
        gauge is a level, not a total); histograms add bucket vectors and
        combine min/max (bucket bounds must match, or the series diverged);
        odometer entries accumulate spend/requests and widen the observation
        window.  Safe to call with ``None`` (no-op), so adoption sites need
        no branching.
        """
        if not state:
            return
        for name, labels, value in state.get("counters", ()):
            self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in state.get("gauges", ()):
            self.gauge(name, **dict(labels)).set(value)
        for name, labels, bounds, counts, total, count, minimum, maximum in state.get(
            "histograms", ()
        ):
            histogram = self.histogram(name, buckets=tuple(bounds), **dict(labels))
            if histogram.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            for i, bucket_count in enumerate(counts):
                histogram.counts[i] += int(bucket_count)
            histogram.total += float(total)
            histogram.count += int(count)
            if count:
                histogram.minimum = min(histogram.minimum, float(minimum))
                histogram.maximum = max(histogram.maximum, float(maximum))
        with self._lock:
            for tenant, plan, unit, spent, requests, first_time, last_time in state.get(
                "spend", ()
            ):
                entry = self._spend.get((tenant, plan))
                if entry is None:
                    entry = self._spend[(tenant, plan)] = _SpendEntry(
                        tenant, plan, unit
                    )
                entry.spent += float(spent)
                entry.requests += int(requests)
                if first_time is not None and (
                    entry.first_time is None or first_time < entry.first_time
                ):
                    entry.first_time = first_time
                if last_time is not None and (
                    entry.last_time is None or last_time > entry.last_time
                ):
                    entry.last_time = last_time


def _render_key(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"
