"""SLO specs and multi-window burn-rate evaluation over the metrics registry.

A :class:`SloSpec` declares one objective against the instruments the service
already emits — no new instrumentation is required:

* ``kind="latency"`` — a request-latency objective ("``target`` of requests
  complete within ``threshold_seconds``"), read from the
  ``service_request_latency_seconds`` histogram bucket vectors.  The bucket
  whose bound is the largest one ≤ the threshold defines "good", so the SLI
  is conservative (never flattered by bucket granularity).
* ``kind="error_rate"`` — "``target`` of requests do not fail", read from the
  ``service_requests`` outcome counters (``error`` and ``timeout`` are bad;
  ``ok``/``cached``/``rejected`` are good — a rejection is backpressure
  working, not the service failing).
* ``kind="privacy_burn"`` — "this (tenant, plan) spends at most ``budget``
  native budget units per ``horizon_seconds``", read from the privacy-spend
  odometer.  This is the paper's accounting made operational: ε is an error
  budget like any other, and a plan burning it too fast should page someone
  *before* the accountant starts refusing charges.

The :class:`SloEngine` samples :meth:`MetricsRegistry.export_state` over time
and evaluates each spec over **multiple windows** (Google SRE-style
multi-window multi-burn-rate alerting): an alert fires only when the error
budget is burning at ≥ ``factor`` × the sustainable rate over *both* the
short and the long window — the short window makes alerts fast to clear, the
long window keeps blips from paging.  Results are returned as a report and
published back into the registry as ``slo_sli``/``slo_burn_rate``/
``slo_alerting`` gauges, so the Prometheus exporter surfaces them with zero
extra plumbing.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

from .clock import DEFAULT_CLOCK, Clock
from .metrics import MetricsRegistry

__all__ = ["SloSpec", "BurnWindow", "SloEngine", "DEFAULT_WINDOWS", "default_slos"]

#: Outcomes that consume the error budget of an ``error_rate`` SLO.
_BAD_OUTCOMES = frozenset({"error", "timeout"})


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    ``target`` is the good-event fraction for request-based kinds (0.99 =
    "99% of requests...").  ``tenant``/``plan`` filter the underlying series;
    ``None`` aggregates across all values.  ``budget``/``horizon_seconds``
    only apply to ``privacy_burn``: the allowed spend (native accountant
    units) per horizon.
    """

    name: str
    kind: str  # "latency" | "error_rate" | "privacy_burn"
    target: float = 0.99
    threshold_seconds: float | None = None
    tenant: str | None = None
    plan: str | None = None
    budget: float | None = None
    horizon_seconds: float = 86400.0

    def __post_init__(self):
        if self.kind not in ("latency", "error_rate", "privacy_burn"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency" and self.threshold_seconds is None:
            raise ValueError("latency SLOs need threshold_seconds")
        if self.kind == "privacy_burn" and self.budget is None:
            raise ValueError("privacy_burn SLOs need a budget")
        if self.kind != "privacy_burn" and not 0.0 < self.target < 1.0:
            raise ValueError("target must lie strictly between 0 and 1")


@dataclass(frozen=True)
class BurnWindow:
    """One (short, long, factor) burn-rate alerting rule."""

    short_seconds: float
    long_seconds: float
    factor: float

    @property
    def label(self) -> str:
        return f"{self.short_seconds:g}s/{self.long_seconds:g}s"


#: SRE-workbook style defaults: a fast-burn page and a slow-burn ticket.
DEFAULT_WINDOWS = (
    BurnWindow(short_seconds=300.0, long_seconds=3600.0, factor=14.4),
    BurnWindow(short_seconds=1800.0, long_seconds=21600.0, factor=6.0),
)


def default_slos() -> list[SloSpec]:
    """A reasonable starter set over the standard service instruments."""
    return [
        SloSpec(name="latency-p99-1s", kind="latency", target=0.99, threshold_seconds=1.0),
        SloSpec(name="availability", kind="error_rate", target=0.999),
    ]


class SloEngine:
    """Samples a registry over time and evaluates SLO burn rates.

    ``publish=True`` (the default) writes each evaluation back into the
    registry as gauges.  The engine is thread-safe; the scheduler (or an
    operator loop) calls :meth:`sample` periodically and :meth:`evaluate` on
    demand — both are cheap relative to a single plan execution.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        specs: list[SloSpec] | None = None,
        windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
        clock: Clock | None = None,
        publish: bool = True,
        baseline: tuple[float, dict] | None = None,
    ):
        self.registry = registry
        self.specs = list(specs) if specs is not None else default_slos()
        self.windows = tuple(windows)
        if not self.windows:
            raise ValueError("SloEngine needs at least one BurnWindow")
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        self.publish = publish
        self._lock = threading.Lock()
        self._samples: deque[tuple[float, dict]] = deque()
        self._horizon = max(w.long_seconds for w in self.windows)
        if baseline is not None:
            # An explicit (time, state) starting point — e.g. an empty state
            # stamped at the service's first request, so an engine built
            # after the fact still reads lifetime rates over real elapsed
            # time instead of a zero-width window.
            self._samples.append((float(baseline[0]), dict(baseline[1])))
        else:
            # The construction-time sample is the zero-delta baseline every
            # window falls back to while history is shorter than the window.
            self.sample()

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------
    def sample(self) -> float:
        """Record one (time, registry state) point; returns the sample time."""
        now = self._clock()
        state = self.registry.export_state()
        with self._lock:
            self._samples.append((now, state))
            # Keep exactly one sample older than the longest window so every
            # lookback has a baseline; everything staler is dead weight.
            while (
                len(self._samples) > 2
                and self._samples[1][0] <= now - self._horizon
            ):
                self._samples.popleft()
        return now

    def _baseline(self, now: float, window_seconds: float) -> tuple[float, dict]:
        """The newest sample at least ``window_seconds`` old (or the oldest)."""
        with self._lock:
            chosen = self._samples[0]
            for sample in self._samples:
                if sample[0] <= now - window_seconds:
                    chosen = sample
                else:
                    break
            return chosen

    # ------------------------------------------------------------------
    # Event extraction from exported registry state.
    # ------------------------------------------------------------------
    @staticmethod
    def _good_bad(spec: SloSpec, state: dict) -> tuple[float, float]:
        """Cumulative (good, bad) event counts for a request-based SLO."""
        good = bad = 0.0
        if spec.kind == "latency":
            for name, labels, bounds, counts, _total, count, _mn, _mx in state.get(
                "histograms", ()
            ):
                if name != "service_request_latency_seconds":
                    continue
                label_map = dict(labels)
                if spec.tenant is not None and label_map.get("tenant") != spec.tenant:
                    continue
                within = 0
                for bound, bucket_count in zip(bounds, counts):
                    if bound <= spec.threshold_seconds:
                        within += bucket_count
                good += within
                bad += count - within
        else:  # error_rate
            for name, labels, value in state.get("counters", ()):
                if name != "service_requests":
                    continue
                label_map = dict(labels)
                if spec.tenant is not None and label_map.get("tenant") != spec.tenant:
                    continue
                if spec.plan is not None and label_map.get("plan") != spec.plan:
                    continue
                if label_map.get("outcome") in _BAD_OUTCOMES:
                    bad += value
                else:
                    good += value
        return good, bad

    @staticmethod
    def _spent(spec: SloSpec, state: dict) -> float:
        """Cumulative odometer spend matching a ``privacy_burn`` spec."""
        spent = 0.0
        for tenant, plan, _unit, amount, _requests, _first, _last in state.get(
            "spend", ()
        ):
            if spec.tenant is not None and tenant != spec.tenant:
                continue
            if spec.plan is not None and plan != spec.plan:
                continue
            spent += amount
        return spent

    def _window_report(
        self, spec: SloSpec, now: float, current: dict, window_seconds: float
    ) -> dict:
        """SLI and burn rate of one spec over one lookback window."""
        base_time, base_state = self._baseline(now, window_seconds)
        elapsed = max(now - base_time, 0.0)
        if spec.kind == "privacy_burn":
            delta = self._spent(spec, current) - self._spent(spec, base_state)
            allowed_rate = spec.budget / spec.horizon_seconds
            if elapsed <= 0.0 or allowed_rate <= 0.0:
                burn = 0.0 if delta <= 0.0 else math.inf
            else:
                burn = (delta / elapsed) / allowed_rate
            cumulative = self._spent(spec, current)
            sli = max(1.0 - cumulative / spec.budget, 0.0)
            return {"sli": sli, "burn_rate": burn, "events": delta, "elapsed": elapsed}
        good_now, bad_now = self._good_bad(spec, current)
        good_base, bad_base = self._good_bad(spec, base_state)
        good, bad = good_now - good_base, bad_now - bad_base
        total = good + bad
        sli = good / total if total > 0 else 1.0
        if total <= 0:
            burn = 0.0
        else:
            allowed = 1.0 - spec.target
            burn = (bad / total) / allowed if allowed > 0 else (math.inf if bad else 0.0)
        return {"sli": sli, "burn_rate": burn, "events": total, "elapsed": elapsed}

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def evaluate(self, sample_first: bool = True) -> list[dict]:
        """Evaluate every spec over every window; optionally publish gauges.

        Returns one report per spec: its per-window SLI/burn-rate figures,
        which alert rules fired, and the overall ``alerting`` flag (true when
        any rule's short *and* long windows both burn ≥ its factor).
        """
        if sample_first:
            self.sample()
        with self._lock:
            now, current = self._samples[-1]
        lookbacks = sorted(
            {w.short_seconds for w in self.windows}
            | {w.long_seconds for w in self.windows}
        )
        reports = []
        for spec in self.specs:
            by_window = {
                seconds: self._window_report(spec, now, current, seconds)
                for seconds in lookbacks
            }
            rules = []
            alerting = False
            for window in self.windows:
                short = by_window[window.short_seconds]
                long = by_window[window.long_seconds]
                fired = (
                    short["burn_rate"] >= window.factor
                    and long["burn_rate"] >= window.factor
                )
                alerting = alerting or fired
                rules.append(
                    {
                        "window": window.label,
                        "factor": window.factor,
                        "short_burn_rate": short["burn_rate"],
                        "long_burn_rate": long["burn_rate"],
                        "fired": fired,
                    }
                )
            longest = by_window[lookbacks[-1]]
            report = {
                "name": spec.name,
                "kind": spec.kind,
                "target": spec.target,
                "sli": longest["sli"],
                "windows": {
                    f"{seconds:g}s": by_window[seconds] for seconds in lookbacks
                },
                "rules": rules,
                "alerting": alerting,
            }
            reports.append(report)
            if self.publish:
                self._publish(spec, report, by_window)
        return reports

    def _publish(self, spec: SloSpec, report: dict, by_window: dict) -> None:
        registry = self.registry
        registry.gauge("slo_sli", slo=spec.name).set(report["sli"])
        registry.gauge("slo_alerting", slo=spec.name).set(
            1.0 if report["alerting"] else 0.0
        )
        for seconds, window_report in by_window.items():
            burn = window_report["burn_rate"]
            registry.gauge("slo_burn_rate", slo=spec.name, window=f"{seconds:g}s").set(
                burn if math.isfinite(burn) else math.inf
            )

    def report(self) -> dict:
        """One JSON-ready document (used by ``export.slo_report``)."""
        return {
            "specs": [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "target": spec.target,
                    "threshold_seconds": spec.threshold_seconds,
                    "tenant": spec.tenant,
                    "plan": spec.plan,
                    "budget": spec.budget,
                    "horizon_seconds": spec.horizon_seconds,
                }
                for spec in self.specs
            ],
            "windows": [
                {
                    "short_seconds": w.short_seconds,
                    "long_seconds": w.long_seconds,
                    "factor": w.factor,
                }
                for w in self.windows
            ],
            "results": self.evaluate(),
        }
