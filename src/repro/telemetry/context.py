"""Trace context propagation: carrying a trace across process boundaries.

A :class:`TraceContext` is the picklable essence of "where we are" in a
trace — the trace id plus the span id of the enclosing span.  The scheduler
captures one from its live tracer next to the other fields of a
:class:`~repro.service.executors.PlanJob`, ships it to the worker process,
and the worker activates a private recording :class:`~repro.telemetry.Tracer`
whose finished spans come home in the
:class:`~repro.service.executors.PlanJobOutcome`.  Adoption
(:meth:`~repro.telemetry.spans.Tracer.adopt`) then re-ids those spans into
the live tracer's id space and re-parents their roots under
``parent_span_id``, so one trace covers the driver *and* the worker with no
id collisions — structurally identical to the span tree local execution
would have produced.

The context is deliberately tiny (two strings): it carries no clock state
because ``time.perf_counter`` reads the system-wide monotonic clock on the
platforms this repo targets, so worker span timestamps land on the same
timeline as the driver's.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spans import NULL_TRACER, current_tracer

__all__ = ["TraceContext", "current_context"]


@dataclass(frozen=True)
class TraceContext:
    """A picklable pointer into a live trace (trace id + parent span id)."""

    trace_id: str
    parent_span_id: str | None = None


def current_context(tracer=None) -> TraceContext | None:
    """Capture the current thread's trace position, or None when untraced.

    ``tracer`` defaults to the thread's active tracer; with no tracer active
    or no span open there is nothing to propagate and remote work runs with
    tracing off (the worker pays zero overhead).
    """
    tracer = tracer if tracer is not None else current_tracer()
    if tracer is NULL_TRACER:
        return None
    span = tracer.current_span()
    if span is None or span.trace_id is None:
        return None
    return TraceContext(trace_id=span.trace_id, parent_span_id=span.span_id)
