"""Hierarchical tracing: spans, the :class:`Tracer`, and the active-tracer hook.

A *span* is one timed operation — a service request, a plan stage, a kernel
measurement, a solver call — with a ``trace_id`` shared by everything done on
behalf of the same request, a unique ``span_id``, and the ``parent_id`` of the
enclosing span.  Nesting is automatic: each :class:`Tracer` keeps a
*thread-local* stack of open spans, so an instrumented callee attaches under
whatever span its caller opened in the same thread, and concurrent requests on
different scheduler threads can never leak spans into each other's traces.

Instrumented library code does not take a tracer parameter.  It calls
:func:`trace_span`, which resolves the *active* tracer of the current thread —
installed by :func:`activate` (the service scheduler activates its tracer for
the duration of each request) and defaulting to the process-wide
:data:`NULL_TRACER`.  The null tracer's :meth:`~NullTracer.span` returns one
shared no-op handle and records nothing, so uninstrumented deployments pay a
single thread-local read plus one no-argument method call per seam.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field

from .clock import DEFAULT_CLOCK, Clock

__all__ = [
    "Span",
    "SpanHandle",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "activate",
    "trace_span",
]


@dataclass
class Span:
    """One finished, immutable-by-convention trace record.

    ``start``/``end`` are clock seconds (monotonic, not wall time); ``status``
    is ``"ok"`` or ``"error"`` (with the exception type under
    ``attributes["error.type"]``); ``thread`` is the name of the thread the
    span ran on and ``process`` the pid of the process, which exporters use
    as the Chrome-trace thread/process lanes — spans adopted from executor
    worker processes keep their worker pid and render in their own lane.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float
    thread: str
    attributes: dict = field(default_factory=dict)
    status: str = "ok"
    process: int = field(default_factory=os.getpid)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the JSON-lines exporter)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "thread": self.thread,
            "process": self.process,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class SpanHandle:
    """An open span: a context manager that finishes the span on exit.

    Attributes set after entry (costs, cache hits, iteration counts — values
    only known once the work ran) land on the finished :class:`Span`.  An
    exception propagating through the block marks the span ``"error"`` and
    stores the exception type; the exception itself is never swallowed.
    """

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name", "attributes", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        attributes: dict,
    ):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self._start = 0.0

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes) -> None:
        self.attributes.update(attributes)

    def __enter__(self) -> "SpanHandle":
        self._tracer._push(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer._clock()
        self._tracer._pop(self)
        status = "ok"
        if exc_type is not None:
            status = "error"
            self.attributes["error.type"] = exc_type.__name__
        self._tracer._record(
            Span(
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self._start,
                end=end,
                thread=threading.current_thread().name,
                attributes=self.attributes,
                status=status,
            )
        )
        return False


class Tracer:
    """Collects hierarchical spans with a thread-local open-span context.

    ``clock`` is injectable (see :mod:`repro.telemetry.clock`); ``max_spans``
    bounds memory for long-lived services by dropping the *oldest* finished
    spans once the buffer is full (a long-running deployment should drain
    with :meth:`drain` or export periodically instead of relying on the cap).

    Trace and span ids are deterministic counters — the service derives one
    trace per request, so ids need to be unique and readable, not
    unpredictable (they carry no private information).
    """

    enabled = True

    def __init__(self, clock: Clock | None = None, max_spans: int | None = None):
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        self.max_spans = max_spans
        self._spans: list[Span] = []
        self._dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        #: called with every finished span (the flight recorder's tap).
        self._listeners: list = []

    def add_listener(self, listener) -> None:
        """Register ``listener(span)`` to observe every finished span.

        Listeners also see adopted worker spans, so a flight recorder taps
        the full distributed trace, not just the driver's half.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Span creation.
    # ------------------------------------------------------------------
    def span(self, name: str, trace_id: str | None = None, **attributes) -> SpanHandle:
        """Open a span named ``name`` under the current thread's context.

        With no open parent in this thread the span starts a new trace
        (``trace_id`` may pin the id, e.g. to a request id); with an open
        parent it joins the parent's trace and records the parent link.
        ``attributes`` seed the span's structured attributes; more can be set
        on the returned handle while the span is open.
        """
        parent = self.current_span()
        if parent is not None:
            trace = parent.trace_id
            parent_id = parent.span_id
        else:
            trace = trace_id if trace_id is not None else f"trace-{next(self._trace_ids)}"
            parent_id = None
        return SpanHandle(
            self, trace, f"span-{next(self._span_ids)}", parent_id, name, attributes
        )

    def current_span(self) -> SpanHandle | None:
        """The innermost open span of the *current thread*, if any."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1]

    # ------------------------------------------------------------------
    # Internal bookkeeping (called by SpanHandle).
    # ------------------------------------------------------------------
    def _push(self, handle: SpanHandle) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(handle)

    def _pop(self, handle: SpanHandle) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is handle:
            stack.pop()
        elif stack and handle in stack:  # pragma: no cover - defensive
            stack.remove(handle)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if self.max_spans is not None and len(self._spans) > self.max_spans:
                overflow = len(self._spans) - self.max_spans
                del self._spans[:overflow]
                self._dropped += overflow
        for listener in self._listeners:
            listener(span)

    # ------------------------------------------------------------------
    # Adoption of remotely recorded spans.
    # ------------------------------------------------------------------
    def adopt(
        self, spans: list[Span], trace_id: str, parent_id: str | None = None
    ) -> list[Span]:
        """Fold spans recorded by another tracer into this one.

        The spans (typically shipped home from an executor worker process,
        where a private tracer recorded them) are re-identified from this
        tracer's span-id sequence — worker-local ids would collide with live
        ones — with parent links rewritten consistently: spans whose parent
        was also adopted keep their relative structure, and the remote roots
        attach under ``parent_id`` in trace ``trace_id``.  Thread names,
        process ids, timestamps, attributes and status travel unchanged.
        Returns the adopted (re-identified) spans in input order.
        """
        if not spans:
            return []
        mapping: dict[str, str] = {}
        with self._lock:
            for span in spans:
                mapping[span.span_id] = f"span-{next(self._span_ids)}"
        adopted = []
        for span in spans:
            new_parent = mapping.get(span.parent_id) if span.parent_id else None
            adopted.append(
                Span(
                    trace_id=trace_id,
                    span_id=mapping[span.span_id],
                    parent_id=new_parent if new_parent is not None else parent_id,
                    name=span.name,
                    start=span.start,
                    end=span.end,
                    thread=span.thread,
                    attributes=dict(span.attributes),
                    status=span.status,
                    process=span.process,
                )
            )
        for span in adopted:
            self._record(span)
        return adopted

    # ------------------------------------------------------------------
    # Reading the buffer.
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """A snapshot copy of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by trace id (each list in completion order)."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def trace(self, trace_id: str) -> list[Span]:
        """All finished spans of one trace."""
        return [span for span in self.spans() if span.trace_id == trace_id]

    def drain(self) -> list[Span]:
        """Remove and return all finished spans (for periodic exporting)."""
        with self._lock:
            drained, self._spans = self._spans, []
            return drained

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    @property
    def dropped(self) -> int:
        """Spans discarded because the buffer hit ``max_spans``."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def stats(self) -> dict:
        with self._lock:
            spans = list(self._spans)
            dropped = self._dropped
        return {
            "enabled": True,
            "num_spans": len(spans),
            "num_traces": len({span.trace_id for span in spans}),
            "dropped": dropped,
        }


class _NoopSpan:
    """The disabled-mode span: one shared instance, every method a no-op."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    name = None
    attributes: dict = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        pass

    def set_attributes(self, **attributes) -> None:
        pass


#: The one no-op handle every disabled span call returns (no allocation).
NOOP_SPAN = _NoopSpan()


class NullTracer:
    """The no-op tracer installed by default.

    Every ``span()`` call returns the same shared :data:`NOOP_SPAN` handle and
    nothing is ever recorded, so instrumentation left in place costs only the
    call itself when tracing is off.
    """

    enabled = False
    max_spans = None

    def span(self, name: str | None = None, trace_id: str | None = None, **attributes):
        return NOOP_SPAN

    def current_span(self) -> None:
        return None

    def add_listener(self, listener) -> None:
        pass

    def adopt(self, spans, trace_id: str, parent_id: str | None = None) -> list[Span]:
        return []

    def spans(self) -> list[Span]:
        return []

    def traces(self) -> dict[str, list[Span]]:
        return {}

    def trace(self, trace_id: str) -> list[Span]:
        return []

    def drain(self) -> list[Span]:
        return []

    def clear(self) -> None:
        pass

    @property
    def dropped(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def stats(self) -> dict:
        return {"enabled": False, "num_spans": 0, "num_traces": 0, "dropped": 0}


#: Process-wide disabled tracer; ``current_tracer()`` falls back to it.
NULL_TRACER = NullTracer()

#: Thread-local slot holding the tracer activated for the current thread.
_ACTIVE = threading.local()


def current_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code should emit to on this thread."""
    return getattr(_ACTIVE, "tracer", NULL_TRACER)


class activate:
    """Install ``tracer`` as the current thread's active tracer.

    A context manager (re-entrant via save/restore) used by the scheduler to
    scope its tracer to one request's execution on one worker thread::

        with activate(tracer), tracer.span("service.request", ...):
            ...  # kernel/plan/solver spans nest automatically
    """

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer | NullTracer):
        self._tracer = tracer
        self._previous = NULL_TRACER

    def __enter__(self):
        self._previous = getattr(_ACTIVE, "tracer", NULL_TRACER)
        _ACTIVE.tracer = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _ACTIVE.tracer = self._previous
        return False


def trace_span(name: str, **attributes):
    """Open a span on the current thread's active tracer (no-op by default).

    This is the single hook every instrumented seam calls — kernel operators,
    plan stages, the least-squares solver.  When no tracer is active it
    returns the shared :data:`NOOP_SPAN` immediately.
    """
    tracer = getattr(_ACTIVE, "tracer", NULL_TRACER)
    if tracer is NULL_TRACER:
        return NOOP_SPAN
    return tracer.span(name, **attributes)
