"""Combinators for building composite implicit matrices (Sec. 7.4).

The EKTELO generalized matrix grammar composes core, sparse, and dense
matrices with three operations:

* ``Union``  — vertical stacking of query sets (here :class:`VStack`),
* ``Product`` — lazy matrix multiplication,
* ``Kronecker`` — Kronecker products for multi-dimensional domains.

A scalar :class:`Weighted` wrapper is added so measurement matrices can carry
per-query noise weights without materialisation, and :class:`HStack` is
provided because partition expansion occasionally needs it.

Space and time complexity mirrors Table 3 of the paper: a composed matrix
stores only its sub-matrices, and its matvec cost is the sum (stack, product)
or the ``n_B * T(A) + m_A * T(B)`` mixture (Kronecker) of the children's
costs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse as sp

from .base import LinearQueryMatrix, ensure_matrix


class VStack(LinearQueryMatrix):
    """Union of query sets: vertical stack ``[A; B; ...]``.

    All sub-matrices must share a column count (the data-vector size).
    """

    def __init__(self, matrices: Sequence[LinearQueryMatrix]):
        self.matrices = [ensure_matrix(m) for m in matrices]
        if not self.matrices:
            raise ValueError("VStack requires at least one matrix")
        n = self.matrices[0].shape[1]
        for m in self.matrices:
            if m.shape[1] != n:
                raise ValueError("all stacked matrices must have the same column count")
        rows = sum(m.shape[0] for m in self.matrices)
        self.shape = (rows, n)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return np.concatenate([m.matvec(v) for m in self.matrices])

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        out = np.zeros(self.shape[1])
        offset = 0
        for m in self.matrices:
            rows = m.shape[0]
            out += m.rmatvec(v[offset : offset + rows])
            offset += rows
        return out

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return np.concatenate([m._matmat(B) for m in self.matrices], axis=0)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        out = np.zeros((self.shape[1], B.shape[1]))
        offset = 0
        for m in self.matrices:
            rows = m.shape[0]
            out += m._rmatmat(B[offset : offset + rows])
            offset += rows
        return out

    def __abs__(self) -> LinearQueryMatrix:
        return VStack([abs(m) for m in self.matrices])

    def square(self) -> LinearQueryMatrix:
        return VStack([m.square() for m in self.matrices])

    def sensitivity_l2(self) -> float:
        # Stacking concatenates each column's entries, so squared column
        # norms add: each child contributes its diag(AᵀA) through its own
        # closed form instead of a squared-matrix materialisation.
        totals = self.matrices[0].diag_gram()
        for m in self.matrices[1:]:
            totals = totals + m.diag_gram()
        return float(np.sqrt(np.max(totals)))

    def dense(self) -> np.ndarray:
        # Fill a preallocated output instead of np.vstack to avoid one full copy.
        out = np.empty(self.shape)
        offset = 0
        for m in self.matrices:
            out[offset : offset + m.shape[0]] = m.dense()
            offset += m.shape[0]
        return out

    def sparse(self) -> sp.csr_matrix:
        return sp.vstack([m.sparse() for m in self.matrices], format="csr")

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        # [A; B].T [A; B] = A.T A + B.T B — each child uses its own fast path.
        out = self.matrices[0].gram_dense()
        for m in self.matrices[1:]:
            out += m.gram_dense()
        return out

    def gram_sparse(self) -> sp.csr_matrix:
        out = self.matrices[0].gram_sparse()
        for m in self.matrices[1:]:
            out = out + m.gram_sparse()
        return out.tocsr()

    def gram_nnz_estimate(self) -> int:
        n = self.shape[1]
        return int(min(n * n, sum(m.gram_nnz_estimate() for m in self.matrices)))

    def _build_strategy_key(self) -> tuple:
        return ("VStack", tuple(m.strategy_key() for m in self.matrices))

    def row(self, i: int) -> np.ndarray:
        offset = 0
        for m in self.matrices:
            if i < offset + m.shape[0]:
                return m.row(i - offset)
            offset += m.shape[0]
        raise IndexError("row index out of range")

    def split_answers(self, y: np.ndarray) -> list[np.ndarray]:
        """Split a stacked answer vector back into per-sub-matrix pieces."""
        pieces = []
        offset = 0
        for m in self.matrices:
            pieces.append(np.asarray(y[offset : offset + m.shape[0]]))
            offset += m.shape[0]
        return pieces


class HStack(LinearQueryMatrix):
    """Horizontal stack ``[A, B, ...]`` — used for split/expand constructions."""

    def __init__(self, matrices: Sequence[LinearQueryMatrix]):
        self.matrices = [ensure_matrix(m) for m in matrices]
        if not self.matrices:
            raise ValueError("HStack requires at least one matrix")
        m_rows = self.matrices[0].shape[0]
        for m in self.matrices:
            if m.shape[0] != m_rows:
                raise ValueError("all stacked matrices must have the same row count")
        cols = sum(m.shape[1] for m in self.matrices)
        self.shape = (m_rows, cols)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        out = np.zeros(self.shape[0])
        offset = 0
        for m in self.matrices:
            cols = m.shape[1]
            out += m.matvec(v[offset : offset + cols])
            offset += cols
        return out

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return np.concatenate([m.rmatvec(v) for m in self.matrices])

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        out = np.zeros((self.shape[0], B.shape[1]))
        offset = 0
        for m in self.matrices:
            cols = m.shape[1]
            out += m._matmat(B[offset : offset + cols])
            offset += cols
        return out

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return np.concatenate([m._rmatmat(B) for m in self.matrices], axis=0)

    def __abs__(self) -> LinearQueryMatrix:
        return HStack([abs(m) for m in self.matrices])

    def square(self) -> LinearQueryMatrix:
        return HStack([m.square() for m in self.matrices])

    def dense(self) -> np.ndarray:
        return np.hstack([m.dense() for m in self.matrices])

    def sparse(self) -> sp.csr_matrix:
        return sp.hstack([m.sparse() for m in self.matrices], format="csr")

    def _build_strategy_key(self) -> tuple:
        return ("HStack", tuple(m.strategy_key() for m in self.matrices))


class Product(LinearQueryMatrix):
    """Lazy matrix product ``A @ B``."""

    def __init__(self, left: LinearQueryMatrix, right: LinearQueryMatrix):
        self.left = ensure_matrix(left)
        self.right = ensure_matrix(right)
        if self.left.shape[1] != self.right.shape[0]:
            raise ValueError(
                f"incompatible shapes for product: {self.left.shape} @ {self.right.shape}"
            )
        self.shape = (self.left.shape[0], self.right.shape[1])

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self.left.matvec(self.right.matvec(v))

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self.right.rmatvec(self.left.rmatvec(v))

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self.left._matmat(self.right._matmat(B))

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self.right._rmatmat(self.left._rmatmat(B))

    @property
    def T(self) -> LinearQueryMatrix:
        return Product(self.right.T, self.left.T)

    def __abs__(self) -> LinearQueryMatrix:
        # |AB| != |A||B| in general; if both factors are entrywise non-negative
        # the product already equals its absolute value.  For binary-valued
        # products (e.g. range queries = Sparse x Prefix) callers rely on
        # is_nonnegative(); otherwise fall back to materialisation.
        if _is_nonnegative(self.left) and _is_nonnegative(self.right):
            return self
        return super().__abs__()

    def square(self) -> LinearQueryMatrix:
        if _is_binary(self):
            return self
        return super().square()

    def dense(self) -> np.ndarray:
        return self.left.dense() @ self.right.dense()

    def sparse(self) -> sp.csr_matrix:
        return (self.left.sparse() @ self.right.sparse()).tocsr()

    def gram_sparse(self) -> sp.csr_matrix:
        # (AB).T (AB) = B.T (A.T A) B: reuse the left factor's (possibly
        # closed-form) Gram instead of materialising the product itself.
        right = self.right.sparse()
        return (right.T @ self.left.gram_sparse() @ right).tocsr()

    def gram_nnz_estimate(self) -> int:
        # A diagonal left factor (the row-weighting Product that
        # least-squares builds for non-uniform weights) rescales rows without
        # changing the Gram's sparsity pattern, so the right factor's bound
        # carries over — weighted solves keep the sparse fast path.
        if _is_diagonal(self.left):
            return self.right.gram_nnz_estimate()
        return super().gram_nnz_estimate()

    def _build_strategy_key(self) -> tuple:
        return ("Product", self.left.strategy_key(), self.right.strategy_key())


class Weighted(LinearQueryMatrix):
    """Scalar multiple ``c * A`` of a matrix (used for noise weighting)."""

    def __init__(self, base: LinearQueryMatrix, weight: float):
        self.base = ensure_matrix(base)
        self.weight = float(weight)
        self.shape = self.base.shape

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self.weight * self.base.matvec(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self.weight * self.base.rmatvec(v)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self.weight * self.base._matmat(B)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self.weight * self.base._rmatmat(B)

    @property
    def T(self) -> LinearQueryMatrix:
        return Weighted(self.base.T, self.weight)

    def __abs__(self) -> LinearQueryMatrix:
        return Weighted(abs(self.base), abs(self.weight))

    def square(self) -> LinearQueryMatrix:
        return Weighted(self.base.square(), self.weight**2)

    def sensitivity(self) -> float:
        return abs(self.weight) * self.base.sensitivity()

    def sensitivity_l2(self) -> float:
        return abs(self.weight) * self.base.sensitivity_l2()

    def dense(self) -> np.ndarray:
        return self.weight * self.base.dense()

    def sparse(self) -> sp.csr_matrix:
        return (self.weight * self.base.sparse()).tocsr()

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        return self.weight**2 * self.base.gram_dense()

    def gram_sparse(self) -> sp.csr_matrix:
        return (self.weight**2 * self.base.gram_sparse()).tocsr()

    def gram_nnz_estimate(self) -> int:
        return self.base.gram_nnz_estimate()

    def _build_strategy_key(self) -> tuple:
        return ("Weighted", self.weight, self.base.strategy_key())

    def row(self, i: int) -> np.ndarray:
        return self.weight * self.base.row(i)


class Kronecker(LinearQueryMatrix):
    """Kronecker product ``A_1 (x) A_2 (x) ... (x) A_d``.

    For multi-dimensional domains the data vector is the flattening (row-major)
    of a ``d``-dimensional histogram; the Kronecker product of per-attribute
    query matrices encodes conjunctive combinations of the per-attribute
    queries (Definition 7.2).
    """

    def __init__(self, factors: Sequence[LinearQueryMatrix]):
        self.factors = [ensure_matrix(f) for f in factors]
        if not self.factors:
            raise ValueError("Kronecker requires at least one factor")
        rows = 1
        cols = 1
        for f in self.factors:
            rows *= f.shape[0]
            cols *= f.shape[1]
        self.shape = (rows, cols)

    def _apply_factors(self, block: np.ndarray, transpose: bool) -> np.ndarray:
        """Tensor contraction behind matvec/rmatvec/matmat/rmatmat.

        ``block`` has shape ``(n, k)`` (or ``(m, k)`` when ``transpose``); the
        ``k`` right-hand sides ride along as a trailing tensor axis so every
        factor is applied to all columns in one vectorized call.
        """
        k = block.shape[1]
        in_shape = tuple(f.shape[0 if transpose else 1] for f in self.factors)
        tensor = block.reshape(in_shape + (k,))
        # Apply factor i along axis i: move axis to front, flatten the rest,
        # multiply, and move back.  This is the standard multi-linear product.
        for axis, factor in enumerate(self.factors):
            applied = factor.T if transpose else factor
            tensor = np.moveaxis(tensor, axis, 0)
            lead = tensor.shape[0]
            rest = tensor.shape[1:]
            flat = tensor.reshape(lead, -1)
            flat = applied.matmat(flat)
            tensor = flat.reshape((applied.shape[0],) + rest)
            tensor = np.moveaxis(tensor, 0, axis)
        out_rows = self.shape[1] if transpose else self.shape[0]
        return tensor.reshape(out_rows, k)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        return self._apply_factors(v.reshape(-1, 1), transpose=False).ravel()

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        return self._apply_factors(v.reshape(-1, 1), transpose=True).ravel()

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self._apply_factors(B, transpose=False)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self._apply_factors(B, transpose=True)

    @property
    def T(self) -> LinearQueryMatrix:
        return Kronecker([f.T for f in self.factors])

    def __abs__(self) -> LinearQueryMatrix:
        return Kronecker([abs(f) for f in self.factors])

    def square(self) -> LinearQueryMatrix:
        return Kronecker([f.square() for f in self.factors])

    def sensitivity(self) -> float:
        # ||A (x) B||_1 = ||A||_1 * ||B||_1 (max abs column sums multiply).
        result = 1.0
        for f in self.factors:
            result *= f.sensitivity()
        return result

    def sensitivity_l2(self) -> float:
        result = 1.0
        for f in self.factors:
            result *= f.sensitivity_l2()
        return result

    #: Maximum number of elements :meth:`dense` may materialise.  Roughly 512 MB
    #: of float64; override on the class or an instance to raise/lower the cap,
    #: or set to ``None`` to disable the check entirely.
    dense_cell_budget: int | None = 64_000_000

    def _check_dense_budget(self, cells: int) -> None:
        budget = self.dense_cell_budget
        if budget is not None and cells > budget:
            total = self.shape[0] * self.shape[1]
            raise ValueError(
                f"Kronecker.dense() would materialise {cells:,} elements "
                f"(full product: {total:,} = {self.shape[0]} x {self.shape[1]}), "
                f"exceeding the cell budget of {budget:,}.  Keep the matrix "
                "implicit, or raise Kronecker.dense_cell_budget if you really "
                "want the dense array."
            )

    def dense(self) -> np.ndarray:
        cells = self.factors[0].shape[0] * self.factors[0].shape[1]
        self._check_dense_budget(cells)
        out = self.factors[0].dense()
        for f in self.factors[1:]:
            cells *= f.shape[0] * f.shape[1]
            self._check_dense_budget(cells)
            out = np.kron(out, f.dense())
        return out

    def sparse(self) -> sp.csr_matrix:
        out = self.factors[0].sparse()
        for f in self.factors[1:]:
            out = sp.kron(out, f.sparse(), format="csr")
        return out.tocsr()

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        # (A ⊗ B).T (A ⊗ B) = (A.T A) ⊗ (B.T B): compose the factor Grams
        # instead of driving n basis columns through the tensor contraction.
        out = self.factors[0].gram_dense()
        for f in self.factors[1:]:
            out = np.kron(out, f.gram_dense())
        return out

    def gram_sparse(self) -> sp.csr_matrix:
        out = self.factors[0].gram_sparse()
        for f in self.factors[1:]:
            out = sp.kron(out, f.gram_sparse(), format="csr")
        return out.tocsr()

    def gram_nnz_estimate(self) -> int:
        n = self.shape[1]
        estimate = 1
        for f in self.factors:
            estimate *= f.gram_nnz_estimate()
        return int(min(n * n, estimate))

    def _build_strategy_key(self) -> tuple:
        return ("Kronecker", tuple(f.strategy_key() for f in self.factors))


def _is_diagonal(matrix: LinearQueryMatrix) -> bool:
    """Structural check that a matrix is square diagonal."""
    from .core import Identity
    from .dense import SparseMatrix

    if isinstance(matrix, Identity):
        return True
    if isinstance(matrix, Weighted):
        return _is_diagonal(matrix.base)
    if isinstance(matrix, SparseMatrix) and matrix.shape[0] == matrix.shape[1]:
        mat = matrix.matrix
        return mat.nnz <= mat.shape[0] and (mat - sp.diags(mat.diagonal())).nnz == 0
    return False


def _is_nonnegative(matrix: LinearQueryMatrix) -> bool:
    """Best-effort structural check that a matrix has no negative entries."""
    from .core import Identity, Ones, Prefix, Suffix

    if isinstance(matrix, (Identity, Ones, Prefix, Suffix)):
        return True
    if isinstance(matrix, Weighted):
        return matrix.weight >= 0 and _is_nonnegative(matrix.base)
    if isinstance(matrix, (VStack, HStack)):
        return all(_is_nonnegative(m) for m in matrix.matrices)
    if isinstance(matrix, Kronecker):
        return all(_is_nonnegative(f) for f in matrix.factors)
    if isinstance(matrix, Product):
        return _is_nonnegative(matrix.left) and _is_nonnegative(matrix.right)
    if hasattr(matrix, "matrix"):
        return bool((matrix.matrix >= 0).sum() == np.prod(matrix.shape))
    if hasattr(matrix, "array"):
        return bool(np.all(matrix.array >= 0))
    return False


def _is_binary(matrix: LinearQueryMatrix) -> bool:
    """Structural check used to make abs/square no-ops on 0/1-valued products.

    A product such as ``Sparse({-1, 0, 1}) @ Prefix`` that encodes range
    queries has only 0/1 entries even though its factors do not, so the
    range-query classes set ``_binary_valued`` explicitly.
    """
    return bool(getattr(matrix, "_binary_valued", False))
