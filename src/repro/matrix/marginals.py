"""Marginal workloads as Kronecker products (Example 7.5).

Any marginal over a multi-dimensional domain is a Kronecker product whose
factors are ``Identity`` for attributes kept and ``Total`` for attributes
summed out.  A collection of marginals is the union (vertical stack) of such
products.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from .base import LinearQueryMatrix
from .combinators import Kronecker, VStack
from .core import Identity, Total


def marginal(domain: Sequence[int], keep: Iterable[int]) -> LinearQueryMatrix:
    """The marginal over the attributes in ``keep``.

    Parameters
    ----------
    domain:
        Sizes of each attribute's domain, in axis order.
    keep:
        Indices of the attributes retained in the marginal; all other
        attributes are aggregated with a ``Total`` factor.
    """
    keep_set = set(int(k) for k in keep)
    for k in keep_set:
        if not 0 <= k < len(domain):
            raise ValueError(f"attribute index {k} outside domain of {len(domain)} attributes")
    factors: list[LinearQueryMatrix] = []
    for axis, size in enumerate(domain):
        if axis in keep_set:
            factors.append(Identity(size))
        else:
            factors.append(Total(size))
    return Kronecker(factors)


def all_kway_marginals(domain: Sequence[int], k: int) -> LinearQueryMatrix:
    """Union of all ``k``-way marginals of the domain."""
    if not 0 <= k <= len(domain):
        raise ValueError("k must be between 0 and the number of attributes")
    parts = [marginal(domain, keep) for keep in combinations(range(len(domain)), k)]
    if not parts:
        raise ValueError("no marginals generated")
    if len(parts) == 1:
        return parts[0]
    return VStack(parts)


def all_marginals_up_to(domain: Sequence[int], max_k: int) -> LinearQueryMatrix:
    """Union of all marginals of order 0..``max_k`` (inclusive)."""
    parts = []
    for k in range(0, max_k + 1):
        for keep in combinations(range(len(domain)), k):
            parts.append(marginal(domain, keep))
    if len(parts) == 1:
        return parts[0]
    return VStack(parts)
