"""Core implicit matrices (Table 2 of the paper).

Each core matrix stores O(1) state (essentially just its dimensions) yet
supports matrix-vector products in O(n) or O(n log n) time:

============  ===========  ==================
Core matrix   Space usage  Time (matvec)
============  ===========  ==================
Identity      O(1)         O(n)
Ones          O(1)         O(m + n)
Total         O(1)         O(n)
Prefix        O(1)         O(n)
Suffix        O(1)         O(n)
Wavelet       O(1)         O(n log n)
============  ===========  ==================
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from .base import LinearQueryMatrix


class Identity(LinearQueryMatrix):
    """The ``n x n`` identity matrix: measures every cell of the data vector."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("Identity requires a positive domain size")
        self.n = int(n)
        self.shape = (self.n, self.n)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(v, dtype=np.float64).copy()

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(v, dtype=np.float64).copy()

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return B.copy()

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return B.copy()

    @property
    def T(self) -> LinearQueryMatrix:
        return self

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return self

    def sensitivity(self) -> float:
        return 1.0

    def sensitivity_l2(self) -> float:
        return 1.0

    def dense(self) -> np.ndarray:
        return np.eye(self.n)

    def sparse(self) -> sp.csr_matrix:
        return sp.identity(self.n, format="csr")

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        return np.eye(self.n)

    def gram_sparse(self) -> sp.csr_matrix:
        return sp.identity(self.n, format="csr")

    def gram_nnz_estimate(self) -> int:
        return self.n

    def _build_strategy_key(self) -> tuple:
        return ("Identity", self.n)


class Ones(LinearQueryMatrix):
    """The ``m x n`` all-ones matrix.

    Every row is the total query; useful as a building block and as the
    expansion of a uniformity assumption.
    """

    def __init__(self, m: int, n: int):
        if m <= 0 or n <= 0:
            raise ValueError("Ones requires positive dimensions")
        self.shape = (int(m), int(n))

    def matvec(self, v: np.ndarray) -> np.ndarray:
        total = float(np.sum(v))
        return np.full(self.shape[0], total)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        total = float(np.sum(v))
        return np.full(self.shape[1], total)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return np.tile(B.sum(axis=0), (self.shape[0], 1))

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return np.tile(B.sum(axis=0), (self.shape[1], 1))

    @property
    def T(self) -> LinearQueryMatrix:
        return Ones(self.shape[1], self.shape[0])

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return self

    def sensitivity(self) -> float:
        return float(self.shape[0])

    def sensitivity_l2(self) -> float:
        return float(np.sqrt(self.shape[0]))

    def dense(self) -> np.ndarray:
        return np.ones(self.shape)

    def sparse(self) -> sp.csr_matrix:
        # Built structurally: every row is the full index range, so the CSR
        # arrays are written directly without an (m, n) dense intermediate.
        m, n = self.shape
        return sp.csr_matrix(
            (np.ones(m * n), np.tile(np.arange(n), m), np.arange(0, m * n + 1, n)),
            shape=self.shape,
        )

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        # (Ones.T @ Ones)[i, j] = m for every i, j.
        return np.full((self.shape[1], self.shape[1]), float(self.shape[0]))

    def gram_sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(self.gram_dense())

    def _build_strategy_key(self) -> tuple:
        return ("Ones", self.shape)


class Total(Ones):
    """The ``1 x n`` total query — the special case of :class:`Ones` with m=1."""

    def __init__(self, n: int):
        super().__init__(1, n)


class Prefix(LinearQueryMatrix):
    """The ``n x n`` lower-triangular prefix-sum (empirical CDF) matrix.

    Row ``k`` sums cells ``0..k``.  Matrix-vector products are a single
    cumulative sum; the transpose is the :class:`Suffix` matrix.
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("Prefix requires a positive domain size")
        self.n = int(n)
        self.shape = (self.n, self.n)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return np.cumsum(np.asarray(v, dtype=np.float64))

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        # Suffix sums: (Prefix.T v)_j = sum_{k >= j} v_k
        return np.cumsum(np.asarray(v, dtype=np.float64)[::-1])[::-1]

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return np.cumsum(B, axis=0)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return np.cumsum(B[::-1], axis=0)[::-1]

    @property
    def T(self) -> LinearQueryMatrix:
        return Suffix(self.n)

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return self

    def sensitivity(self) -> float:
        return float(self.n)

    def sensitivity_l2(self) -> float:
        return float(np.sqrt(self.n))

    def dense(self) -> np.ndarray:
        return np.tril(np.ones((self.n, self.n)))

    def sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(np.tril(np.ones((self.n, self.n))))

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        # Columns i and j overlap in rows max(i, j)..n-1.
        idx = np.arange(self.n, dtype=np.float64)
        return self.n - np.maximum.outer(idx, idx)

    def _build_strategy_key(self) -> tuple:
        return ("Prefix", self.n)


class Suffix(LinearQueryMatrix):
    """The ``n x n`` upper-triangular suffix-sum matrix (transpose of Prefix)."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("Suffix requires a positive domain size")
        self.n = int(n)
        self.shape = (self.n, self.n)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return np.cumsum(np.asarray(v, dtype=np.float64)[::-1])[::-1]

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return np.cumsum(np.asarray(v, dtype=np.float64))

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return np.cumsum(B[::-1], axis=0)[::-1]

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return np.cumsum(B, axis=0)

    @property
    def T(self) -> LinearQueryMatrix:
        return Prefix(self.n)

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return self

    def sensitivity(self) -> float:
        return float(self.n)

    def sensitivity_l2(self) -> float:
        return float(np.sqrt(self.n))

    def dense(self) -> np.ndarray:
        return np.triu(np.ones((self.n, self.n)))

    def sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(np.triu(np.ones((self.n, self.n))))

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        # Columns i and j overlap in rows 0..min(i, j).
        idx = np.arange(self.n, dtype=np.float64)
        return np.minimum.outer(idx, idx) + 1.0

    def _build_strategy_key(self) -> tuple:
        return ("Suffix", self.n)


def _haar_matmat(B: np.ndarray) -> np.ndarray:
    """Apply the (unnormalised) Haar wavelet transform used by Privelet.

    Operates column-wise on a ``(n, k)`` block: the matrix has one row for the
    total plus, at each level, rows computing the difference between the sums
    of the left and right halves of each dyadic interval.  ``n`` must be a
    power of two.
    """
    B = np.asarray(B, dtype=np.float64)
    rows = [B.sum(axis=0, keepdims=True)]
    current = B
    while current.shape[0] > 1:
        half = current.shape[0] // 2
        pairs = current.reshape(half, 2, -1)
        rows.append(pairs[:, 0, :] - pairs[:, 1, :])
        current = pairs.sum(axis=1)
    # Order: coarse -> fine. Build output with total first, then levels from
    # coarsest (length-1 difference of halves) to finest.
    out = [rows[0]]
    for level in reversed(rows[1:]):
        out.append(level)
    return np.concatenate(out, axis=0)


def _haar_matvec(v: np.ndarray) -> np.ndarray:
    """1-D convenience wrapper around :func:`_haar_matmat`."""
    return _haar_matmat(np.asarray(v, dtype=np.float64).reshape(-1, 1)).ravel()


def _haar_rmatmat(U: np.ndarray, n: int) -> np.ndarray:
    """Transpose of :func:`_haar_matmat` applied to an ``(n, k)`` block."""
    U = np.asarray(U, dtype=np.float64)
    result = np.repeat(U[:1], n, axis=0)
    idx = 1
    size = 1
    width = n
    while width > 1:
        width //= 2
        coeffs = U[idx : idx + size]
        # Each coefficient at this level covers a block of 2*width cells:
        # +1 on the left half of the block, -1 on the right half.
        block = 2 * width
        signs = np.concatenate([np.ones(width), -np.ones(width)])
        result += np.repeat(coeffs, block, axis=0) * np.tile(signs, size)[:, np.newaxis]
        idx += size
        size *= 2
    return result


def _haar_rmatvec(u: np.ndarray, n: int) -> np.ndarray:
    """1-D convenience wrapper around :func:`_haar_rmatmat`."""
    return _haar_rmatmat(np.asarray(u, dtype=np.float64).reshape(-1, 1), n).ravel()


class HaarWavelet(LinearQueryMatrix):
    """The ``n x n`` Haar wavelet transform matrix (n a power of two).

    Used by the Privelet algorithm: its L1 sensitivity grows logarithmically
    with the domain size while still allowing exact reconstruction of any
    range query.
    """

    def __init__(self, n: int):
        n = int(n)
        if n <= 0 or (n & (n - 1)) != 0:
            raise ValueError("HaarWavelet requires n to be a positive power of two")
        self.n = n
        self.shape = (n, n)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        if len(v) != self.n:
            raise ValueError("dimension mismatch in HaarWavelet.matvec")
        return _haar_matvec(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        if len(v) != self.n:
            raise ValueError("dimension mismatch in HaarWavelet.rmatvec")
        return _haar_rmatvec(v, self.n)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return _haar_matmat(B)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return _haar_rmatmat(B, self.n)

    def sensitivity(self) -> float:
        # Every column has exactly one +/-1 entry at each of the log2(n)
        # difference levels plus the total row.
        return float(1 + np.log2(self.n))

    def dense(self) -> np.ndarray:
        return self.matmat(np.eye(self.n))

    def sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(self.dense())

    def _build_strategy_key(self) -> tuple:
        return ("HaarWavelet", self.n)
