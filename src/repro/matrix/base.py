"""Base classes for the implicit linear-query matrix engine.

EKTELO (Sec. 7) represents three kinds of objects as matrices over a data
vector ``x`` of length ``n``:

* workload matrices ``W`` (the queries the analyst ultimately wants),
* measurement matrices ``M`` (the queries actually asked of the private data),
* partition matrices ``P`` (linear transformations that reduce or split ``x``).

For large domains these matrices cannot be materialised.  The paper identifies
five *primitive methods* that every matrix object must support so that all
plan-level computations (query evaluation, sensitivity, inference, reduction)
can be carried out without materialisation:

1. matrix-vector product            (``matvec``)
2. transpose                        (``T`` / ``rmatvec``)
3. matrix multiplication            (``__matmul__`` returning a lazy Product)
4. element-wise absolute value      (``__abs__``)
5. element-wise square              (``square``)

This module defines :class:`LinearQueryMatrix`, the abstract base class of all
matrix objects in the reproduction, plus the lazy :class:`TransposeMatrix`
view.  Concrete core matrices live in :mod:`repro.matrix.core`, combinators in
:mod:`repro.matrix.combinators`, and explicit dense/sparse wrappers in
:mod:`repro.matrix.dense`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np
from scipy import sparse as sp
from scipy.sparse.linalg import LinearOperator

#: Column-block width used by the blocked materialisation helpers
#: (:meth:`LinearQueryMatrix.dense`, :meth:`LinearQueryMatrix.gram_dense`,
#: :meth:`LinearQueryMatrix.rows`).  Bounds scratch memory at
#: ``shape[0] * MATERIALISE_BLOCK`` doubles per block.
MATERIALISE_BLOCK = 4096

#: Cap on the scratch basis (``shape[0] * block`` cells, ~128 MB of float64)
#: used by :meth:`LinearQueryMatrix.rows`; the block width shrinks to stay
#: under it for matrices with very many rows.
_ROWS_SCRATCH_CELLS = 16_777_216

#: :meth:`LinearQueryMatrix.gram_auto` returns the sparse Gram when the
#: structural nnz estimate is at most this fraction of the full ``n * n``;
#: above it, CSR overhead (index storage, slower BLAS) loses to dense.
GRAM_DENSITY_THRESHOLD = 0.25


def _content_digest(*parts) -> str:
    """Short stable digest of ndarrays/values, for canonical strategy keys."""
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            digest.update(str(part.dtype).encode())
            digest.update(np.ascontiguousarray(part).tobytes())
        else:
            digest.update(repr(part).encode())
    return digest.hexdigest()[:16]


def _validate_operand(B: np.ndarray, expected_rows: int, op: str) -> np.ndarray:
    """Coerce a matmat/rmatmat operand to a float64 2-D array and check shape."""
    B = np.asarray(B, dtype=np.float64)
    if B.ndim == 1:
        raise ValueError(
            f"{op} requires a 2-D operand; got a 1-D array of length {B.shape[0]}. "
            "Use matvec/rmatvec for vectors, or reshape to a single-column matrix."
        )
    if B.ndim != 2:
        raise ValueError(f"{op} requires a 2-D operand; got ndim={B.ndim}")
    if B.shape[0] != expected_rows:
        raise ValueError(
            f"dimension mismatch in {op}: operand has {B.shape[0]} rows, "
            f"expected {expected_rows}"
        )
    return B


class LinearQueryMatrix:
    """A real matrix defined implicitly by its action on vectors.

    Subclasses must set :attr:`shape` (an ``(m, n)`` tuple) and implement
    :meth:`matvec` and :meth:`rmatvec`.  Everything else — sensitivity, query
    evaluation, Gram matrices, row extraction, materialisation — is derived
    from those primitives, mirroring Table 1 of the paper.

    **Vectorized primitive protocol.**  Multi-vector products go through the
    public :meth:`matmat` / :meth:`rmatmat` entry points, which validate the
    operand (2-D, float64, matching row count) and dispatch to the private
    :meth:`_matmat` / :meth:`_rmatmat` kernels.  The base kernels fall back to
    one matvec/rmatvec per column; every structured subclass overrides them
    with a single closed-form NumPy/BLAS call (e.g. ``cumsum(axis=0)`` for
    Prefix, a reshaped tensor contraction for Kronecker).  Subclasses override
    the underscore kernels only — never the public methods — so validation
    stays uniform across the hierarchy.
    """

    #: (rows, columns) of the represented matrix.
    shape: tuple[int, int]

    #: Opt out of numpy's ufunc dispatch so expressions such as
    #: ``ndarray @ matrix`` fall back to :meth:`__rmatmul__` instead of numpy
    #: trying (and failing) to coerce the implicit matrix into an array.
    __array_ufunc__ = None

    # ------------------------------------------------------------------
    # Primitive methods (subclasses override matvec/rmatvec at minimum).
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Return ``A @ v`` for a vector ``v`` of length ``self.shape[1]``."""
        raise NotImplementedError

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """Return ``A.T @ v`` for a vector ``v`` of length ``self.shape[0]``."""
        raise NotImplementedError

    @property
    def T(self) -> "LinearQueryMatrix":
        """Lazy transpose view (primitive method 2)."""
        return TransposeMatrix(self)

    def __matmul__(self, other):
        """Matrix product.

        ``A @ v`` with a 1-D array delegates to :meth:`matvec`; ``A @ B`` with
        another :class:`LinearQueryMatrix` returns a lazy product (primitive
        method 3).  2-D ndarrays are multiplied column-by-column.
        """
        from .combinators import Product
        from .dense import DenseMatrix

        if isinstance(other, LinearQueryMatrix):
            return Product(self, other)
        other = np.asarray(other)
        if other.ndim == 1:
            return self.matvec(other)
        if other.ndim == 2:
            return self.matmat(other)
        raise TypeError(f"cannot multiply LinearQueryMatrix by {type(other)!r}")

    def __rmatmul__(self, other):
        other = np.asarray(other)
        if other.ndim == 1:
            return self.rmatvec(other)
        if other.ndim == 2:
            # (B @ A) = (A.T @ B.T).T
            return self.rmatmat(other.T).T
        raise TypeError(f"cannot multiply {type(other)!r} by LinearQueryMatrix")

    def matmat(self, B: np.ndarray) -> np.ndarray:
        """Return the dense product ``A @ B`` for a 2-D ndarray ``B``."""
        B = _validate_operand(B, self.shape[1], "matmat")
        return self._matmat(B)

    def rmatmat(self, B: np.ndarray) -> np.ndarray:
        """Return the dense product ``A.T @ B`` for a 2-D ndarray ``B``."""
        B = _validate_operand(B, self.shape[0], "rmatmat")
        return self._rmatmat(B)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        """Kernel behind :meth:`matmat`; fallback is one matvec per column."""
        out = np.empty((self.shape[0], B.shape[1]), dtype=np.float64)
        for j in range(B.shape[1]):
            out[:, j] = self.matvec(B[:, j])
        return out

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        """Kernel behind :meth:`rmatmat`; fallback is one rmatvec per column."""
        out = np.empty((self.shape[1], B.shape[1]), dtype=np.float64)
        for j in range(B.shape[1]):
            out[:, j] = self.rmatvec(B[:, j])
        return out

    def __abs__(self) -> "LinearQueryMatrix":
        """Element-wise absolute value (primitive method 4).

        The generic fallback materialises; core matrices with non-negative
        entries override this as a no-op.
        """
        from .dense import SparseMatrix

        return SparseMatrix(abs(self.sparse()))

    def square(self) -> "LinearQueryMatrix":
        """Element-wise square (primitive method 5)."""
        from .dense import SparseMatrix

        mat = self.sparse()
        return SparseMatrix(mat.multiply(mat))

    # ------------------------------------------------------------------
    # Derived plan-level computations (Table 1).
    # ------------------------------------------------------------------
    def sensitivity(self) -> float:
        """L1 sensitivity: the maximum absolute column sum, ``||A||_1``.

        Computed as ``max(abs(A).T @ 1)`` using only primitive methods, so it
        works for implicit matrices without materialisation.
        """
        ones = np.ones(self.shape[0])
        return float(np.max(abs(self).rmatvec(ones)))

    def sensitivity_l2(self) -> float:
        """L2 sensitivity: the maximum column L2 norm, ``||A||_2``."""
        ones = np.ones(self.shape[0])
        return float(np.sqrt(np.max(self.square().rmatvec(ones))))

    def gram(self) -> "LinearQueryMatrix":
        """The Gram matrix ``A.T @ A`` as a lazy product."""
        from .combinators import Product

        return Product(self.T, self)

    def row(self, i: int) -> np.ndarray:
        """Materialise row ``i`` as a dense vector (``A.T @ e_i``)."""
        e = np.zeros(self.shape[0])
        e[i] = 1.0
        return self.rmatvec(e)

    def rows(self, indices, block_size: int = 256) -> np.ndarray:
        """Materialise several rows at once as a ``(len(indices), n)`` array.

        Rows are extracted in blocks through :meth:`rmatmat` (``A.T @ E`` for a
        block of standard basis columns ``E``), so structured matrices pay one
        vectorized kernel call per block instead of one interpreter-level
        rmatvec per row.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.intp))
        if indices.ndim != 1:
            raise ValueError("rows expects a 1-D collection of row indices")
        m = self.shape[0]
        if indices.size and (indices.min() < 0 or indices.max() >= m):
            raise IndexError("row index out of range")
        # Shrink the block so the scratch basis stays bounded even for
        # matrices with millions of rows.
        block_size = max(1, min(block_size, _ROWS_SCRATCH_CELLS // max(m, 1)))
        out = np.empty((indices.size, self.shape[1]), dtype=np.float64)
        basis = np.zeros((m, min(block_size, indices.size)))
        for lo in range(0, indices.size, block_size):
            chunk = indices[lo : lo + block_size]
            cols = np.arange(chunk.size)
            basis[chunk, cols] = 1.0
            out[lo : lo + chunk.size] = self.rmatmat(basis[:, : chunk.size]).T
            basis[chunk, cols] = 0.0
        return out

    def diag_gram(self) -> np.ndarray:
        """Column norms squared, i.e. ``diag(A.T A)``, via the square primitive."""
        return self.square().rmatvec(np.ones(self.shape[0]))

    def gram_dense(self, block_size: int = MATERIALISE_BLOCK) -> np.ndarray:
        """Materialise the Gram matrix ``A.T @ A`` as an ``(n, n)`` ndarray.

        Computed block-wise as ``A.T @ (A @ E)`` over column blocks of the
        identity, so scratch memory stays at ``m * block_size`` doubles even
        for tall-skinny measurement matrices.  This is the artifact the
        normal-equations least-squares fast path caches and shares.
        """
        n = self.shape[1]
        out = np.empty((n, n), dtype=np.float64)
        for lo in range(0, n, block_size):
            hi = min(lo + block_size, n)
            basis = np.zeros((n, hi - lo))
            basis[np.arange(lo, hi), np.arange(hi - lo)] = 1.0
            out[:, lo:hi] = self.rmatmat(self.matmat(basis))
        return out

    def gram_sparse(self) -> sp.csr_matrix:
        """The Gram matrix ``A.T @ A`` in CSR form.

        The generic fallback materialises the matrix (block-wise, through
        :meth:`sparse`) and multiplies in scipy's native CSR kernels.
        Structured subclasses override with closed forms that never touch an
        ``(m, n)`` scratch array: disjoint partitions sum to (scaled)
        diagonals, unions block-sum their children's Grams, Kronecker
        products factorise (``(A ⊗ B).T (A ⊗ B) = A.T A ⊗ B.T B``).
        """
        mat = self.sparse()
        return (mat.T @ mat).tocsr()

    def gram_nnz_estimate(self) -> int:
        """Cheap structural upper bound on ``nnz(A.T @ A)``.

        Used by :meth:`gram_auto` to decide sparse versus dense without
        building either.  The base class assumes the worst (a full ``n x n``
        Gram); structured subclasses tighten the bound from their metadata
        alone (group sizes, child estimates, factor products).
        """
        n = self.shape[1]
        return n * n

    def gram_auto(self, density_threshold: float = GRAM_DENSITY_THRESHOLD):
        """The Gram matrix in whichever representation fits its structure.

        Returns :meth:`gram_sparse` (CSR) when the structural nnz estimate is
        at most ``density_threshold`` of the full ``n * n``, otherwise the
        dense :meth:`gram_dense` ndarray.  This is the entry point the
        normal-equations inference path uses, so strategies with sparse Grams
        (disjoint partitions, identity measurements, Kronecker products of
        such) are factorised in sparse form end-to-end.
        """
        n = self.shape[1]
        if self.gram_nnz_estimate() <= density_threshold * n * n:
            return self.gram_sparse()
        return self.gram_dense()

    def strategy_key(self) -> tuple:
        """Canonical hashable key identifying this matrix's *content*.

        Two matrices representing the same real matrix through the same
        construction produce equal keys, so the key can address shared
        data-independent artifacts (Gram factorisations, sensitivities) in the
        service's ``ArtifactCache`` across requests and tenants.  Structured
        classes build keys from O(1)/O(n) metadata; this generic fallback
        digests the materialised CSR content, which is correct for any
        subclass but costs a materialisation — override
        :meth:`_build_strategy_key` on new matrix classes that will be used
        as service strategies.  Matrix objects are treated as immutable, so
        keys are memoised per instance and later lookups are free.

        Subclasses override :meth:`_build_strategy_key`, never this method,
        so the memoisation stays uniform across the hierarchy.
        """
        key = self.__dict__.get("_strategy_key_cache")
        if key is None:
            key = self._build_strategy_key()
            self.__dict__["_strategy_key_cache"] = key
        return key

    def _build_strategy_key(self) -> tuple:
        """Kernel behind :meth:`strategy_key`; the content-digest fallback."""
        mat = self.sparse().tocsr()
        mat.sum_duplicates()
        return (
            "raw",
            type(self).__name__,
            self.shape,
            _content_digest(mat.data, mat.indices, mat.indptr),
        )

    # ------------------------------------------------------------------
    # Materialisation and interoperability.
    # ------------------------------------------------------------------
    def dense(self) -> np.ndarray:
        """Materialise to a dense ndarray via blocked :meth:`matmat` calls."""
        m, n = self.shape
        if n <= MATERIALISE_BLOCK:
            return self.matmat(np.eye(n))
        out = np.empty((m, n), dtype=np.float64)
        for lo in range(0, n, MATERIALISE_BLOCK):
            hi = min(lo + MATERIALISE_BLOCK, n)
            basis = np.zeros((n, hi - lo))
            basis[np.arange(lo, hi), np.arange(hi - lo)] = 1.0
            out[:, lo:hi] = self.matmat(basis)
        return out

    def sparse(self) -> sp.csr_matrix:
        """Materialise to a scipy CSR matrix.

        Converts column blocks as they are produced, so dense scratch stays at
        ``m * MATERIALISE_BLOCK`` doubles instead of the full ``(m, n)`` array
        the old ``csr_matrix(self.dense())`` fallback allocated.
        """
        m, n = self.shape
        if n <= MATERIALISE_BLOCK:
            return sp.csr_matrix(self.dense())
        blocks = []
        for lo in range(0, n, MATERIALISE_BLOCK):
            hi = min(lo + MATERIALISE_BLOCK, n)
            basis = np.zeros((n, hi - lo))
            basis[np.arange(lo, hi), np.arange(hi - lo)] = 1.0
            blocks.append(sp.csc_matrix(self.matmat(basis)))
        return sp.hstack(blocks, format="csr")

    def as_linear_operator(self) -> LinearOperator:
        """Bridge to :class:`scipy.sparse.linalg.LinearOperator`.

        Used by the iterative inference operators (LSMR, L-BFGS-B gradients).
        The matmat/rmatmat hooks are wired through so scipy solvers that
        operate on multiple right-hand sides hit the vectorized kernels.
        """
        return LinearOperator(
            shape=self.shape,
            matvec=self.matvec,
            rmatvec=self.rmatvec,
            matmat=self.matmat,
            rmatmat=self.rmatmat,
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        """Number of rows (queries) in the matrix."""
        return self.shape[0]

    @property
    def domain_size(self) -> int:
        """Number of columns (cells of the data vector)."""
        return self.shape[1]

    def __mul__(self, scalar):
        from .combinators import Weighted

        if np.isscalar(scalar):
            return Weighted(self, float(scalar))
        return NotImplemented

    __rmul__ = __mul__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shape={self.shape})"


class TransposeMatrix(LinearQueryMatrix):
    """Lazy transpose view of another :class:`LinearQueryMatrix`."""

    def __init__(self, base: LinearQueryMatrix):
        self.base = base
        self.shape = (base.shape[1], base.shape[0])

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self.base.rmatvec(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self.base.matvec(v)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self.base._rmatmat(B)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self.base._matmat(B)

    @property
    def T(self) -> LinearQueryMatrix:
        return self.base

    def __abs__(self) -> LinearQueryMatrix:
        return TransposeMatrix(abs(self.base))

    def square(self) -> LinearQueryMatrix:
        return TransposeMatrix(self.base.square())

    def dense(self) -> np.ndarray:
        return self.base.dense().T

    def sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(self.base.sparse().T)

    def _build_strategy_key(self) -> tuple:
        return ("transpose", self.base.strategy_key())


def ensure_matrix(obj) -> LinearQueryMatrix:
    """Coerce ndarrays / scipy sparse matrices into :class:`LinearQueryMatrix`."""
    from .dense import DenseMatrix, SparseMatrix

    if isinstance(obj, LinearQueryMatrix):
        return obj
    if sp.issparse(obj):
        return SparseMatrix(obj)
    arr = np.asarray(obj, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D array-like to build a matrix")
    return DenseMatrix(arr)


def stack_all(matrices: Iterable[LinearQueryMatrix]) -> LinearQueryMatrix:
    """Union (vertical stack) of an iterable of matrices.

    Mirrors the paper's n-ary ``Union(A, B, C)`` shorthand for nested binary
    unions; implemented directly as an n-ary :class:`~repro.matrix.combinators.VStack`.
    """
    from .combinators import VStack

    mats = [ensure_matrix(m) for m in matrices]
    if not mats:
        raise ValueError("cannot stack an empty collection of matrices")
    if len(mats) == 1:
        return mats[0]
    return VStack(mats)
