"""Base classes for the implicit linear-query matrix engine.

EKTELO (Sec. 7) represents three kinds of objects as matrices over a data
vector ``x`` of length ``n``:

* workload matrices ``W`` (the queries the analyst ultimately wants),
* measurement matrices ``M`` (the queries actually asked of the private data),
* partition matrices ``P`` (linear transformations that reduce or split ``x``).

For large domains these matrices cannot be materialised.  The paper identifies
five *primitive methods* that every matrix object must support so that all
plan-level computations (query evaluation, sensitivity, inference, reduction)
can be carried out without materialisation:

1. matrix-vector product            (``matvec``)
2. transpose                        (``T`` / ``rmatvec``)
3. matrix multiplication            (``__matmul__`` returning a lazy Product)
4. element-wise absolute value      (``__abs__``)
5. element-wise square              (``square``)

This module defines :class:`LinearQueryMatrix`, the abstract base class of all
matrix objects in the reproduction, plus the lazy :class:`TransposeMatrix`
view.  Concrete core matrices live in :mod:`repro.matrix.core`, combinators in
:mod:`repro.matrix.combinators`, and explicit dense/sparse wrappers in
:mod:`repro.matrix.dense`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from scipy import sparse as sp
from scipy.sparse.linalg import LinearOperator


class LinearQueryMatrix:
    """A real matrix defined implicitly by its action on vectors.

    Subclasses must set :attr:`shape` (an ``(m, n)`` tuple) and implement
    :meth:`matvec` and :meth:`rmatvec`.  Everything else — sensitivity, query
    evaluation, Gram matrices, row extraction, materialisation — is derived
    from those primitives, mirroring Table 1 of the paper.
    """

    #: (rows, columns) of the represented matrix.
    shape: tuple[int, int]

    #: Opt out of numpy's ufunc dispatch so expressions such as
    #: ``ndarray @ matrix`` fall back to :meth:`__rmatmul__` instead of numpy
    #: trying (and failing) to coerce the implicit matrix into an array.
    __array_ufunc__ = None

    # ------------------------------------------------------------------
    # Primitive methods (subclasses override matvec/rmatvec at minimum).
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Return ``A @ v`` for a vector ``v`` of length ``self.shape[1]``."""
        raise NotImplementedError

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """Return ``A.T @ v`` for a vector ``v`` of length ``self.shape[0]``."""
        raise NotImplementedError

    @property
    def T(self) -> "LinearQueryMatrix":
        """Lazy transpose view (primitive method 2)."""
        return TransposeMatrix(self)

    def __matmul__(self, other):
        """Matrix product.

        ``A @ v`` with a 1-D array delegates to :meth:`matvec`; ``A @ B`` with
        another :class:`LinearQueryMatrix` returns a lazy product (primitive
        method 3).  2-D ndarrays are multiplied column-by-column.
        """
        from .combinators import Product
        from .dense import DenseMatrix

        if isinstance(other, LinearQueryMatrix):
            return Product(self, other)
        other = np.asarray(other)
        if other.ndim == 1:
            return self.matvec(other)
        if other.ndim == 2:
            return self.matmat(other)
        raise TypeError(f"cannot multiply LinearQueryMatrix by {type(other)!r}")

    def __rmatmul__(self, other):
        other = np.asarray(other)
        if other.ndim == 1:
            return self.rmatvec(other)
        if other.ndim == 2:
            # (B @ A) = (A.T @ B.T).T
            return self.T.matmat(other.T).T
        raise TypeError(f"cannot multiply {type(other)!r} by LinearQueryMatrix")

    def matmat(self, B: np.ndarray) -> np.ndarray:
        """Return the dense product ``A @ B`` for a 2-D ndarray ``B``."""
        B = np.asarray(B)
        out = np.empty((self.shape[0], B.shape[1]))
        for j in range(B.shape[1]):
            out[:, j] = self.matvec(B[:, j])
        return out

    def __abs__(self) -> "LinearQueryMatrix":
        """Element-wise absolute value (primitive method 4).

        The generic fallback materialises; core matrices with non-negative
        entries override this as a no-op.
        """
        from .dense import SparseMatrix

        return SparseMatrix(abs(self.sparse()))

    def square(self) -> "LinearQueryMatrix":
        """Element-wise square (primitive method 5)."""
        from .dense import SparseMatrix

        mat = self.sparse()
        return SparseMatrix(mat.multiply(mat))

    # ------------------------------------------------------------------
    # Derived plan-level computations (Table 1).
    # ------------------------------------------------------------------
    def sensitivity(self) -> float:
        """L1 sensitivity: the maximum absolute column sum, ``||A||_1``.

        Computed as ``max(abs(A).T @ 1)`` using only primitive methods, so it
        works for implicit matrices without materialisation.
        """
        ones = np.ones(self.shape[0])
        return float(np.max(abs(self).rmatvec(ones)))

    def sensitivity_l2(self) -> float:
        """L2 sensitivity: the maximum column L2 norm, ``||A||_2``."""
        ones = np.ones(self.shape[0])
        return float(np.sqrt(np.max(self.square().rmatvec(ones))))

    def gram(self) -> "LinearQueryMatrix":
        """The Gram matrix ``A.T @ A`` as a lazy product."""
        from .combinators import Product

        return Product(self.T, self)

    def row(self, i: int) -> np.ndarray:
        """Materialise row ``i`` as a dense vector (``A.T @ e_i``)."""
        e = np.zeros(self.shape[0])
        e[i] = 1.0
        return self.rmatvec(e)

    def diag_gram(self) -> np.ndarray:
        """Column norms squared, i.e. ``diag(A.T A)``, via the square primitive."""
        return self.square().rmatvec(np.ones(self.shape[0]))

    # ------------------------------------------------------------------
    # Materialisation and interoperability.
    # ------------------------------------------------------------------
    def dense(self) -> np.ndarray:
        """Materialise to a dense ndarray (column-by-column matvec)."""
        return self.matmat(np.eye(self.shape[1]))

    def sparse(self) -> sp.csr_matrix:
        """Materialise to a scipy CSR matrix."""
        return sp.csr_matrix(self.dense())

    def as_linear_operator(self) -> LinearOperator:
        """Bridge to :class:`scipy.sparse.linalg.LinearOperator`.

        Used by the iterative inference operators (LSMR, L-BFGS-B gradients).
        """
        return LinearOperator(
            shape=self.shape,
            matvec=self.matvec,
            rmatvec=self.rmatvec,
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        """Number of rows (queries) in the matrix."""
        return self.shape[0]

    @property
    def domain_size(self) -> int:
        """Number of columns (cells of the data vector)."""
        return self.shape[1]

    def __mul__(self, scalar):
        from .combinators import Weighted

        if np.isscalar(scalar):
            return Weighted(self, float(scalar))
        return NotImplemented

    __rmul__ = __mul__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shape={self.shape})"


class TransposeMatrix(LinearQueryMatrix):
    """Lazy transpose view of another :class:`LinearQueryMatrix`."""

    def __init__(self, base: LinearQueryMatrix):
        self.base = base
        self.shape = (base.shape[1], base.shape[0])

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self.base.rmatvec(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self.base.matvec(v)

    @property
    def T(self) -> LinearQueryMatrix:
        return self.base

    def __abs__(self) -> LinearQueryMatrix:
        return TransposeMatrix(abs(self.base))

    def square(self) -> LinearQueryMatrix:
        return TransposeMatrix(self.base.square())

    def dense(self) -> np.ndarray:
        return self.base.dense().T

    def sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(self.base.sparse().T)


def ensure_matrix(obj) -> LinearQueryMatrix:
    """Coerce ndarrays / scipy sparse matrices into :class:`LinearQueryMatrix`."""
    from .dense import DenseMatrix, SparseMatrix

    if isinstance(obj, LinearQueryMatrix):
        return obj
    if sp.issparse(obj):
        return SparseMatrix(obj)
    arr = np.asarray(obj, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D array-like to build a matrix")
    return DenseMatrix(arr)


def stack_all(matrices: Iterable[LinearQueryMatrix]) -> LinearQueryMatrix:
    """Union (vertical stack) of an iterable of matrices.

    Mirrors the paper's n-ary ``Union(A, B, C)`` shorthand for nested binary
    unions; implemented directly as an n-ary :class:`~repro.matrix.combinators.VStack`.
    """
    from .combinators import VStack

    mats = [ensure_matrix(m) for m in matrices]
    if not mats:
        raise ValueError("cannot stack an empty collection of matrices")
    if len(mats) == 1:
        return mats[0]
    return VStack(mats)
