"""Explicit (materialised) matrix wrappers.

These adapt numpy dense arrays and scipy sparse matrices to the
:class:`~repro.matrix.base.LinearQueryMatrix` interface so explicit and
implicit matrices can be combined freely inside plans, and so the benchmarks
can switch representations (dense / sparse / implicit) for the scalability
experiments of Sec. 10.2.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from .base import LinearQueryMatrix, _content_digest


class DenseMatrix(LinearQueryMatrix):
    """A :class:`LinearQueryMatrix` backed by a dense ndarray."""

    def __init__(self, array: np.ndarray):
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("DenseMatrix requires a 2-D array")
        self.array = array
        self.shape = array.shape

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self.array @ np.asarray(v, dtype=np.float64)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self.array.T @ np.asarray(v, dtype=np.float64)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self.array @ B

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self.array.T @ B

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        return self.array.T @ self.array

    def gram_sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(self.array.T @ self.array)

    def sensitivity_l2(self) -> float:
        return float(np.sqrt(np.max(np.einsum("ij,ij->j", self.array, self.array))))

    def _build_strategy_key(self) -> tuple:
        return ("Dense", self.shape, _content_digest(self.array))

    @property
    def T(self) -> LinearQueryMatrix:
        return DenseMatrix(self.array.T)

    def __abs__(self) -> LinearQueryMatrix:
        return DenseMatrix(np.abs(self.array))

    def square(self) -> LinearQueryMatrix:
        return DenseMatrix(self.array**2)

    def dense(self) -> np.ndarray:
        return self.array

    def sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(self.array)

    def row(self, i: int) -> np.ndarray:
        return self.array[i].copy()

    def rows(self, indices, block_size: int = 256) -> np.ndarray:
        return self.array[np.asarray(indices, dtype=np.intp)].copy()


class SparseMatrix(LinearQueryMatrix):
    """A :class:`LinearQueryMatrix` backed by a scipy sparse matrix (CSR)."""

    def __init__(self, matrix):
        if not sp.issparse(matrix):
            matrix = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
        self.matrix = matrix.tocsr().astype(np.float64)
        self.shape = self.matrix.shape

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(self.matrix @ np.asarray(v, dtype=np.float64)).ravel()

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(self.matrix.T @ np.asarray(v, dtype=np.float64)).ravel()

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return np.asarray(self.matrix @ B)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return np.asarray(self.matrix.T @ B)

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        return np.asarray((self.matrix.T @ self.matrix).todense())

    def gram_sparse(self) -> sp.csr_matrix:
        # A.T @ A natively in CSR — the structure never leaves sparse land.
        return (self.matrix.T @ self.matrix).tocsr()

    def sensitivity_l2(self) -> float:
        squared = self.matrix.multiply(self.matrix)
        return float(np.sqrt(np.max(np.asarray(squared.sum(axis=0)))))

    def gram_nnz_estimate(self) -> int:
        # Row i contributes at most nnz(row_i)^2 index pairs to the Gram.
        n = self.shape[1]
        row_nnz = np.diff(self.matrix.indptr)
        return int(min(n * n, np.sum(row_nnz.astype(np.int64) ** 2)))

    def _build_strategy_key(self) -> tuple:
        mat = self.matrix
        return ("Sparse", self.shape, _content_digest(mat.data, mat.indices, mat.indptr))

    @property
    def T(self) -> LinearQueryMatrix:
        return SparseMatrix(self.matrix.T.tocsr())

    def __abs__(self) -> LinearQueryMatrix:
        return SparseMatrix(abs(self.matrix))

    def square(self) -> LinearQueryMatrix:
        return SparseMatrix(self.matrix.multiply(self.matrix))

    def dense(self) -> np.ndarray:
        return self.matrix.toarray()

    def sparse(self) -> sp.csr_matrix:
        return self.matrix

    def row(self, i: int) -> np.ndarray:
        return np.asarray(self.matrix.getrow(i).todense()).ravel()

    def rows(self, indices, block_size: int = 256) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.intp)
        return np.asarray(self.matrix[indices].todense())

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self.matrix.nnz)
