"""Partition matrices and lossless workload/data reduction (Secs. 5.4 and 8).

A partition of the data vector's ``n`` cells into ``p`` groups is represented
by a ``p x n`` binary matrix ``P`` with exactly one 1 per column.  The
protected kernel applies ``P`` with ``V-ReduceByPartition`` (``x' = P x``) and
the client transforms workloads with the pseudo-inverse (``W' = W P+``).

Proposition 8.3 of the paper shows ``P+ = P.T D^{-1}`` where ``D`` is the
diagonal matrix of group sizes, and that the reduction is lossless when the
partition groups columns that the workload does not distinguish.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from .base import LinearQueryMatrix, _content_digest, ensure_matrix
from .combinators import Product


class ReductionMatrix(LinearQueryMatrix):
    """A ``p x n`` partition matrix built from a group-assignment vector.

    Parameters
    ----------
    groups:
        Integer array of length ``n``; ``groups[j]`` is the group index of
        cell ``j``.  Group labels need not be contiguous; they are relabelled
        to ``0..p-1`` preserving order of first appearance.
    """

    _binary_valued = True

    def __init__(self, groups: np.ndarray):
        groups = np.asarray(groups)
        if groups.ndim != 1:
            raise ValueError("group assignment must be a 1-D array")
        if groups.size == 0:
            raise ValueError("group assignment must be non-empty")
        # Relabel to dense 0..p-1 ids preserving order of first appearance.
        _, first_index, inverse = np.unique(groups, return_index=True, return_inverse=True)
        order = np.argsort(first_index)
        rank = np.empty_like(order)
        rank[order] = np.arange(len(order))
        self.groups = rank[inverse]
        self.num_groups = int(self.groups.max()) + 1
        self.n = int(groups.size)
        self.shape = (self.num_groups, self.n)
        self.group_sizes = np.bincount(self.groups, minlength=self.num_groups).astype(np.float64)
        self._csr_cache: sp.csr_matrix | None = None

    def _csr(self) -> sp.csr_matrix:
        """The partition's CSR form, built on first use and kept for reuse."""
        if self._csr_cache is None:
            self._csr_cache = self.sparse()
        return self._csr_cache

    def _group_sum(self, B: np.ndarray) -> np.ndarray:
        """Per-group row sums of a ``(n, k)`` block via the cached CSR product.

        Replaces the old unbuffered ``np.add.at`` scatter: scipy's CSR matmat
        kernel sums each group's rows in C order, which benchmarks 4-10x
        faster across block widths and domain sizes (and unlike a sorted
        ``reduceat`` it does not pay a random-gather copy of ``B``).
        """
        return np.asarray(self._csr() @ B)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        return np.bincount(self.groups, weights=v, minlength=self.num_groups)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        return v[self.groups]

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self._group_sum(B)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return B[self.groups]

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return self

    def sensitivity(self) -> float:
        # Exactly one 1 per column, so the reduction is a 1-stable transform.
        return 1.0

    def sensitivity_l2(self) -> float:
        # Each column holds a single 1, so its L2 norm equals its L1 norm.
        return 1.0

    def dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        out[self.groups, np.arange(self.n)] = 1.0
        return out

    def sparse(self) -> sp.csr_matrix:
        data = np.ones(self.n)
        return sp.csr_matrix((data, (self.groups, np.arange(self.n))), shape=self.shape)

    def gram_sparse(self) -> sp.csr_matrix:
        # (P.T P)[i, j] = 1 iff cells i and j share a group: a block-ones
        # matrix with sum(|g|^2) entries, built natively from the cached
        # n-nnz CSR (shared with the _group_sum matmat kernel).
        mat = self._csr()
        return (mat.T @ mat).tocsr()

    def gram_nnz_estimate(self) -> int:
        return int(np.sum(self.group_sizes.astype(np.int64) ** 2))

    def _build_strategy_key(self) -> tuple:
        return ("Reduction", self.n, _content_digest(self.groups))

    # ------------------------------------------------------------------
    # Reduction / expansion helpers (Prop. 8.3).
    # ------------------------------------------------------------------
    def pseudo_inverse(self) -> "ExpansionMatrix":
        """The Moore-Penrose pseudo-inverse ``P+ = P.T D^{-1}`` (n x p)."""
        return ExpansionMatrix(self)

    def reduce_vector(self, x: np.ndarray) -> np.ndarray:
        """Apply the partition to a data vector: ``x' = P x``."""
        return self.matvec(x)

    def expand_vector(self, x_reduced: np.ndarray) -> np.ndarray:
        """Spread reduced counts uniformly back over each group: ``x = P+ x'``."""
        x_reduced = np.asarray(x_reduced, dtype=np.float64)
        return (x_reduced / self.group_sizes)[self.groups]

    def reduce_workload(self, workload) -> LinearQueryMatrix:
        """Transform a workload onto the reduced domain: ``W' = W P+``."""
        return Product(ensure_matrix(workload), self.pseudo_inverse())

    def expand_workload(self, reduced_workload) -> LinearQueryMatrix:
        """Express a reduced-domain workload on the original domain: ``W = W' P``."""
        return Product(ensure_matrix(reduced_workload), self)

    def split_indices(self) -> list[np.ndarray]:
        """Cell indices of each group (used by V-SplitByPartition)."""
        order = np.argsort(self.groups, kind="stable")
        boundaries = np.searchsorted(self.groups[order], np.arange(self.num_groups + 1))
        return [order[boundaries[g] : boundaries[g + 1]] for g in range(self.num_groups)]

    @classmethod
    def identity(cls, n: int) -> "ReductionMatrix":
        """The trivial partition with one group per cell (no reduction)."""
        return cls(np.arange(n))

    @classmethod
    def single_group(cls, n: int) -> "ReductionMatrix":
        """The coarsest partition grouping every cell together."""
        return cls(np.zeros(n, dtype=int))

    @classmethod
    def from_group_list(cls, n: int, groups: list[np.ndarray]) -> "ReductionMatrix":
        """Build a partition from an explicit list of index arrays."""
        assignment = np.full(n, -1, dtype=int)
        for g, idx in enumerate(groups):
            idx = np.asarray(idx, dtype=int)
            if np.any(assignment[idx] != -1):
                raise ValueError("groups overlap")
            assignment[idx] = g
        if np.any(assignment == -1):
            raise ValueError("groups do not cover every cell")
        return cls(assignment)


class ExpansionMatrix(LinearQueryMatrix):
    """The ``n x p`` pseudo-inverse of a :class:`ReductionMatrix`."""

    def __init__(self, reduction: ReductionMatrix):
        self.reduction = reduction
        self.shape = (reduction.n, reduction.num_groups)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self.reduction.expand_vector(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        sums = np.bincount(self.reduction.groups, weights=v, minlength=self.reduction.num_groups)
        return sums / self.reduction.group_sizes

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return (B / self.reduction.group_sizes[:, np.newaxis])[self.reduction.groups]

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self.reduction._group_sum(B) / self.reduction.group_sizes[:, np.newaxis]

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return _SquaredExpansionMatrix(self.reduction)

    def dense(self) -> np.ndarray:
        return self.reduction.dense().T / self.reduction.group_sizes[np.newaxis, :]

    def sparse(self) -> sp.csr_matrix:
        # One entry of 1/|g| per row: the CSR arrays are exactly (scaled
        # data, the group assignment, a unit indptr) — no dense scratch.
        red = self.reduction
        data = 1.0 / red.group_sizes[red.groups]
        return sp.csr_matrix(
            (data, red.groups.copy(), np.arange(red.n + 1)), shape=self.shape
        )

    def gram_dense(self, block_size: int | None = None) -> np.ndarray:
        return np.diag(1.0 / self.reduction.group_sizes)

    def gram_sparse(self) -> sp.csr_matrix:
        # Columns are disjoint group indicators scaled by 1/|g|, so the Gram
        # is exactly diag(1/|g|).
        return sp.diags(1.0 / self.reduction.group_sizes, format="csr")

    def gram_nnz_estimate(self) -> int:
        return self.reduction.num_groups

    def _build_strategy_key(self) -> tuple:
        return ("Expansion", self.reduction.strategy_key())


class _SquaredExpansionMatrix(LinearQueryMatrix):
    """Element-wise square of an :class:`ExpansionMatrix`.

    Each non-zero ``1/|g|`` entry becomes ``1/|g|^2``.  A dedicated class (the
    seed patched bound methods onto an ExpansionMatrix instance, which the
    vectorized kernel protocol would silently bypass).
    """

    def __init__(self, reduction: ReductionMatrix):
        self.reduction = reduction
        self.shape = (reduction.n, reduction.num_groups)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        return (v / self.reduction.group_sizes**2)[self.reduction.groups]

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        sums = np.bincount(self.reduction.groups, weights=v, minlength=self.reduction.num_groups)
        return sums / self.reduction.group_sizes**2

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return (B / self.reduction.group_sizes[:, np.newaxis] ** 2)[self.reduction.groups]

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self.reduction._group_sum(B) / self.reduction.group_sizes[:, np.newaxis] ** 2

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def sparse(self) -> sp.csr_matrix:
        red = self.reduction
        data = 1.0 / red.group_sizes[red.groups] ** 2
        return sp.csr_matrix(
            (data, red.groups.copy(), np.arange(red.n + 1)), shape=self.shape
        )

    def gram_sparse(self) -> sp.csr_matrix:
        # Entries 1/|g|^2 on disjoint columns: Gram = diag(|g| / |g|^4).
        return sp.diags(1.0 / self.reduction.group_sizes**3, format="csr")

    def gram_nnz_estimate(self) -> int:
        return self.reduction.num_groups

    def _build_strategy_key(self) -> tuple:
        return ("SquaredExpansion", self.reduction.strategy_key())
