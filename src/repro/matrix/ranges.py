"""Range-query and hierarchical matrix constructions (Sec. 7.5).

A 1-D range query ``[i, j]`` sums cells ``i..j`` and can be written as the
difference of two prefix queries.  A workload of ``m`` range queries is
therefore representable as ``Product(Sparse, Prefix)`` where the sparse factor
has at most two non-zero entries per row — giving O(m + n) matvec time versus
O(m n) for explicit representations (Example 7.4 of the paper).

Hierarchical matrices (H2, HB, quadtrees, grids) are special collections of
range queries; they are represented as ``Union(Identity, Product(Sparse,
Prefix))`` following the paper's recommendation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import sparse as sp

from .base import LinearQueryMatrix, _content_digest
from .combinators import Kronecker, Product, VStack
from .core import Identity, Prefix
from .dense import SparseMatrix


class RangeQueries(LinearQueryMatrix):
    """A workload of 1-D range queries stored implicitly as ``Sparse x Prefix``.

    Parameters
    ----------
    n:
        Domain size.
    intervals:
        Iterable of ``(lo, hi)`` pairs with ``0 <= lo <= hi < n``; each pair is
        the inclusive range ``[lo, hi]``.
    """

    #: entries of the represented matrix are all 0/1 so abs and square are no-ops
    _binary_valued = True

    def __init__(self, n: int, intervals: Iterable[tuple[int, int]]):
        self.n = int(n)
        self.intervals = [(int(lo), int(hi)) for lo, hi in intervals]
        for lo, hi in self.intervals:
            if not (0 <= lo <= hi < self.n):
                raise ValueError(f"invalid range ({lo}, {hi}) for domain size {self.n}")
        if not self.intervals:
            raise ValueError("RangeQueries requires at least one interval")
        self.shape = (len(self.intervals), self.n)
        self._product = Product(self._difference_matrix(), Prefix(self.n))

    def _difference_matrix(self) -> SparseMatrix:
        """Sparse factor with +1 at column ``hi`` and -1 at column ``lo - 1``."""
        rows, cols, vals = [], [], []
        for i, (lo, hi) in enumerate(self.intervals):
            rows.append(i)
            cols.append(hi)
            vals.append(1.0)
            if lo > 0:
                rows.append(i)
                cols.append(lo - 1)
                vals.append(-1.0)
        mat = sp.csr_matrix((vals, (rows, cols)), shape=self.shape)
        return SparseMatrix(mat)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self._product.matvec(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self._product.rmatvec(v)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self._product._matmat(B)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self._product._rmatmat(B)

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return self

    def sensitivity(self) -> float:
        # Column j is covered by every interval containing j.
        counts = np.zeros(self.n)
        for lo, hi in self.intervals:
            counts[lo] += 1
            if hi + 1 < self.n:
                counts[hi + 1] -= 1
        return float(np.max(np.cumsum(counts)))

    def dense(self) -> np.ndarray:
        return self.rows(np.arange(self.shape[0]))

    def sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(self.dense())

    def row(self, i: int) -> np.ndarray:
        lo, hi = self.intervals[i]
        r = np.zeros(self.n)
        r[lo : hi + 1] = 1.0
        return r

    def rows(self, indices, block_size: int = 256) -> np.ndarray:
        # 0/1 indicator rows are written directly from the interval endpoints:
        # a +1/-1 boundary "paintbrush" cumsummed along each row is far cheaper
        # than routing basis vectors through Prefix.
        indices = np.atleast_1d(np.asarray(indices, dtype=np.intp))
        bounds = np.zeros((indices.size, self.n + 1))
        for r, i in enumerate(indices):
            lo, hi = self.intervals[i]
            bounds[r, lo] = 1.0
            bounds[r, hi + 1] = -1.0
        return np.cumsum(bounds[:, :-1], axis=1)

    def _build_strategy_key(self) -> tuple:
        return ("RangeQueries", self.n, _content_digest(np.asarray(self.intervals)))


def hierarchical_intervals(n: int, branching: int = 2) -> list[tuple[int, int]]:
    """Intervals of a complete ``branching``-ary hierarchy over ``[0, n)``.

    The root covers the whole domain; each node is recursively split into
    ``branching`` nearly-equal children; unit-length leaves are excluded (they
    are supplied by the Identity part of the hierarchical matrix).
    """
    if n <= 0:
        raise ValueError("domain size must be positive")
    if branching < 2:
        raise ValueError("branching factor must be at least 2")
    intervals: list[tuple[int, int]] = []
    frontier = [(0, n - 1)]
    while frontier:
        lo, hi = frontier.pop()
        length = hi - lo + 1
        if length <= 1:
            continue
        intervals.append((lo, hi))
        # Split [lo, hi] into `branching` nearly-equal children.
        edges = np.linspace(lo, hi + 1, branching + 1).astype(int)
        for k in range(branching):
            c_lo, c_hi = edges[k], edges[k + 1] - 1
            if c_hi >= c_lo:
                frontier.append((c_lo, c_hi))
    return intervals


class HierarchicalQueries(LinearQueryMatrix):
    """Hierarchical measurement matrix ``Union(Identity, RangeQueries(tree))``.

    This is the strategy used by the H2 (binary) and HB (optimised branching
    factor) algorithms.
    """

    _binary_valued = True

    def __init__(self, n: int, branching: int = 2):
        self.n = int(n)
        self.branching = int(branching)
        intervals = hierarchical_intervals(self.n, self.branching)
        parts: list[LinearQueryMatrix] = [Identity(self.n)]
        if intervals:
            parts.append(RangeQueries(self.n, intervals))
        self._union = VStack(parts)
        self.shape = self._union.shape

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self._union.matvec(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self._union.rmatvec(v)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self._union._matmat(B)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self._union._rmatmat(B)

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return self

    def dense(self) -> np.ndarray:
        return self._union.dense()

    def sparse(self) -> sp.csr_matrix:
        return self._union.sparse()

    def row(self, i: int) -> np.ndarray:
        return self._union.row(i)

    def rows(self, indices, block_size: int = 256) -> np.ndarray:
        return self._union.rows(indices, block_size=block_size)

    def gram_sparse(self) -> sp.csr_matrix:
        return self._union.gram_sparse()

    def gram_nnz_estimate(self) -> int:
        return self._union.gram_nnz_estimate()

    def _build_strategy_key(self) -> tuple:
        return ("Hierarchical", self.n, self.branching)


def optimal_branching_factor(n: int) -> int:
    """HB's heuristic: choose the branching factor minimising tree height cost.

    Qardaji et al. pick the branching factor ``b`` minimising the variance of
    answering range queries from a ``b``-ary hierarchy, approximately the value
    satisfying ``(b - 1) * log_b(n)`` minimal.  We search b in [2, 16].
    """
    n = max(int(n), 2)
    best_b, best_cost = 2, float("inf")
    for b in range(2, 17):
        height = int(np.ceil(np.log(n) / np.log(b)))
        cost = (b - 1) * height**3
        if cost < best_cost:
            best_b, best_cost = b, cost
    return best_b


def grid_intervals_2d(
    rows: int, cols: int, cell_rows: int, cell_cols: int
) -> list[tuple[int, int, int, int]]:
    """Axis-aligned rectangular blocks covering a ``rows x cols`` grid.

    Returns a list of ``(r_lo, r_hi, c_lo, c_hi)`` inclusive rectangles of a
    uniform grid with block size ``cell_rows x cell_cols``.
    """
    rects = []
    for r in range(0, rows, cell_rows):
        for c in range(0, cols, cell_cols):
            rects.append((r, min(r + cell_rows, rows) - 1, c, min(c + cell_cols, cols) - 1))
    return rects


class RangeQueries2D(LinearQueryMatrix):
    """Axis-aligned rectangle queries over a 2-D domain, stored implicitly.

    Each rectangle is the Kronecker-style conjunction of a row range and a
    column range, represented as ``Sparse x Kron(Prefix, Prefix)``.
    """

    _binary_valued = True

    def __init__(self, rows: int, cols: int, rects: Sequence[tuple[int, int, int, int]]):
        self.grid_rows = int(rows)
        self.grid_cols = int(cols)
        self.rects = [tuple(int(v) for v in r) for r in rects]
        if not self.rects:
            raise ValueError("RangeQueries2D requires at least one rectangle")
        for r_lo, r_hi, c_lo, c_hi in self.rects:
            if not (0 <= r_lo <= r_hi < self.grid_rows and 0 <= c_lo <= c_hi < self.grid_cols):
                raise ValueError("rectangle outside the domain")
        n = self.grid_rows * self.grid_cols
        self.shape = (len(self.rects), n)
        self._product = Product(
            self._corner_matrix(), Kronecker([Prefix(self.grid_rows), Prefix(self.grid_cols)])
        )

    def _corner_matrix(self) -> SparseMatrix:
        """2-D inclusion-exclusion corners: four +/-1 entries per rectangle."""
        rows_idx, cols_idx, vals = [], [], []

        def add(i: int, r: int, c: int, val: float) -> None:
            rows_idx.append(i)
            cols_idx.append(r * self.grid_cols + c)
            vals.append(val)

        for i, (r_lo, r_hi, c_lo, c_hi) in enumerate(self.rects):
            add(i, r_hi, c_hi, 1.0)
            if r_lo > 0:
                add(i, r_lo - 1, c_hi, -1.0)
            if c_lo > 0:
                add(i, r_hi, c_lo - 1, -1.0)
            if r_lo > 0 and c_lo > 0:
                add(i, r_lo - 1, c_lo - 1, 1.0)
        mat = sp.csr_matrix((vals, (rows_idx, cols_idx)), shape=self.shape)
        return SparseMatrix(mat)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self._product.matvec(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self._product.rmatvec(v)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        return self._product._matmat(B)

    def _rmatmat(self, B: np.ndarray) -> np.ndarray:
        return self._product._rmatmat(B)

    def __abs__(self) -> LinearQueryMatrix:
        return self

    def square(self) -> LinearQueryMatrix:
        return self

    def dense(self) -> np.ndarray:
        return self.rows(np.arange(self.shape[0]))

    def sparse(self) -> sp.csr_matrix:
        return sp.csr_matrix(self.dense())

    def row(self, i: int) -> np.ndarray:
        r_lo, r_hi, c_lo, c_hi = self.rects[i]
        block = np.zeros((self.grid_rows, self.grid_cols))
        block[r_lo : r_hi + 1, c_lo : c_hi + 1] = 1.0
        return block.ravel()

    def rows(self, indices, block_size: int = 256) -> np.ndarray:
        # Rectangle-indicator rows written directly from the corner coordinates.
        indices = np.atleast_1d(np.asarray(indices, dtype=np.intp))
        out = np.zeros((indices.size, self.grid_rows, self.grid_cols))
        for r, i in enumerate(indices):
            r_lo, r_hi, c_lo, c_hi = self.rects[i]
            out[r, r_lo : r_hi + 1, c_lo : c_hi + 1] = 1.0
        return out.reshape(indices.size, -1)

    def _build_strategy_key(self) -> tuple:
        return (
            "RangeQueries2D",
            self.grid_rows,
            self.grid_cols,
            _content_digest(np.asarray(self.rects)),
        )


def quadtree_rects(rows: int, cols: int, min_size: int = 1) -> list[tuple[int, int, int, int]]:
    """Rectangles of a quadtree decomposition of a 2-D grid.

    The root covers the whole grid; every node is split into four quadrants
    until blocks reach ``min_size`` in both dimensions.
    """
    rects: list[tuple[int, int, int, int]] = []
    frontier = [(0, rows - 1, 0, cols - 1)]
    while frontier:
        r_lo, r_hi, c_lo, c_hi = frontier.pop()
        rects.append((r_lo, r_hi, c_lo, c_hi))
        height = r_hi - r_lo + 1
        width = c_hi - c_lo + 1
        if height <= min_size and width <= min_size:
            continue
        r_mid = r_lo + height // 2
        c_mid = c_lo + width // 2
        children = []
        if height > min_size and width > min_size:
            children = [
                (r_lo, r_mid - 1, c_lo, c_mid - 1),
                (r_lo, r_mid - 1, c_mid, c_hi),
                (r_mid, r_hi, c_lo, c_mid - 1),
                (r_mid, r_hi, c_mid, c_hi),
            ]
        elif height > min_size:
            children = [(r_lo, r_mid - 1, c_lo, c_hi), (r_mid, r_hi, c_lo, c_hi)]
        elif width > min_size:
            children = [(r_lo, r_hi, c_lo, c_mid - 1), (r_lo, r_hi, c_mid, c_hi)]
        for child in children:
            if child[0] <= child[1] and child[2] <= child[3]:
                frontier.append(child)
    return rects
