"""Implicit linear-query matrix engine (reproduction of EKTELO Sec. 7).

The public surface of this subpackage:

* :class:`LinearQueryMatrix` — the abstract matrix interface (five primitive
  methods plus derived operations such as sensitivity and Gram matrices).
* Core matrices: :class:`Identity`, :class:`Ones`, :class:`Total`,
  :class:`Prefix`, :class:`Suffix`, :class:`HaarWavelet`.
* Explicit wrappers: :class:`DenseMatrix`, :class:`SparseMatrix`.
* Combinators: :class:`VStack` (union), :class:`HStack`, :class:`Product`,
  :class:`Kronecker`, :class:`Weighted`.
* Range-query constructions: :class:`RangeQueries`, :class:`RangeQueries2D`,
  :class:`HierarchicalQueries`.
* Marginals: :func:`marginal`, :func:`all_kway_marginals`.
* Partitions: :class:`ReductionMatrix`, :class:`ExpansionMatrix`.
"""

from .base import LinearQueryMatrix, TransposeMatrix, ensure_matrix, stack_all
from .combinators import HStack, Kronecker, Product, VStack, Weighted
from .core import HaarWavelet, Identity, Ones, Prefix, Suffix, Total
from .dense import DenseMatrix, SparseMatrix
from .marginals import all_kway_marginals, all_marginals_up_to, marginal
from .partition import ExpansionMatrix, ReductionMatrix
from .ranges import (
    HierarchicalQueries,
    RangeQueries,
    RangeQueries2D,
    grid_intervals_2d,
    hierarchical_intervals,
    optimal_branching_factor,
    quadtree_rects,
)

__all__ = [
    "LinearQueryMatrix",
    "TransposeMatrix",
    "ensure_matrix",
    "stack_all",
    "Identity",
    "Ones",
    "Total",
    "Prefix",
    "Suffix",
    "HaarWavelet",
    "DenseMatrix",
    "SparseMatrix",
    "VStack",
    "HStack",
    "Product",
    "Kronecker",
    "Weighted",
    "RangeQueries",
    "RangeQueries2D",
    "HierarchicalQueries",
    "hierarchical_intervals",
    "grid_intervals_2d",
    "quadtree_rects",
    "optimal_branching_factor",
    "marginal",
    "all_kway_marginals",
    "all_marginals_up_to",
    "ReductionMatrix",
    "ExpansionMatrix",
]
