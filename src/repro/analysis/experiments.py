"""Shared helpers for the benchmark harness (parameter sweeps, result tables).

The benchmarks under ``benchmarks/`` regenerate the paper's tables and
figures.  They all need the same plumbing: running a plan over several
datasets/epsilons/trials, collecting errors and runtimes, and printing aligned
tables.  Keeping that here keeps each benchmark focused on *what* it measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np


@dataclass
class TrialResult:
    """Error and runtime of one plan execution."""

    error: float
    runtime_seconds: float


@dataclass
class SweepResult:
    """Aggregated results of repeated trials for one experimental cell."""

    label: str
    errors: list[float] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)

    def add(self, trial: TrialResult) -> None:
        self.errors.append(trial.error)
        self.runtimes.append(trial.runtime_seconds)

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.errors)) if self.errors else float("nan")

    @property
    def mean_runtime(self) -> float:
        return float(np.mean(self.runtimes)) if self.runtimes else float("nan")

    def error_percentiles(self) -> tuple[float, float, float]:
        if not self.errors:
            return (float("nan"),) * 3
        return (
            float(np.min(self.errors)),
            float(np.mean(self.errors)),
            float(np.max(self.errors)),
        )


def run_trials(
    label: str,
    run_once: Callable[[int], float],
    trials: int = 3,
) -> SweepResult:
    """Run a plan ``trials`` times (seeded by trial index) and collect error/runtime."""
    sweep = SweepResult(label)
    for trial in range(trials):
        start = time.perf_counter()
        error = run_once(trial)
        elapsed = time.perf_counter() - start
        sweep.add(TrialResult(error=float(error), runtime_seconds=elapsed))
    return sweep


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table (the benchmarks print these)."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * widths[i] for i in range(len(headers)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    return "\n".join([line, separator, *body])


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0 or (1e-3 <= abs(cell) < 1e5):
            return f"{cell:.4g}"
        return f"{cell:.3e}"
    return str(cell)


def improvement_factors(baseline: Sequence[float], variant: Sequence[float]) -> np.ndarray:
    """Per-dataset improvement factors baseline/variant (>1 means the variant wins)."""
    baseline = np.asarray(baseline, dtype=np.float64)
    variant = np.asarray(variant, dtype=np.float64)
    return baseline / np.maximum(variant, 1e-15)
