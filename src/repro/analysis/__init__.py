"""Error metrics, classification utilities and experiment harness helpers."""

from .classify import (
    CrossValidationResult,
    NaiveBayesModel,
    cross_validate_auc,
    fit_naive_bayes_exact,
    fit_naive_bayes_from_histograms,
    majority_auc,
    roc_auc,
)
from .error import (
    expected_query_error,
    expected_workload_error,
    mean_absolute_error,
    measurement_noise_variance,
    per_query_l2_error,
    total_squared_error,
)
from .experiments import (
    SweepResult,
    TrialResult,
    format_table,
    improvement_factors,
    run_trials,
)

__all__ = [
    "per_query_l2_error",
    "mean_absolute_error",
    "total_squared_error",
    "expected_query_error",
    "expected_workload_error",
    "measurement_noise_variance",
    "NaiveBayesModel",
    "fit_naive_bayes_from_histograms",
    "fit_naive_bayes_exact",
    "roc_auc",
    "cross_validate_auc",
    "CrossValidationResult",
    "majority_auc",
    "SweepResult",
    "TrialResult",
    "run_trials",
    "format_table",
    "improvement_factors",
]
