"""Error metrics used in the paper's evaluation.

The evaluation reports *scaled, per-query L2 error*: the L2 norm of the
difference between true and estimated workload answers, divided by the number
of queries and by the number of records (the "scale"), so results are
comparable across domains and dataset sizes.  Expected-error formulas from the
matrix-mechanism literature (used by Theorem 5.3 / Theorem 8.4) are also
provided for analytic comparisons.
"""

from __future__ import annotations

import numpy as np

from ..matrix import LinearQueryMatrix, ensure_matrix


def per_query_l2_error(
    workload: LinearQueryMatrix,
    true_vector: np.ndarray,
    estimate: np.ndarray,
    scale: float | None = None,
) -> float:
    """Scaled per-query L2 error of a workload estimate.

    Parameters
    ----------
    workload:
        The workload matrix ``W``.
    true_vector:
        The true data vector ``x``.
    estimate:
        The estimated data vector ``x̂`` (same length as ``x``).
    scale:
        Normalising constant; defaults to the number of records ``sum(x)``.
    """
    workload = ensure_matrix(workload)
    true_vector = np.asarray(true_vector, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    difference = workload.matvec(estimate) - workload.matvec(true_vector)
    if scale is None:
        scale = max(float(true_vector.sum()), 1.0)
    return float(np.linalg.norm(difference) / (workload.shape[0] * scale))


def mean_absolute_error(
    workload: LinearQueryMatrix, true_vector: np.ndarray, estimate: np.ndarray
) -> float:
    """Mean absolute error over the workload's queries (unscaled)."""
    workload = ensure_matrix(workload)
    difference = workload.matvec(np.asarray(estimate, dtype=np.float64)) - workload.matvec(
        np.asarray(true_vector, dtype=np.float64)
    )
    return float(np.mean(np.abs(difference)))


def total_squared_error(
    workload: LinearQueryMatrix, true_vector: np.ndarray, estimate: np.ndarray
) -> float:
    """Total squared error over the workload's queries (unscaled)."""
    workload = ensure_matrix(workload)
    difference = workload.matvec(np.asarray(estimate, dtype=np.float64)) - workload.matvec(
        np.asarray(true_vector, dtype=np.float64)
    )
    return float(difference @ difference)


def expected_query_error(
    query: np.ndarray, strategy: LinearQueryMatrix, epsilon: float = 1.0
) -> float:
    """Expected squared error of one query answered via a strategy + least squares.

    Uses the matrix-mechanism formula ``2 ||A||_1^2 / eps^2 * q (A^T A)^+ q^T``
    (Laplace noise has variance ``2 b^2``).  Dense computation — intended for
    analytic unit tests on small domains (Theorems 5.3 and 8.4).
    """
    strategy = ensure_matrix(strategy)
    A = strategy.dense()
    gram_pinv = np.linalg.pinv(A.T @ A)
    q = np.asarray(query, dtype=np.float64)
    sensitivity = float(np.abs(A).sum(axis=0).max())
    return 2.0 * sensitivity**2 / epsilon**2 * float(q @ gram_pinv @ q)


def expected_workload_error(
    workload: LinearQueryMatrix, strategy: LinearQueryMatrix, epsilon: float = 1.0
) -> float:
    """Expected total squared error of a workload answered via a strategy."""
    workload = ensure_matrix(workload)
    W = workload.dense()
    return float(
        sum(expected_query_error(W[i], strategy, epsilon) for i in range(W.shape[0]))
    )
