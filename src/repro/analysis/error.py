"""Error metrics used in the paper's evaluation.

The evaluation reports *scaled, per-query L2 error*: the L2 norm of the
difference between true and estimated workload answers, divided by the number
of queries and by the number of records (the "scale"), so results are
comparable across domains and dataset sizes.  Expected-error formulas from the
matrix-mechanism literature (used by Theorem 5.3 / Theorem 8.4) are also
provided for analytic comparisons.

The expected-error functions are routed through the sparse-aware Gram engine:
the strategy's Gram matrix is built once with
:meth:`~repro.matrix.base.LinearQueryMatrix.gram_auto` and factorised once
with :func:`~repro.operators.inference.build_normal_equations`, then every
workload row is a triangular (or sparse-LU) solve inside one blocked trace
computation ``tr(W G⁺ Wᵀ)``.  The seed recomputed ``pinv(AᵀA)`` from scratch
for every workload row — O(m·n³) against the engine's O(n³ + m·n²) — which is
what the ``expected_error`` section of ``BENCH_data_dependent.json`` measures.
"""

from __future__ import annotations

import numpy as np

from ..matrix import LinearQueryMatrix, ensure_matrix
from ..operators.inference import build_normal_equations

#: Workload rows are materialised and solved in blocks of this many rows, so
#: scratch memory stays at ``2 * block * n`` doubles for any workload size.
_ERROR_ROW_BLOCK = 1024


def per_query_l2_error(
    workload: LinearQueryMatrix,
    true_vector: np.ndarray,
    estimate: np.ndarray,
    scale: float | None = None,
) -> float:
    """Scaled per-query L2 error of a workload estimate.

    Parameters
    ----------
    workload:
        The workload matrix ``W``.
    true_vector:
        The true data vector ``x``.
    estimate:
        The estimated data vector ``x̂`` (same length as ``x``).
    scale:
        Normalising constant; defaults to the number of records ``sum(x)``.
    """
    workload = ensure_matrix(workload)
    true_vector = np.asarray(true_vector, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    difference = workload.matvec(estimate) - workload.matvec(true_vector)
    if scale is None:
        scale = max(float(true_vector.sum()), 1.0)
    return float(np.linalg.norm(difference) / (workload.shape[0] * scale))


def mean_absolute_error(
    workload: LinearQueryMatrix, true_vector: np.ndarray, estimate: np.ndarray
) -> float:
    """Mean absolute error over the workload's queries (unscaled)."""
    workload = ensure_matrix(workload)
    difference = workload.matvec(np.asarray(estimate, dtype=np.float64)) - workload.matvec(
        np.asarray(true_vector, dtype=np.float64)
    )
    return float(np.mean(np.abs(difference)))


def total_squared_error(
    workload: LinearQueryMatrix, true_vector: np.ndarray, estimate: np.ndarray
) -> float:
    """Total squared error over the workload's queries (unscaled)."""
    workload = ensure_matrix(workload)
    difference = workload.matvec(np.asarray(estimate, dtype=np.float64)) - workload.matvec(
        np.asarray(true_vector, dtype=np.float64)
    )
    return float(difference @ difference)


def measurement_noise_variance(
    strategy: LinearQueryMatrix,
    epsilon: float,
    noise: str = "laplace",
    delta: float = 1e-6,
) -> float:
    """Per-measurement noise variance of a strategy at a privacy target.

    ``laplace``: ``2·(||A||₁/ε)²`` (Laplace noise has variance ``2b²``).
    ``gaussian``: ``σ²`` with the analytic calibration
    ``σ = ||A||₂·sqrt(2·ln(1.25/δ))/ε`` — the accountant-independent bound
    (a zCDP accountant calibrates slightly tighter at the same target).
    The L1-vs-L2 sensitivity split is the whole story of the Laplace/Gaussian
    trade-off: strategies whose columns are long but spread out (Prefix,
    dense hierarchies) have ``||A||₂ ≪ ||A||₁`` and win under Gaussian noise.
    """
    if noise == "laplace":
        scale = strategy.sensitivity() / epsilon
        return 2.0 * scale * scale
    if noise == "gaussian":
        from ..accounting.base import gaussian_analytic_sigma

        sigma = gaussian_analytic_sigma(strategy.sensitivity_l2(), epsilon, delta)
        return sigma * sigma
    raise ValueError(f"unknown noise kind {noise!r}; expected 'laplace' or 'gaussian'")


def expected_workload_error(
    workload: LinearQueryMatrix,
    strategy: LinearQueryMatrix,
    epsilon: float = 1.0,
    noise: str = "laplace",
    delta: float = 1e-6,
) -> float:
    """Expected total squared error of a workload answered via a strategy.

    Matrix-mechanism formula ``Var · tr(W (AᵀA)⁺ Wᵀ)`` where ``Var`` is the
    per-measurement noise variance of :func:`measurement_noise_variance` —
    ``2·||A||₁²/ε²`` for Laplace, ``σ²(ε, δ)`` from the L2 sensitivity for
    Gaussian.  The Gram is built and factorised *once* through the
    sparse-aware engine (:func:`build_normal_equations` consuming
    ``gram_auto()``), then workload rows are materialised in blocks and each
    block contributes ``Σᵢ qᵢ · solve(G, qᵢ)`` to the trace.  Rank-deficient
    strategies fall back to the factorisation's minimum-norm solve, matching
    the pseudo-inverse semantics of the analytic formula.
    """
    workload = ensure_matrix(workload)
    strategy = ensure_matrix(strategy)
    if workload.shape[1] != strategy.shape[1]:
        raise ValueError(
            f"workload over {workload.shape[1]} cells does not match a strategy "
            f"over {strategy.shape[1]} cells"
        )
    normal = build_normal_equations(strategy)
    num_queries = workload.shape[0]
    trace = 0.0
    for lo in range(0, num_queries, _ERROR_ROW_BLOCK):
        rows = workload.rows(np.arange(lo, min(lo + _ERROR_ROW_BLOCK, num_queries)))
        solved = np.asarray(normal.solve(rows.T))
        trace += float(np.einsum("ij,ji->", rows, solved))
    return measurement_noise_variance(strategy, epsilon, noise=noise, delta=delta) * trace


def expected_query_error(
    query: np.ndarray,
    strategy: LinearQueryMatrix,
    epsilon: float = 1.0,
    noise: str = "laplace",
    delta: float = 1e-6,
) -> float:
    """Expected squared error of one query answered via a strategy + least squares.

    Thin wrapper around :func:`expected_workload_error` on the single-row
    workload ``q`` — the factorise-once engine makes the one-query and
    whole-workload cases the same code path (Theorems 5.3 and 8.4).
    """
    query = np.asarray(query, dtype=np.float64)
    if query.ndim != 1:
        raise ValueError("expected_query_error takes a single 1-D query row")
    from ..matrix.dense import DenseMatrix

    return expected_workload_error(
        DenseMatrix(query.reshape(1, -1)), strategy, epsilon, noise=noise, delta=delta
    )
