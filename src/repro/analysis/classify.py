"""Naive Bayes classification from (noisy) histograms and AUC evaluation (Sec. 9.3).

The case study fits a multinomial Naive Bayes classifier from the 2k+1
one-dimensional histograms estimated by a DP plan: the label histogram plus,
for every predictor, the predictor histogram conditioned on each label value.
This module provides the classifier, the ROC-AUC metric and the repeated
k-fold cross-validation harness used by the Fig. 3 experiment — all
implemented from scratch (no scikit-learn dependency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..dataset.relation import Relation


@dataclass
class NaiveBayesModel:
    """Fitted multinomial Naive Bayes parameters.

    ``class_log_prior[c]`` is ``log P(Y=c)``; ``feature_log_prob[j][c, v]`` is
    ``log P(X_j = v | Y = c)``.
    """

    class_log_prior: np.ndarray
    feature_log_prob: list[np.ndarray]

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Log-odds of the positive class for each record (higher = class 1)."""
        features = np.asarray(features, dtype=np.int64)
        log_posterior = np.tile(self.class_log_prior, (features.shape[0], 1))
        for j, table in enumerate(self.feature_log_prob):
            values = np.clip(features[:, j], 0, table.shape[1] - 1)
            log_posterior += table[:, values].T
        return log_posterior[:, 1] - log_posterior[:, 0]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.decision_scores(features) > 0).astype(np.int64)


def fit_naive_bayes_from_histograms(
    label_histogram: np.ndarray,
    joint_histograms: Sequence[np.ndarray],
    smoothing: float = 1.0,
) -> NaiveBayesModel:
    """Fit the classifier from a label histogram and per-feature joint histograms.

    Parameters
    ----------
    label_histogram:
        Length-2 array of (possibly noisy) label counts.
    joint_histograms:
        For each predictor, a ``(2, feature_domain)`` array of label-by-value
        counts (noisy counts are clipped to be non-negative).
    smoothing:
        Laplace (add-``smoothing``) smoothing of the conditional distributions.
    """
    label_counts = np.clip(np.asarray(label_histogram, dtype=np.float64), 0.0, None)
    if label_counts.shape != (2,):
        raise ValueError("the label histogram must have exactly two entries")
    label_counts = label_counts + smoothing
    class_log_prior = np.log(label_counts / label_counts.sum())

    feature_log_prob = []
    for joint in joint_histograms:
        joint = np.clip(np.asarray(joint, dtype=np.float64), 0.0, None) + smoothing
        conditional = joint / joint.sum(axis=1, keepdims=True)
        feature_log_prob.append(np.log(conditional))
    return NaiveBayesModel(class_log_prior, feature_log_prob)


def fit_naive_bayes_exact(
    relation: Relation, label: str, predictors: Sequence[str], smoothing: float = 1.0
) -> NaiveBayesModel:
    """Fit the non-private (Unperturbed) classifier directly from the data."""
    label_column = relation.column(label)
    label_histogram = np.bincount(label_column, minlength=2).astype(np.float64)
    joints = []
    for predictor in predictors:
        size = relation.schema[predictor].size
        joint = np.zeros((2, size))
        values = relation.column(predictor)
        for c in (0, 1):
            joint[c] = np.bincount(values[label_column == c], minlength=size)
        joints.append(joint)
    return fit_naive_bayes_from_histograms(label_histogram, joints, smoothing=smoothing)


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (ties handled by averaging)."""
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if positives.size == 0 or negatives.size == 0:
        return 0.5
    order = np.argsort(np.concatenate([negatives, positives]), kind="stable")
    ranks = np.empty(order.size, dtype=np.float64)
    ranks[order] = np.arange(1, order.size + 1)
    # Average ranks over ties.
    combined = np.concatenate([negatives, positives])
    sorted_combined = np.sort(combined)
    unique, start = np.unique(sorted_combined, return_index=True)
    for value, s in zip(unique, start):
        mask = combined == value
        tie_ranks = ranks[mask]
        ranks[mask] = tie_ranks.mean()
    positive_ranks = ranks[negatives.size :]
    u_statistic = positive_ranks.sum() - positives.size * (positives.size + 1) / 2.0
    return float(u_statistic / (positives.size * negatives.size))


@dataclass
class CrossValidationResult:
    """Per-fold AUCs plus convenience percentiles."""

    aucs: np.ndarray

    @property
    def median(self) -> float:
        return float(np.median(self.aucs))

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.aucs, q))


def cross_validate_auc(
    relation: Relation,
    label: str,
    predictors: Sequence[str],
    fit_fn: Callable[[Relation], NaiveBayesModel],
    folds: int = 10,
    repeats: int = 1,
    seed: int = 0,
) -> CrossValidationResult:
    """Repeated k-fold cross-validation of a classifier-fitting procedure.

    ``fit_fn`` receives the training fold as a :class:`Relation` and returns a
    fitted :class:`NaiveBayesModel`; DP fitting procedures consume privacy
    budget inside ``fit_fn`` (a fresh kernel per fold, matching the paper's
    per-run budget accounting).
    """
    rng = np.random.default_rng(seed)
    label_idx = relation.schema.index_of(label)
    predictor_idx = [relation.schema.index_of(p) for p in predictors]
    records = relation.records
    aucs = []
    for _ in range(repeats):
        permutation = rng.permutation(len(relation))
        fold_edges = np.linspace(0, len(relation), folds + 1).astype(int)
        for f in range(folds):
            test_idx = permutation[fold_edges[f] : fold_edges[f + 1]]
            train_idx = np.setdiff1d(permutation, test_idx, assume_unique=True)
            train = Relation(relation.schema, records[train_idx])
            test = records[test_idx]
            model = fit_fn(train)
            scores = model.decision_scores(test[:, predictor_idx])
            aucs.append(roc_auc(test[:, label_idx], scores))
    return CrossValidationResult(np.asarray(aucs))


def majority_auc() -> float:
    """AUC of the majority-class baseline (constant scores): always 0.5."""
    return 0.5
