"""Workload builders (the query sets plans aim to answer)."""

from .builders import (
    WORKLOAD_BUILDERS,
    all_range_workload,
    build_workload,
    census_prefix_income_workload,
    identity_workload,
    marginals_workload,
    naive_bayes_workload,
    prefix_workload,
    random_range_workload,
    two_way_marginals_workload,
    workload_cache_key,
)

__all__ = [
    "prefix_workload",
    "random_range_workload",
    "all_range_workload",
    "identity_workload",
    "two_way_marginals_workload",
    "census_prefix_income_workload",
    "naive_bayes_workload",
    "marginals_workload",
    "WORKLOAD_BUILDERS",
    "build_workload",
    "workload_cache_key",
]
