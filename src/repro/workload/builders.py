"""Workload builders used throughout the paper's evaluation.

A workload is just a :class:`~repro.matrix.base.LinearQueryMatrix` whose rows
are the queries the analyst ultimately cares about.  The evaluation uses:

* Prefix (empirical CDF) workloads — Algorithm 1 and the census Prefix(Income)
  workload,
* RandomRange(k) — k uniformly random range queries (Table 4, Table 6),
* all range queries — error analysis of 1-D strategies,
* Identity and all 2-way marginals — census workloads (Table 5),
* the Naive Bayes workload — 2k+1 one-dimensional histograms (Sec. 9.3).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ..matrix import (
    Identity,
    Kronecker,
    LinearQueryMatrix,
    Prefix,
    RangeQueries,
    Total,
    VStack,
    all_kway_marginals,
    marginal,
)


def prefix_workload(n: int) -> LinearQueryMatrix:
    """All prefix sums over a 1-D domain (the empirical CDF workload)."""
    return Prefix(n)


def random_range_workload(
    n: int, num_queries: int, seed: int = 0, max_length: int | None = None
) -> LinearQueryMatrix:
    """``num_queries`` uniformly random range queries over a 1-D domain.

    ``max_length`` caps the range length (the paper's "small ranges" variant
    for Table 6 uses short ranges).
    """
    rng = np.random.default_rng(seed)
    intervals = []
    for _ in range(num_queries):
        if max_length is None:
            lo, hi = sorted(rng.integers(0, n, size=2).tolist())
        else:
            length = int(rng.integers(1, max_length + 1))
            lo = int(rng.integers(0, max(n - length, 0) + 1))
            hi = min(lo + length - 1, n - 1)
        intervals.append((lo, hi))
    return RangeQueries(n, intervals)


def all_range_workload(n: int) -> LinearQueryMatrix:
    """Every contiguous range query over a 1-D domain (n(n+1)/2 queries)."""
    intervals = [(lo, hi) for lo in range(n) for hi in range(lo, n)]
    return RangeQueries(n, intervals)


def identity_workload(domain: Sequence[int] | int) -> LinearQueryMatrix:
    """Counts of every cell of the (possibly multi-dimensional) domain."""
    if isinstance(domain, int):
        return Identity(domain)
    return Identity(int(np.prod(domain)))


def two_way_marginals_workload(domain: Sequence[int]) -> LinearQueryMatrix:
    """All 2-way marginals of a multi-dimensional domain (census workload b)."""
    return all_kway_marginals(domain, 2)


def census_prefix_income_workload(
    domain: Sequence[int], income_axis: int = 0
) -> LinearQueryMatrix:
    """The Prefix(Income) census workload (Sec. 9.2, workload c).

    Counting queries of the form ``income in (0, i_high]`` crossed with every
    combination of the other attributes *or* "any": per non-income attribute
    the factor is the union of its Identity (each specific value) and Total
    ("any"), and the income factor is the Prefix matrix.
    """
    factors: list[LinearQueryMatrix] = []
    for axis, size in enumerate(domain):
        if axis == income_axis:
            factors.append(Prefix(size))
        else:
            factors.append(VStack([Total(size), Identity(size)]))
    return Kronecker(factors)


def naive_bayes_workload(
    domain: Sequence[int], label_axis: int, predictor_axes: Sequence[int]
) -> LinearQueryMatrix:
    """The 2k+1 histograms needed to fit a Naive Bayes classifier (Sec. 9.3).

    One histogram on the label plus, for every predictor, the predictor-label
    joint histogram (equivalently the per-label-value conditional histograms).
    """
    parts: list[LinearQueryMatrix] = [marginal(domain, [label_axis])]
    for axis in predictor_axes:
        parts.append(marginal(domain, [label_axis, axis]))
    return VStack(parts)


def marginals_workload(domain: Sequence[int], groups: Sequence[Sequence[int]]) -> LinearQueryMatrix:
    """Union of the marginals over each listed attribute group."""
    parts = [marginal(domain, keep) for keep in groups]
    return parts[0] if len(parts) == 1 else VStack(parts)


# ----------------------------------------------------------------------------
# Named lookup + hashable cache keys (used by the service layer's
# ArtifactCache to reuse workload constructions across requests).
# ----------------------------------------------------------------------------

WORKLOAD_BUILDERS: dict[str, Callable[..., LinearQueryMatrix]] = {
    "prefix": prefix_workload,
    "random_range": random_range_workload,
    "all_range": all_range_workload,
    "identity": identity_workload,
    "two_way_marginals": two_way_marginals_workload,
    "census_prefix_income": census_prefix_income_workload,
    "naive_bayes": naive_bayes_workload,
    "marginals": marginals_workload,
}


def _freeze(value):
    """Canonical hashable form of a builder parameter value."""
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(item)) for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, np.ndarray):
        return tuple(_freeze(item) for item in value.tolist())
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    try:
        hash(value)
    except TypeError:
        # A repr fallback would silently produce address-bearing, unstable
        # keys (cache misses + irreproducible seeds); fail loudly instead.
        raise TypeError(
            f"cache-key parameter of type {type(value).__name__} is not hashable; "
            "pass plain data (numbers, strings, lists/tuples/dicts thereof)"
        ) from None
    return value


def workload_cache_key(name: str, params: Mapping[str, object] | None = None) -> tuple:
    """Hashable key identifying a workload construction.

    Two calls with the same builder name and (recursively frozen) parameters
    produce equal keys, so caches can serve the constructed matrix without
    rebuilding it.
    """
    if name not in WORKLOAD_BUILDERS:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOAD_BUILDERS)}")
    return ("workload", name, _freeze(dict(params or {})))


def build_workload(name: str, params: Mapping[str, object] | None = None) -> LinearQueryMatrix:
    """Construct a workload by registry name with keyword parameters."""
    if name not in WORKLOAD_BUILDERS:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOAD_BUILDERS)}")
    return WORKLOAD_BUILDERS[name](**dict(params or {}))
