"""Exceptions raised by the protected kernel."""

from __future__ import annotations


class PrivacyError(Exception):
    """Base class of all privacy-enforcement errors."""


class BudgetExceededError(PrivacyError):
    """Raised when a measurement request would exceed the global privacy budget.

    Per Sec. 4.3, raising this exception does not leak sensitive information:
    the decision depends only on the (public) history of budget requests, not
    on the private data.
    """

    def __init__(self, requested: float, remaining: float):
        self.requested = float(requested)
        self.remaining = float(remaining)
        super().__init__(
            f"budget request of {requested:.6g} exceeds remaining budget {remaining:.6g}"
        )

    def __reduce__(self):
        # Default exception pickling replays ``args`` (here: the formatted
        # message) into the two-argument constructor; reconstruct from the
        # real fields instead so the executor's process backend can ship the
        # concrete type between processes.
        return (type(self), (self.requested, self.remaining))


class DeadlineExceededError(PrivacyError):
    """Raised when a request's deadline expires before or during execution.

    The kernel checks the deadline *before* each budget charge, so a
    timed-out plan stops spending as soon as possible; whatever it charged
    before the deadline is its true partial spend and is ledgered by the
    scheduler as an errored session event.  Like
    :class:`BudgetExceededError`, the decision depends only on public state
    (the clock), never on the private data.
    """

    def __init__(self, deadline_seconds: float, elapsed_seconds: float):
        self.deadline_seconds = float(deadline_seconds)
        self.elapsed_seconds = float(elapsed_seconds)
        super().__init__(
            f"deadline of {deadline_seconds:.6g}s exceeded "
            f"({elapsed_seconds:.6g}s elapsed)"
        )

    def __reduce__(self):
        return (type(self), (self.deadline_seconds, self.elapsed_seconds))


class UnsupportedMechanismError(PrivacyError):
    """Raised when a measurement mechanism has no guarantee under the
    kernel's accountant (e.g. the Gaussian mechanism under pure ε-DP)."""


class UnknownSourceError(PrivacyError):
    """Raised when an operator references a data-source variable the kernel does not track."""


class InvalidTransformationError(PrivacyError):
    """Raised when a transformation is applied to an incompatible data source."""
