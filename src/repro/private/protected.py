"""Client-side handles to protected data sources.

A :class:`ProtectedDataSource` is what plans manipulate: it names a data
source inside the protected kernel without exposing its contents.  Its methods
mirror the kernel's privileged operators and return new handles (for
transformations) or noisy answers (for measurements).

The idiomatic entry point is::

    source = ProtectedDataSource.initialise(relation, epsilon_total=1.0, seed=0)
    vector = source.where({"gender": 0}).select(["salary"]).vectorize()
    noisy = vector.vector_laplace(Identity(vector.domain_size), epsilon=0.5)
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..dataset.relation import Relation
from ..matrix import LinearQueryMatrix, ReductionMatrix
from .kernel import ProtectedKernel


class ProtectedDataSource:
    """An opaque reference to a table or vector held by the protected kernel."""

    def __init__(self, kernel: ProtectedKernel, name: str):
        self._kernel = kernel
        self._name = name

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def initialise(
        cls,
        table: Relation,
        epsilon_total: float | None = None,
        seed: int | None = None,
        accountant=None,
    ) -> "ProtectedDataSource":
        """Create a protected kernel around ``table`` and return the root handle.

        ``accountant`` swaps the privacy calculus (see
        :mod:`repro.accounting`); by default the kernel runs the paper's pure
        ε-DP semantics over ``epsilon_total``.
        """
        kernel = ProtectedKernel(table, epsilon_total, seed=seed, accountant=accountant)
        return cls(kernel, "root")

    # ------------------------------------------------------------------
    # Public metadata.
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> ProtectedKernel:
        return self._kernel

    @property
    def name(self) -> str:
        return self._name

    @property
    def kind(self) -> str:
        return self._kernel.source_kind(self._name)

    @property
    def domain_size(self) -> int:
        return self._kernel.domain_size(self._name)

    @property
    def schema(self):
        return self._kernel.schema(self._name)

    def budget_consumed(self) -> float:
        return self._kernel.budget_consumed()

    def budget_remaining(self) -> float:
        return self._kernel.budget_remaining()

    @property
    def accountant(self):
        """The kernel's privacy accountant (public configuration metadata)."""
        return self._kernel.accountant

    def odometer(self):
        """Per-source spend / filter view over the kernel's accounting."""
        from ..accounting.odometer import PrivacyOdometer

        return PrivacyOdometer(self._kernel)

    # ------------------------------------------------------------------
    # Private operators (transformations) — return new handles.
    # ------------------------------------------------------------------
    def where(self, predicate) -> "ProtectedDataSource":
        """Filter records of a table source (1-stable)."""
        return ProtectedDataSource(self._kernel, self._kernel.transform_where(self._name, predicate))

    def select(self, attributes: Sequence[str]) -> "ProtectedDataSource":
        """Project a table source onto a subset of attributes (1-stable)."""
        return ProtectedDataSource(
            self._kernel, self._kernel.transform_select(self._name, attributes)
        )

    def vectorize(self) -> "ProtectedDataSource":
        """T-Vectorize a table source into a histogram vector (1-stable)."""
        return ProtectedDataSource(self._kernel, self._kernel.transform_vectorize(self._name))

    def group_by(self, attribute: str) -> dict[int, "ProtectedDataSource"]:
        """GroupBy an attribute of a table source (2-stable)."""
        return {
            value: ProtectedDataSource(self._kernel, name)
            for value, name in self._kernel.transform_group_by(self._name, attribute).items()
        }

    def reduce_by_partition(self, partition: ReductionMatrix) -> "ProtectedDataSource":
        """V-ReduceByPartition a vector source (1-stable)."""
        return ProtectedDataSource(
            self._kernel, self._kernel.transform_reduce_by_partition(self._name, partition)
        )

    def linear_transform(self, matrix: LinearQueryMatrix) -> "ProtectedDataSource":
        """Generic linear transformation of a vector source (stability = ||M||_1)."""
        return ProtectedDataSource(self._kernel, self._kernel.transform_linear(self._name, matrix))

    def split_by_partition(self, partition: ReductionMatrix) -> list["ProtectedDataSource"]:
        """V-SplitByPartition a vector source into per-group handles (parallel composition)."""
        _, children = self._kernel.transform_split_by_partition(self._name, partition)
        return [ProtectedDataSource(self._kernel, child) for child in children]

    def split_by_attribute(self, attribute: str) -> dict[int, "ProtectedDataSource"]:
        """SplitByPartition a table source by an attribute value (parallel composition)."""
        _, children = self._kernel.transform_table_split(self._name, attribute)
        return {
            value: ProtectedDataSource(self._kernel, name) for value, name in children.items()
        }

    # ------------------------------------------------------------------
    # Private -> Public operators (measurements) — return noisy values.
    # ------------------------------------------------------------------
    def vector_laplace(self, queries: LinearQueryMatrix, epsilon: float) -> np.ndarray:
        """Noisy answers to a set of linear queries on a vector source."""
        return self._kernel.measure_vector_laplace(self._name, queries, epsilon)

    def vector_gaussian(
        self, queries: LinearQueryMatrix, epsilon: float, delta: float | None = None
    ) -> np.ndarray:
        """Gaussian-noised answers calibrated to the queries' L2 sensitivity.

        Charged through the kernel's accountant; unavailable under pure ε-DP
        accounting.  ``delta=None`` uses the accountant's per-measurement
        default.
        """
        return self._kernel.measure_vector_gaussian(self._name, queries, epsilon, delta=delta)

    def noisy_count(self, epsilon: float) -> float:
        """Noisy cardinality of a table source."""
        return self._kernel.measure_noisy_count(self._name, epsilon)

    def exponential_mechanism(
        self,
        scores: Callable[[np.ndarray], np.ndarray],
        num_candidates: int,
        epsilon: float,
        score_sensitivity: float,
    ) -> int:
        """Select a candidate index via the exponential mechanism."""
        return self._kernel.select_exponential_mechanism(
            self._name, scores, num_candidates, epsilon, score_sensitivity
        )

    def laplace_scalar(
        self, statistic: Callable[[np.ndarray], float], sensitivity: float, epsilon: float
    ) -> float:
        """Noisy scalar statistic of a vector source with declared sensitivity."""
        return self._kernel.measure_laplace_scalar(self._name, statistic, sensitivity, epsilon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProtectedDataSource({self._name!r}, kind={self.kind!r})"


def protect(
    table: Relation,
    epsilon_total: float | None = None,
    seed: int | None = None,
    accountant=None,
) -> ProtectedDataSource:
    """Shorthand for :meth:`ProtectedDataSource.initialise`."""
    return ProtectedDataSource.initialise(
        table, epsilon_total, seed=seed, accountant=accountant
    )
