"""Budget auditing: human-readable accounting of a plan's privacy consumption.

The protected kernel already tracks everything needed for the privacy proof
(lineage, stability, per-source consumption, measurement history).  This
module turns that state into a report a practitioner can read — which
operators spent budget, on which derived sources, and how the parallel
composition across partitions kept the total at the root below epsilon_total.

This is public information: it never includes query answers or data values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .kernel import MeasurementRecord, ProtectedKernel
from .protected import ProtectedDataSource


@dataclass
class SourceReport:
    """Per-source accounting entry."""

    name: str
    kind: str
    lineage: list[str]
    cumulative_stability: float
    consumed: float
    measurements: list[MeasurementRecord] = field(default_factory=list)


@dataclass
class BudgetAudit:
    """Full audit of a kernel's privacy consumption.

    Totals are in the accountant's *native* units (ε under pure /
    approximate DP, ρ under zCDP); ``epsilon_reported`` / ``delta_reported``
    carry the accountant's converted ``(ε, δ)`` statement covering the spend,
    so audits of non-pure kernels still end in a DP guarantee a practitioner
    can quote.
    """

    epsilon_total: float
    consumed_at_root: float
    remaining: float
    sources: list[SourceReport]
    accountant: str = "pure"
    epsilon_reported: float = 0.0
    delta_reported: float = 0.0

    @property
    def num_measurements(self) -> int:
        return sum(len(source.measurements) for source in self.sources)

    def to_text(self) -> str:
        """Render the audit as an aligned plain-text report."""
        lines = [
            f"accountant          : {self.accountant}",
            f"global budget       : {self.epsilon_total:.6g}",
            f"consumed at the root: {self.consumed_at_root:.6g}",
            f"remaining           : {self.remaining:.6g}",
            f"reported (eps,delta): ({self.epsilon_reported:.6g}, {self.delta_reported:.3g})",
            f"measurements        : {self.num_measurements}",
            "",
            f"{'source':<22} {'kind':<10} {'stability':>9} {'consumed':>9}  measurements",
        ]
        for source in self.sources:
            ops = ", ".join(
                f"{record.operator}(eps={record.epsilon:g})" for record in source.measurements
            )
            lines.append(
                f"{source.name:<22} {source.kind:<10} "
                f"{source.cumulative_stability:>9.3g} {source.consumed:>9.3g}  {ops}"
            )
        return "\n".join(lines)


def audit_kernel(kernel: ProtectedKernel) -> BudgetAudit:
    """Build a :class:`BudgetAudit` from a kernel's public accounting state."""
    history = kernel.history()
    by_source: dict[str, list[MeasurementRecord]] = {}
    for record in history:
        by_source.setdefault(record.source, []).append(record)

    sources = []
    # Collect every source that either spent budget or appears in a lineage of one.
    names = set(by_source)
    for name in list(names):
        names.update(kernel.lineage(name))
    names.add("root")
    for name in sorted(names):
        sources.append(
            SourceReport(
                name=name,
                kind=kernel.source_kind(name),
                lineage=kernel.lineage(name),
                cumulative_stability=kernel.cumulative_stability(name),
                consumed=kernel.source_consumed(name),
                measurements=by_source.get(name, []),
            )
        )
    epsilon_reported, delta_reported = kernel.accountant.epsilon_delta(
        kernel.budget_spent_cost()
    )
    return BudgetAudit(
        epsilon_total=kernel.epsilon_total,
        consumed_at_root=kernel.budget_consumed(),
        remaining=kernel.budget_remaining(),
        sources=sources,
        accountant=kernel.accountant.name,
        epsilon_reported=epsilon_reported,
        delta_reported=delta_reported,
    )


def audit(source: ProtectedDataSource) -> BudgetAudit:
    """Audit the kernel behind any protected handle."""
    return audit_kernel(source.kernel)
