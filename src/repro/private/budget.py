"""Privacy-budget accounting (Algorithm 2 of the paper, generalised).

The protected kernel maintains a *transformation graph* over data-source
variables.  Each node is one of:

* the **root** (the original protected table),
* a **derived** source, produced from its parent by a c-stable transformation,
* a **partition** dummy node, whose children are the disjoint pieces produced
  by a SplitByPartition transformation.

A measurement of a source ``sv`` with cost ``c`` triggers a recursive budget
*request*:

* at the root, the request succeeds iff the per-charge ledger plus ``c``
  stays within the accountant's total budget;
* at a derived node with stability factor ``s``, the request forwards
  ``accountant.scale(c, s)`` to the parent (sequential composition through
  stability — ``s·ε`` for pure/(ε, δ) accounting, ``s²·ρ`` for zCDP);
* at a partition node, only the *increase of the maximum* over children is
  forwarded (parallel composition): ``r = max(B(child) + c - B(node), 0)``,
  componentwise over the cost vector.

This module owns the lineage-stability bookkeeping only; *what* a mechanism
costs, how costs scale through stability, and what the total budget is are
delegated to a pluggable :class:`~repro.accounting.Accountant`.  With the
default :class:`~repro.accounting.PureDPAccountant` the float trajectory is
bit-identical to the original hard-coded ε tracker.

Root-level acceptance is decided against an explicit per-charge ledger with
a small absolute tolerance, rather than against a naive running float
accumulator: a long sequence of small charges can no longer drift past
``epsilon_total`` through accumulated rounding, and a charge that *exactly*
exhausts the budget is no longer spuriously rejected because earlier
additions rounded up.  The decision sum is maintained incrementally with
Neumaier compensation — accurate to one rounding of the exact sum, like
``math.fsum`` over the whole ledger, but O(1) per charge so service-rate
bursts do not degrade quadratically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from ..accounting.accountants import PureDPAccountant
from ..accounting.base import Accountant, Cost

#: Absolute tolerance of the root-level ledger check on the primary (ε or ρ)
#: component.  The δ component uses the same tolerance scaled by the δ budget
#: (δ totals are ~1e-6, so an absolute 1e-9 would be far too loose there).
LEDGER_TOLERANCE = 1e-9


class _CompensatedSum:
    """Neumaier compensated running sum: fsum-grade accuracy, O(1) appends."""

    __slots__ = ("_total", "_compensation")

    def __init__(self):
        self._total = 0.0
        self._compensation = 0.0

    def _parts_with(self, value: float) -> tuple[float, float]:
        total = self._total + value
        if abs(self._total) >= abs(value):
            lost = (self._total - total) + value
        else:
            lost = (value - total) + self._total
        return total, self._compensation + lost

    def peek(self, value: float) -> float:
        """The compensated total if ``value`` were added (no state change)."""
        total, compensation = self._parts_with(value)
        return total + compensation

    def add(self, value: float) -> None:
        self._total, self._compensation = self._parts_with(value)

    @property
    def value(self) -> float:
        return self._total + self._compensation


class NodeKind(Enum):
    """Role of a node in the transformation graph."""

    ROOT = "root"
    DERIVED = "derived"
    PARTITION = "partition"


@dataclass
class BudgetNode:
    """Bookkeeping state of one data-source variable.

    ``consumed`` / ``consumed_delta`` are the two components of the node's
    accumulated :class:`~repro.accounting.Cost` — kept as plain floats
    (updated with the same ``+=`` the seed tracker used) so pure-DP
    trajectories stay bit-identical and audits read a bare ε number.
    """

    name: str
    kind: NodeKind
    parent: Optional[str]
    #: stability factor of the transformation that derived this node from its
    #: parent (1 for the root and for partition dummy nodes).
    stability: float = 1.0
    #: primary budget component (ε or ρ) consumed by queries on this node or
    #: any of its descendants.
    consumed: float = 0.0
    #: δ component consumed (identically 0 under pure ε-DP and zCDP).
    consumed_delta: float = 0.0
    children: list[str] = field(default_factory=list)

    @property
    def spent(self) -> Cost:
        return Cost(self.consumed, self.consumed_delta)

    def _accumulate(self, cost: Cost) -> None:
        self.consumed += cost.primary
        self.consumed_delta += cost.delta


class BudgetTracker:
    """Tracks per-source budget consumption and enforces the global budget."""

    def __init__(
        self,
        epsilon_total: float | None = None,
        root_name: str = "root",
        accountant: Accountant | None = None,
    ):
        if accountant is None:
            accountant = PureDPAccountant(epsilon_total)
        self.accountant = accountant
        self.epsilon_total = accountant.budget.primary
        self.root_name = root_name
        self._nodes: dict[str, BudgetNode] = {
            root_name: BudgetNode(root_name, NodeKind.ROOT, parent=None, stability=1.0)
        }
        #: every accepted root-level charge, in native units, plus the
        #: compensated running sums acceptance is decided on (one rounding
        #: away from the exact ledger sum, however long the ledger grows).
        self._ledger: list[Cost] = []
        self._ledger_primary = _CompensatedSum()
        self._ledger_delta = _CompensatedSum()
        #: write-ahead hook: called with each root-level charge the instant
        #: it is accepted — before the measurement's noise is ever computed —
        #: so a durable journal sees the charge ahead of any release.
        self.charge_listener: Callable[[Cost], None] | None = None

    # ------------------------------------------------------------------
    # Graph construction.
    # ------------------------------------------------------------------
    def add_derived(self, name: str, parent: str, stability: float) -> None:
        """Register a source derived from ``parent`` by a ``stability``-stable transform."""
        self._check_new(name, parent)
        if stability <= 0:
            raise ValueError("stability must be positive")
        self._nodes[name] = BudgetNode(name, NodeKind.DERIVED, parent, float(stability))
        self._nodes[parent].children.append(name)

    def add_partition(self, name: str, parent: str) -> None:
        """Register the dummy node introduced by a SplitByPartition transform."""
        self._check_new(name, parent)
        self._nodes[name] = BudgetNode(name, NodeKind.PARTITION, parent, 1.0)
        self._nodes[parent].children.append(name)

    def _check_new(self, name: str, parent: str) -> None:
        if name in self._nodes:
            raise ValueError(f"source variable {name!r} already exists")
        if parent not in self._nodes:
            raise KeyError(f"unknown parent source variable {parent!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> BudgetNode:
        if name not in self._nodes:
            raise KeyError(f"unknown source variable {name!r}")
        return self._nodes[name]

    # ------------------------------------------------------------------
    # Algorithm 2, generalised over the accountant's cost vector.
    # ------------------------------------------------------------------
    def request(self, name: str, sigma: float) -> bool:
        """Attempt to consume ``sigma`` native budget units on source ``name``.

        The scalar entry point the kernel's seed-era callers (and the pure
        accountant) use; equivalent to :meth:`charge` with a δ-free cost.
        Returns ``True`` and updates the per-node counters if the request fits
        within the global budget; returns ``False`` (leaving all counters
        unchanged) otherwise.
        """
        if sigma < 0:
            raise ValueError("budget requests must be non-negative")
        return self.charge(name, self.accountant.raw_cost(sigma))

    def charge(self, name: str, cost: Cost) -> bool:
        """Attempt to consume ``cost`` (native units) on source ``name``.

        Mirrors Algorithm 2 exactly, including the parallel-composition
        treatment of partition nodes, with all arithmetic componentwise over
        the accountant's cost vector.
        """
        if cost.primary < 0 or cost.delta < 0:
            raise ValueError("budget requests must be non-negative")
        node = self.node(name)
        if node.kind is NodeKind.ROOT:
            if not self._ledger_accepts(cost):
                return False
            # Write-ahead ordering: the journal listener runs *before* any
            # in-memory state mutates.  If the append fails, the charge never
            # happened anywhere; if we crash right after it, the journaled
            # charge is merely wasted budget (nothing was released).
            if self.charge_listener is not None:
                self.charge_listener(cost)
            self._ledger.append(cost)
            self._ledger_primary.add(cost.primary)
            self._ledger_delta.add(cost.delta)
            node._accumulate(cost)
            return True
        if node.kind is NodeKind.PARTITION:
            raise RuntimeError(
                "requests are never issued directly against a partition node; "
                "they are forwarded from its children"
            )
        # DERIVED node.
        parent = self._nodes[node.parent]
        if parent.kind is NodeKind.PARTITION:
            increase = (node.spent + cost).increase_over(parent.spent)
            ok = self._forward_from_partition(parent, increase)
            if not ok:
                return False
            node._accumulate(cost)
            return True
        ok = self.charge(node.parent, self.accountant.scale(cost, node.stability))
        if not ok:
            return False
        node._accumulate(cost)
        return True

    def _forward_from_partition(self, partition: BudgetNode, increase: Cost) -> bool:
        """Forward a child's budget increase through a partition dummy node."""
        if increase.is_zero:
            return True
        grandparent_name = partition.parent
        grandparent = self._nodes[grandparent_name]
        if grandparent.kind is NodeKind.PARTITION:
            # Nested partitions: the partition node itself behaves like a child.
            nested_increase = (partition.spent + increase).increase_over(grandparent.spent)
            ok = self._forward_from_partition(grandparent, nested_increase)
        else:
            # The partition transformation itself is 1-stable.
            ok = self.charge(
                grandparent_name, self.accountant.scale(increase, partition.stability)
            )
        if not ok:
            return False
        partition._accumulate(increase)
        return True

    def _ledger_accepts(self, cost: Cost) -> bool:
        """Would the root-level ledger stay within budget after ``cost``?

        The decision uses the compensated sum of the explicit per-charge
        ledger — immune to the drift a naive running accumulator picks up
        over many small charges — with :data:`LEDGER_TOLERANCE` slack so an
        exactly budget-exhausting charge is accepted in the face of last-ulp
        rounding.
        """
        budget = self.accountant.budget
        if self._ledger_primary.peek(cost.primary) > budget.primary + LEDGER_TOLERANCE:
            return False
        if cost.delta or budget.delta:
            delta = self._ledger_delta.peek(cost.delta)
            if delta > budget.delta + LEDGER_TOLERANCE * max(budget.delta, 0.0):
                return False
        return True

    # ------------------------------------------------------------------
    # Durable-state support (snapshot/restore, journal replay).
    # ------------------------------------------------------------------
    def apply_restored_charge(self, cost: Cost) -> None:
        """Re-apply a root-level charge recovered from the durable journal.

        Replay bypasses both the acceptance check (the charge was accepted
        before the crash — re-deciding it against tolerance drift could
        reject an exact replay) and the ``charge_listener`` (the record is
        already in the journal).  Per-source counters of plan-internal
        derived nodes are *not* reconstructed — only the root ledger, which
        is what reconciliation and future acceptance decisions read.
        """
        if cost.primary < 0 or cost.delta < 0:
            raise ValueError("restored charges must be non-negative")
        self._ledger.append(cost)
        self._ledger_primary.add(cost.primary)
        self._ledger_delta.add(cost.delta)
        self._nodes[self.root_name]._accumulate(cost)

    def state_dict(self) -> dict:
        """JSON-ready serialisation of the graph and the root ledger."""
        return {
            "root_name": self.root_name,
            "nodes": [
                {
                    "name": node.name,
                    "kind": node.kind.value,
                    "parent": node.parent,
                    "stability": node.stability,
                    "consumed": node.consumed,
                    "consumed_delta": node.consumed_delta,
                }
                for node in self._nodes.values()
            ],
            "ledger": [[cost.primary, cost.delta] for cost in self._ledger],
        }

    def load_state(self, state: dict) -> None:
        """Rebuild the graph and ledger saved by :meth:`state_dict`.

        Must be called on a freshly-constructed tracker with the same
        accountant.  The compensated acceptance sums are rebuilt by re-adding
        the ledger in order, which reproduces them bit-identically.
        """
        if state["root_name"] != self.root_name:
            raise ValueError("snapshot root name does not match this tracker")
        nodes: dict[str, BudgetNode] = {}
        for entry in state["nodes"]:
            node = BudgetNode(
                entry["name"],
                NodeKind(entry["kind"]),
                entry["parent"],
                float(entry["stability"]),
            )
            node.consumed = float(entry["consumed"])
            node.consumed_delta = float(entry["consumed_delta"])
            nodes[node.name] = node
        for node in nodes.values():
            if node.parent is not None:
                nodes[node.parent].children.append(node.name)
        if self.root_name not in nodes:
            raise ValueError("snapshot has no root node")
        self._nodes = nodes
        self._ledger = []
        self._ledger_primary = _CompensatedSum()
        self._ledger_delta = _CompensatedSum()
        for primary, delta in state["ledger"]:
            cost = Cost(float(primary), float(delta))
            self._ledger.append(cost)
            self._ledger_primary.add(cost.primary)
            self._ledger_delta.add(cost.delta)

    # ------------------------------------------------------------------
    # Dry-run (the odometer's filter view).
    # ------------------------------------------------------------------
    def would_accept(self, name: str, cost: Cost) -> bool:
        """Whether :meth:`charge` would succeed, without mutating any state.

        Adaptive plans use this (through the odometer) to test a candidate
        measurement against the remaining budget before committing to it.
        """
        if cost.primary < 0 or cost.delta < 0:
            raise ValueError("budget requests must be non-negative")
        node = self.node(name)
        if node.kind is NodeKind.PARTITION:
            raise RuntimeError(
                "requests are never issued directly against a partition node; "
                "they are forwarded from its children"
            )
        # Walk upward carrying the cost the next level up would receive,
        # replicating charge()'s propagation read-only.  ``node`` may itself
        # become a partition node along the way (a nested partition behaves
        # like a child of its parent partition).
        while node.kind is not NodeKind.ROOT:
            parent = self._nodes[node.parent]
            if parent.kind is NodeKind.PARTITION:
                cost = (node.spent + cost).increase_over(parent.spent)
                if cost.is_zero:
                    return True
            else:
                cost = self.accountant.scale(cost, node.stability)
            node = parent
        return self._ledger_accepts(cost)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def consumed(self, name: str = None) -> float:
        """Primary budget consumed at ``name`` (default: at the root, i.e. globally)."""
        return self.node(name or self.root_name).consumed

    def spent(self, name: str = None) -> Cost:
        """Full cost vector consumed at ``name`` (default: at the root)."""
        return self.node(name or self.root_name).spent

    def remaining(self) -> float:
        """Remaining global budget (primary component, native units).

        Clamped at zero: an exactly budget-exhausting charge accepted through
        the compensated ledger can leave the naive per-node accumulator a few
        ulps above the total, and a negative remaining budget must never leak
        into audits or error messages.
        """
        return max(self.epsilon_total - self._nodes[self.root_name].consumed, 0.0)

    def remaining_cost(self) -> Cost:
        """Remaining global budget as a cost vector (clamped at zero)."""
        budget = self.accountant.budget
        return budget.increase_over(self.spent())

    def ledger(self) -> list[Cost]:
        """A copy of the accepted root-level charges, in order."""
        return list(self._ledger)

    @property
    def num_charges(self) -> int:
        """Number of accepted root-level charges (the ledger's length)."""
        return len(self._ledger)

    def charged_between(self, start: int, stop: int) -> float:
        """Exact primary spend of the ledger slice ``[start, stop)``.

        ``math.fsum`` over the slice's own charges: the result depends only
        on the charges themselves, not on what the running accumulator held
        when they landed — so two executions that make identical charges
        report identical spend regardless of how concurrent requests
        interleaved around them.  The naive difference of two running totals
        does not have that property (its last ulp shifts with the prior
        ledger content).
        """
        return math.fsum(cost.primary for cost in self._ledger[start:stop])

    def lineage(self, name: str) -> list[str]:
        """Chain of ancestors from ``name`` up to (and including) the root."""
        chain = [name]
        node = self.node(name)
        while node.parent is not None:
            chain.append(node.parent)
            node = self._nodes[node.parent]
        return chain

    def cumulative_stability(self, name: str) -> float:
        """Product of stability factors from ``name`` up to the root."""
        product = 1.0
        node = self.node(name)
        while node.parent is not None:
            product *= node.stability
            node = self._nodes[node.parent]
        return product

    def spending_nodes(self) -> list[BudgetNode]:
        """Every node that has accumulated non-zero spend (for the odometer)."""
        return [
            node
            for node in self._nodes.values()
            if node.consumed > 0.0 or node.consumed_delta > 0.0
        ]
