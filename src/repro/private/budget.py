"""Privacy-budget accounting (Algorithm 2 of the paper).

The protected kernel maintains a *transformation graph* over data-source
variables.  Each node is one of:

* the **root** (the original protected table),
* a **derived** source, produced from its parent by a c-stable transformation,
* a **partition** dummy node, whose children are the disjoint pieces produced
  by a SplitByPartition transformation.

A measurement of a source ``sv`` with privacy parameter ``sigma`` triggers a
recursive budget *request*:

* at the root, the request succeeds iff ``B(root) + sigma <= eps_tot``;
* at a derived node with stability factor ``s``, the request forwards
  ``s * sigma`` to the parent (sequential composition through stability);
* at a partition node, only the *increase of the maximum* over children is
  forwarded (parallel composition): ``r = max(B(child) + sigma - B(node), 0)``.

This module implements that bookkeeping independently of the data, so it can
be unit-tested and property-tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class NodeKind(Enum):
    """Role of a node in the transformation graph."""

    ROOT = "root"
    DERIVED = "derived"
    PARTITION = "partition"


@dataclass
class BudgetNode:
    """Bookkeeping state of one data-source variable."""

    name: str
    kind: NodeKind
    parent: Optional[str]
    #: stability factor of the transformation that derived this node from its
    #: parent (1 for the root and for partition dummy nodes).
    stability: float = 1.0
    #: budget consumed by queries on this node or any of its descendants.
    consumed: float = 0.0
    children: list[str] = field(default_factory=list)


class BudgetTracker:
    """Tracks per-source budget consumption and enforces the global budget."""

    def __init__(self, epsilon_total: float, root_name: str = "root"):
        if epsilon_total <= 0:
            raise ValueError("the global privacy budget must be positive")
        self.epsilon_total = float(epsilon_total)
        self.root_name = root_name
        self._nodes: dict[str, BudgetNode] = {
            root_name: BudgetNode(root_name, NodeKind.ROOT, parent=None, stability=1.0)
        }

    # ------------------------------------------------------------------
    # Graph construction.
    # ------------------------------------------------------------------
    def add_derived(self, name: str, parent: str, stability: float) -> None:
        """Register a source derived from ``parent`` by a ``stability``-stable transform."""
        self._check_new(name, parent)
        if stability <= 0:
            raise ValueError("stability must be positive")
        self._nodes[name] = BudgetNode(name, NodeKind.DERIVED, parent, float(stability))
        self._nodes[parent].children.append(name)

    def add_partition(self, name: str, parent: str) -> None:
        """Register the dummy node introduced by a SplitByPartition transform."""
        self._check_new(name, parent)
        self._nodes[name] = BudgetNode(name, NodeKind.PARTITION, parent, 1.0)
        self._nodes[parent].children.append(name)

    def _check_new(self, name: str, parent: str) -> None:
        if name in self._nodes:
            raise ValueError(f"source variable {name!r} already exists")
        if parent not in self._nodes:
            raise KeyError(f"unknown parent source variable {parent!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> BudgetNode:
        if name not in self._nodes:
            raise KeyError(f"unknown source variable {name!r}")
        return self._nodes[name]

    # ------------------------------------------------------------------
    # Algorithm 2.
    # ------------------------------------------------------------------
    def request(self, name: str, sigma: float) -> bool:
        """Attempt to consume ``sigma`` budget on source ``name``.

        Returns ``True`` and updates the per-node counters if the request fits
        within the global budget; returns ``False`` (leaving all counters
        unchanged) otherwise.  Mirrors Algorithm 2 exactly, including the
        parallel-composition treatment of partition nodes.
        """
        if sigma < 0:
            raise ValueError("budget requests must be non-negative")
        node = self.node(name)
        if node.kind is NodeKind.ROOT:
            if node.consumed + sigma > self.epsilon_total + 1e-12:
                return False
            node.consumed += sigma
            return True
        if node.kind is NodeKind.PARTITION:
            # A request arriving at the partition node comes from one child
            # whose consumption has already been (tentatively) increased; here
            # we receive the child's *new* total via sigma being the increase
            # requested at the child.  Following Algorithm 2 we forward only
            # the increase of the maximum over children.
            raise RuntimeError(
                "requests are never issued directly against a partition node; "
                "they are forwarded from its children"
            )
        # DERIVED node.
        parent = self._nodes[node.parent]
        if parent.kind is NodeKind.PARTITION:
            increase = max(node.consumed + sigma - parent.consumed, 0.0)
            ok = self._forward_from_partition(parent, increase)
            if not ok:
                return False
            node.consumed += sigma
            return True
        ok = self.request(node.parent, node.stability * sigma)
        if not ok:
            return False
        node.consumed += sigma
        return True

    def _forward_from_partition(self, partition: BudgetNode, increase: float) -> bool:
        """Forward a child's budget increase through a partition dummy node."""
        if increase <= 0:
            return True
        grandparent_name = partition.parent
        grandparent = self._nodes[grandparent_name]
        if grandparent.kind is NodeKind.PARTITION:
            # Nested partitions: the partition node itself behaves like a child.
            nested_increase = max(partition.consumed + increase - grandparent.consumed, 0.0)
            ok = self._forward_from_partition(grandparent, nested_increase)
        else:
            # The partition transformation itself is 1-stable.
            ok = self.request(grandparent_name, partition.stability * increase)
        if not ok:
            return False
        partition.consumed += increase
        return True

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def consumed(self, name: str = None) -> float:
        """Budget consumed at ``name`` (default: at the root, i.e. globally)."""
        return self.node(name or self.root_name).consumed

    def remaining(self) -> float:
        """Remaining global budget."""
        return self.epsilon_total - self._nodes[self.root_name].consumed

    def lineage(self, name: str) -> list[str]:
        """Chain of ancestors from ``name`` up to (and including) the root."""
        chain = [name]
        node = self.node(name)
        while node.parent is not None:
            chain.append(node.parent)
            node = self._nodes[node.parent]
        return chain

    def cumulative_stability(self, name: str) -> float:
        """Product of stability factors from ``name`` up to the root."""
        product = 1.0
        node = self.node(name)
        while node.parent is not None:
            product *= node.stability
            node = self._nodes[node.parent]
        return product
