"""Protected kernel, budget accounting and client handles (EKTELO Sec. 4)."""

from .audit import BudgetAudit, SourceReport, audit, audit_kernel
from .budget import BudgetNode, BudgetTracker, NodeKind
from .exceptions import (
    BudgetExceededError,
    DeadlineExceededError,
    InvalidTransformationError,
    PrivacyError,
    UnknownSourceError,
    UnsupportedMechanismError,
)
from .kernel import BudgetSnapshot, MeasurementRecord, ProtectedKernel
from .protected import ProtectedDataSource, protect

__all__ = [
    "BudgetSnapshot",
    "BudgetAudit",
    "SourceReport",
    "audit",
    "audit_kernel",
    "BudgetTracker",
    "BudgetNode",
    "NodeKind",
    "ProtectedKernel",
    "MeasurementRecord",
    "ProtectedDataSource",
    "protect",
    "PrivacyError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "UnknownSourceError",
    "InvalidTransformationError",
    "UnsupportedMechanismError",
]
