"""The protected kernel (Sec. 4).

The kernel is the only component that touches private data.  It maintains:

* the data-source environment (variable name → table or vector),
* the transformation graph with per-edge stability,
* the per-source budget consumption (via :class:`~repro.private.budget.BudgetTracker`),
* the query history (every measurement actually answered).

Client code (plans, operators) never receives the private data.  It holds
:class:`~repro.private.protected.ProtectedDataSource` handles and interacts
with the kernel through:

* *Private* requests — transformations, which return new handles,
* *Private→Public* requests — measurements (Laplace queries, exponential-
  mechanism selections), which spend budget and return noisy answers,
* *Public* metadata — schema and domain sizes, which are data-independent.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..accounting.base import Accountant, Cost
from ..accounting.accountants import PureDPAccountant
from ..dataset.relation import STABILITY, Relation
from ..matrix import LinearQueryMatrix, ReductionMatrix, ensure_matrix
from ..telemetry.spans import trace_span
from .budget import BudgetTracker
from .exceptions import (
    BudgetExceededError,
    DeadlineExceededError,
    InvalidTransformationError,
    UnknownSourceError,
)


@dataclass
class MeasurementRecord:
    """One entry of the kernel's query history.

    ``epsilon`` is the mechanism's pure-DP parameter (or the ε of a Gaussian
    measurement's per-call ``(ε, δ)`` target); ``cost`` is what the
    accountant actually charged at the measured source in its *native* units
    (equal to ``epsilon`` under pure accounting, e.g. ``ε²/2`` under zCDP),
    and ``delta`` is the per-call δ component (0 for δ-free mechanisms).
    """

    source: str
    operator: str
    epsilon: float
    noise_scale: float
    num_queries: int
    delta: float = 0.0
    cost: float = 0.0


@dataclass(frozen=True)
class BudgetSnapshot:
    """Point-in-time view of the kernel's budget and history counters.

    Used by the service layer to bracket a plan execution: the difference of
    two snapshots gives the budget spent and the history records produced by
    exactly that execution, even when other plans ran before it.
    """

    epsilon_total: float
    consumed: float
    remaining: float
    num_measurements: int
    #: root-charge ledger length — brackets of two snapshots identify the
    #: exact charges one execution made (see ``budget_charged_between``).
    num_charges: int = 0


@dataclass
class _Source:
    """Internal storage of a data source (table or vector)."""

    name: str
    data: object  # Relation | np.ndarray | None (partition dummy)
    kind: str  # "table" | "vector" | "partition"
    metadata: dict = field(default_factory=dict)


class ProtectedKernel:
    """Holds the private data and enforces differential privacy for any plan."""

    def __init__(
        self,
        table: Relation,
        epsilon_total: float | None = None,
        seed: int | None = None,
        accountant: Accountant | None = None,
    ):
        """Wrap ``table`` in a kernel enforcing the accountant's calculus.

        ``accountant=None`` (the default) gives the paper's pure ε-DP
        semantics over ``epsilon_total``; passing an
        :class:`~repro.accounting.Accountant` swaps the privacy calculus
        (budget totals, mechanism costs, composition) while the operator
        surface stays identical.  When an accountant is supplied it carries
        its own budget and ``epsilon_total`` is ignored.
        """
        if accountant is None:
            accountant = PureDPAccountant(epsilon_total)
        self._accountant = accountant
        self._budget = BudgetTracker(accountant=accountant)
        self._sources: dict[str, _Source] = {
            "root": _Source("root", table, "table", {"schema": table.schema})
        }
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._history: list[MeasurementRecord] = []
        self._name_counter = 0
        #: durability hook: called with every history record the moment it is
        #: appended (still before the noisy answer is returned to the caller).
        self.measurement_listener: Callable[[MeasurementRecord], None] | None = None
        #: fault-injection seams (``kernel.before_charge`` /
        #: ``kernel.after_charge``); None in production — one attribute check
        #: per measurement.
        self.fault_injector = None
        #: absolute ``time.perf_counter()`` deadline for the currently
        #: executing request, set/cleared by the scheduler; charges attempted
        #: past it raise :class:`DeadlineExceededError` *before* spending.
        #: ``deadline_started`` anchors relative times in the error message.
        self.deadline: float | None = None
        self.deadline_started: float | None = None

    # ------------------------------------------------------------------
    # Bookkeeping helpers.
    # ------------------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}_{self._name_counter}"

    def _get(self, name: str) -> _Source:
        if name not in self._sources:
            raise UnknownSourceError(f"unknown data-source variable {name!r}")
        return self._sources[name]

    def _table(self, name: str) -> Relation:
        source = self._get(name)
        if source.kind != "table":
            raise InvalidTransformationError(f"source {name!r} is not a table")
        if source.data is None:
            raise InvalidTransformationError(
                f"source {name!r} was restored without data; derive a fresh "
                "source from the root instead of reusing pre-crash handles"
            )
        return source.data

    def _vector(self, name: str) -> np.ndarray:
        source = self._get(name)
        if source.kind != "vector":
            raise InvalidTransformationError(f"source {name!r} is not a vector")
        if source.data is None:
            raise InvalidTransformationError(
                f"source {name!r} was restored without data; derive a fresh "
                "source from the root instead of reusing pre-crash handles"
            )
        return source.data

    def _record(self, record: MeasurementRecord) -> None:
        """Append one history record, mirroring it to the durable journal."""
        if self.measurement_listener is not None:
            self.measurement_listener(record)
        self._history.append(record)

    # ------------------------------------------------------------------
    # Public (non-private) metadata.
    # ------------------------------------------------------------------
    @property
    def epsilon_total(self) -> float:
        """Total budget in the accountant's native units (ε, or ρ for zCDP)."""
        return self._budget.epsilon_total

    @property
    def accountant(self) -> Accountant:
        """The privacy calculus this kernel charges against."""
        return self._accountant

    @property
    def budget_tracker(self) -> BudgetTracker:
        """The lineage ledger (public counters only; used by the odometer)."""
        return self._budget

    def budget_consumed(self) -> float:
        """Total budget consumed so far (at the root, native units)."""
        return self._budget.consumed()

    def budget_remaining(self) -> float:
        return self._budget.remaining()

    def budget_spent_cost(self) -> Cost:
        """Root-level spend as a full cost vector (primary + δ components)."""
        return self._budget.spent()

    def accounting_report(self) -> dict:
        """JSON-ready spend summary in native units and converted ``(ε, δ)``."""
        return self._accountant.report(
            self._budget.spent(), self._budget.remaining_cost()
        )

    @property
    def seed(self) -> int | None:
        """Seed of the noise generator (set at construction or via :meth:`reseed`)."""
        return self._seed

    def reseed(self, seed: int | None) -> None:
        """Reset the noise generator to a known seed.

        This is a service-layer hook for reproducible responses: the scheduler
        derives a distinct seed per request and reseeds before executing the
        plan, so the same request always yields the same noisy answer.  Never
        reseed with the same value before *different* measurements — replaying
        noise across distinct queries voids the privacy guarantee.
        """
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def history(self) -> list[MeasurementRecord]:
        """A copy of the measurement history (public: contains no raw data)."""
        return list(self._history)

    def history_query(
        self,
        source: str | None = None,
        operator: str | None = None,
        since: int = 0,
    ) -> list[MeasurementRecord]:
        """Filtered view of the measurement history.

        ``since`` restricts to records appended at index >= ``since`` (pair it
        with :meth:`budget_snapshot` to isolate one plan execution); ``source``
        and ``operator`` filter by the record's fields.
        """
        records = self._history[since:]
        if source is not None:
            records = [record for record in records if record.source == source]
        if operator is not None:
            records = [record for record in records if record.operator == operator]
        return list(records)

    def budget_snapshot(self) -> BudgetSnapshot:
        """Atomic view of the budget counters and history length."""
        return BudgetSnapshot(
            epsilon_total=self._budget.epsilon_total,
            consumed=self._budget.consumed(),
            remaining=self._budget.remaining(),
            num_measurements=len(self._history),
            num_charges=self._budget.num_charges,
        )

    def budget_charged_between(
        self, before: BudgetSnapshot, after: BudgetSnapshot | None = None
    ) -> float:
        """Primary spend of exactly the charges between two snapshots.

        Summed from the bracketed ledger slice itself (``math.fsum``), not as
        a difference of running totals — so the value is identical however
        concurrent executions interleaved around the bracket, which is what
        lets every executor backend report byte-identical per-request spend.
        ``after=None`` means "up to now".
        """
        stop = after.num_charges if after is not None else self._budget.num_charges
        return self._budget.charged_between(before.num_charges, stop)

    def source_kind(self, name: str) -> str:
        return self._get(name).kind

    def schema(self, name: str):
        """Schema of a table source (data-independent metadata)."""
        return self._table(name).schema

    def domain_size(self, name: str) -> int:
        """Length of a vector source / vectorised domain size of a table source."""
        source = self._get(name)
        if source.kind == "vector":
            return int(source.data.size)
        if source.kind == "table":
            return source.data.domain_size
        raise InvalidTransformationError("partition dummy sources have no domain size")

    # ------------------------------------------------------------------
    # Private operators: table transformations.
    # ------------------------------------------------------------------
    def transform_where(self, name: str, predicate) -> str:
        """Filter records (1-stable)."""
        table = self._table(name)
        with trace_span(
            "kernel.transform.where", source=name, stability=STABILITY["where"]
        ):
            new = self._fresh_name("where")
            self._sources[new] = _Source(new, table.where(predicate), "table")
            self._budget.add_derived(new, name, STABILITY["where"])
            return new

    def transform_select(self, name: str, attributes: Sequence[str]) -> str:
        """Project onto a subset of attributes (1-stable)."""
        table = self._table(name)
        with trace_span(
            "kernel.transform.select", source=name, stability=STABILITY["select"]
        ):
            new = self._fresh_name("select")
            self._sources[new] = _Source(new, table.select(attributes), "table")
            self._budget.add_derived(new, name, STABILITY["select"])
            return new

    def transform_vectorize(self, name: str) -> str:
        """T-Vectorize: turn a table into its histogram vector (1-stable)."""
        table = self._table(name)
        with trace_span(
            "kernel.transform.vectorize",
            source=name,
            stability=STABILITY["vectorize"],
            domain_size=int(table.domain_size),
        ):
            new = self._fresh_name("vector")
            self._sources[new] = _Source(
                new, table.vectorize(), "vector", {"domain": table.schema.domain}
            )
            self._budget.add_derived(new, name, STABILITY["vectorize"])
            return new

    def transform_group_by(self, name: str, attribute: str) -> dict[int, str]:
        """GroupBy an attribute (2-stable); returns value → new source variable."""
        table = self._table(name)
        result = {}
        for value, group in table.group_by(attribute).items():
            new = self._fresh_name(f"group_{attribute}")
            self._sources[new] = _Source(new, group, "table")
            self._budget.add_derived(new, name, STABILITY["group_by"])
            result[value] = new
        return result

    # ------------------------------------------------------------------
    # Private operators: vector transformations.
    # ------------------------------------------------------------------
    def transform_reduce_by_partition(self, name: str, partition: ReductionMatrix) -> str:
        """V-ReduceByPartition: ``x' = P x`` (1-stable)."""
        vector = self._vector(name)
        if partition.shape[1] != vector.size:
            raise InvalidTransformationError(
                f"partition has {partition.shape[1]} columns but the vector has {vector.size} cells"
            )
        with trace_span(
            "kernel.transform.reduce_by_partition",
            source=name,
            input_size=int(vector.size),
            output_size=int(partition.shape[0]),
            stability=float(partition.sensitivity()),
        ):
            new = self._fresh_name("reduce")
            self._sources[new] = _Source(new, partition.reduce_vector(vector), "vector")
            self._budget.add_derived(new, name, partition.sensitivity())
            return new

    def transform_linear(self, name: str, matrix: LinearQueryMatrix) -> str:
        """Generic linear vector transformation ``x' = M x``.

        Stability equals the maximum L1 column norm of ``M`` (Sec. 5.1).
        """
        vector = self._vector(name)
        matrix = ensure_matrix(matrix)
        if matrix.shape[1] != vector.size:
            raise InvalidTransformationError("matrix column count does not match the vector")
        with trace_span(
            "kernel.transform.linear",
            source=name,
            input_size=int(vector.size),
            output_size=int(matrix.shape[0]),
            stability=float(matrix.sensitivity()),
        ):
            new = self._fresh_name("linear")
            self._sources[new] = _Source(new, matrix.matvec(vector), "vector")
            self._budget.add_derived(new, name, matrix.sensitivity())
            return new

    def transform_split_by_partition(
        self, name: str, partition: ReductionMatrix
    ) -> tuple[str, list[str]]:
        """V-SplitByPartition: split a vector into disjoint pieces (1-stable).

        Returns the dummy partition variable and one child variable per group,
        enabling parallel composition across the children.
        """
        vector = self._vector(name)
        if partition.shape[1] != vector.size:
            raise InvalidTransformationError("partition does not match the vector size")
        with trace_span(
            "kernel.transform.split_by_partition",
            source=name,
            input_size=int(vector.size),
            num_groups=int(partition.shape[0]),
        ):
            dummy = self._fresh_name("partition")
            self._sources[dummy] = _Source(dummy, None, "partition")
            self._budget.add_partition(dummy, name)
            children = []
            for g, idx in enumerate(partition.split_indices()):
                child = self._fresh_name(f"split{g}")
                self._sources[child] = _Source(child, vector[idx], "vector", {"indices": idx})
                self._budget.add_derived(child, dummy, 1.0)
                children.append(child)
            return dummy, children

    def transform_table_split(self, name: str, attribute: str) -> tuple[str, dict[int, str]]:
        """SplitByPartition on a table keyed by an attribute's value (1-stable)."""
        table = self._table(name)
        dummy = self._fresh_name("tpartition")
        self._sources[dummy] = _Source(dummy, None, "partition")
        self._budget.add_partition(dummy, name)
        children = {}
        for value, group in table.group_by(attribute).items():
            child = self._fresh_name(f"tsplit_{attribute}_{value}")
            self._sources[child] = _Source(child, group, "table")
            self._budget.add_derived(child, dummy, 1.0)
            children[value] = child
        return dummy, children

    # ------------------------------------------------------------------
    # Private -> Public operators: measurements.
    # ------------------------------------------------------------------
    def _charge(self, name: str, epsilon: float, cost: Cost) -> None:
        if epsilon <= 0:
            raise ValueError("the privacy parameter of a measurement must be positive")
        if self.deadline is not None:
            now = time.perf_counter()
            if now > self.deadline:
                # Checked before spending: a timed-out plan stops charging,
                # and whatever it charged earlier is its true partial spend.
                anchor = self.deadline_started if self.deadline_started is not None else self.deadline
                raise DeadlineExceededError(self.deadline - anchor, now - anchor)
        if self.fault_injector is not None:
            self.fault_injector.fire("kernel.before_charge", name, epsilon)
        if not self._budget.charge(name, cost):
            raise BudgetExceededError(cost.primary, self._budget.remaining())
        if self.fault_injector is not None:
            # The charge-ahead crash window: budget charged (and journaled),
            # noisy answer not yet computed or released.
            self.fault_injector.fire("kernel.after_charge", name, epsilon)

    def measure_vector_laplace(
        self, name: str, queries: LinearQueryMatrix, epsilon: float
    ) -> np.ndarray:
        """Vector Laplace: noisy answers ``M x + (sensitivity(M)/eps) * Lap(1)^m``.

        The sensitivity is computed automatically from the query matrix; the
        budget charged on the source is ``epsilon`` and the kernel's budget
        tracker converts it to root-level cost through the lineage stabilities.
        """
        vector = self._vector(name)
        queries = ensure_matrix(queries)
        if queries.shape[1] != vector.size:
            raise InvalidTransformationError(
                f"query matrix has {queries.shape[1]} columns but the vector has {vector.size} cells"
            )
        with trace_span(
            "kernel.measure.laplace",
            source=name,
            epsilon=float(epsilon),
            num_queries=int(queries.shape[0]),
            domain_size=int(vector.size),
        ) as span:
            cost = self._accountant.laplace_cost(epsilon)
            self._charge(name, epsilon, cost)
            sensitivity = queries.sensitivity()
            scale = sensitivity / epsilon
            span.set_attributes(
                cost=float(cost.primary),
                sensitivity=float(sensitivity),
                noise_scale=float(scale),
            )
            answers = queries.matvec(vector)
            noise = self._rng.laplace(0.0, scale, size=queries.shape[0])
            self._record(
                MeasurementRecord(
                    name, "VectorLaplace", epsilon, scale, queries.shape[0], cost=cost.primary
                )
            )
            return answers + noise

    def measure_vector_gaussian(
        self,
        name: str,
        queries: LinearQueryMatrix,
        epsilon: float,
        delta: float | None = None,
    ) -> np.ndarray:
        """Vector Gaussian: noisy answers ``M x + N(0, σ²)^m``.

        The noise is calibrated to the matrix's **L2** sensitivity and the
        per-call ``(ε, δ)`` target — σ and the charged cost both come from
        the kernel's accountant, so the same call is the analytic Gaussian
        mechanism under ``(ε, δ)`` accounting and the tighter
        ``σ = Δ₂/sqrt(2ρ)`` calibration under zCDP.  ``delta=None`` resolves
        to the accountant's per-measurement default.  Unsupported (raises
        :class:`~repro.private.exceptions.UnsupportedMechanismError`) under
        pure ε-DP, which the Gaussian mechanism cannot satisfy.
        """
        vector = self._vector(name)
        queries = ensure_matrix(queries)
        if queries.shape[1] != vector.size:
            raise InvalidTransformationError(
                f"query matrix has {queries.shape[1]} columns but the vector has {vector.size} cells"
            )
        if epsilon <= 0:
            raise ValueError("the privacy parameter of a measurement must be positive")
        if delta is None:
            delta = self._accountant.default_delta
        with trace_span(
            "kernel.measure.gaussian",
            source=name,
            epsilon=float(epsilon),
            delta=float(delta),
            num_queries=int(queries.shape[0]),
            domain_size=int(vector.size),
        ) as span:
            sensitivity = queries.sensitivity_l2()
            sigma, cost = self._accountant.gaussian_mechanism(sensitivity, epsilon, delta)
            self._charge(name, epsilon, cost)
            span.set_attributes(
                cost=float(cost.primary),
                sensitivity_l2=float(sensitivity),
                noise_scale=float(sigma),
            )
            answers = queries.matvec(vector)
            noise = self._rng.normal(0.0, sigma, size=queries.shape[0])
            self._record(
                MeasurementRecord(
                    name,
                    "VectorGaussian",
                    epsilon,
                    sigma,
                    queries.shape[0],
                    delta=float(delta),
                    cost=cost.primary,
                )
            )
            return answers + noise

    def measure_noisy_count(self, name: str, epsilon: float) -> float:
        """NoisyCount on a table source: ``|D| + Lap(1/eps)``."""
        table = self._table(name)
        with trace_span(
            "kernel.measure.noisy_count", source=name, epsilon=float(epsilon)
        ) as span:
            cost = self._accountant.laplace_cost(epsilon)
            self._charge(name, epsilon, cost)
            span.set_attributes(cost=float(cost.primary), noise_scale=1.0 / epsilon)
            self._record(
                MeasurementRecord(name, "NoisyCount", epsilon, 1.0 / epsilon, 1, cost=cost.primary)
            )
            return float(len(table) + self._rng.laplace(0.0, 1.0 / epsilon))

    def select_exponential_mechanism(
        self,
        name: str,
        scores: Callable[[np.ndarray], np.ndarray],
        num_candidates: int,
        epsilon: float,
        score_sensitivity: float,
    ) -> int:
        """Exponential mechanism over ``num_candidates`` options.

        ``scores(x)`` maps the private vector to a score per candidate (higher
        is better).  Used by the MWEM worst-approximated query selection and by
        PrivBayes network selection.
        """
        vector = self._vector(name)
        with trace_span(
            "kernel.select.exponential",
            source=name,
            epsilon=float(epsilon),
            num_candidates=int(num_candidates),
            domain_size=int(vector.size),
        ) as span:
            return self._select_exponential(
                name, scores, num_candidates, epsilon, score_sensitivity, vector, span
            )

    def _select_exponential(
        self, name, scores, num_candidates, epsilon, score_sensitivity, vector, span
    ) -> int:
        cost = self._accountant.exponential_cost(epsilon)
        self._charge(name, epsilon, cost)
        span.set_attributes(
            cost=float(cost.primary),
            noise_scale=2.0 * score_sensitivity / epsilon,
        )
        utility = np.asarray(scores(vector), dtype=np.float64)
        if utility.shape != (num_candidates,):
            raise ValueError("score function returned the wrong number of candidates")
        logits = epsilon * utility / (2.0 * score_sensitivity)
        logits -= logits.max()
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        choice = int(self._rng.choice(num_candidates, p=probabilities))
        # The record's noise_scale is the mechanism's actual scale — scores
        # are perturbed on the 2·Δu/ε temperature — not the bare score
        # sensitivity an earlier revision stored there.
        self._record(
            MeasurementRecord(
                name,
                "ExponentialMechanism",
                epsilon,
                2.0 * score_sensitivity / epsilon,
                1,
                cost=cost.primary,
            )
        )
        return choice

    def measure_laplace_scalar(
        self, name: str, statistic: Callable[[np.ndarray], float], sensitivity: float, epsilon: float
    ) -> float:
        """Laplace measurement of an arbitrary scalar statistic of the vector.

        The caller declares the statistic's sensitivity; this primitive is used
        by vetted Private→Public operators such as the DAWA partition scoring.
        """
        vector = self._vector(name)
        with trace_span(
            "kernel.measure.laplace_scalar",
            source=name,
            epsilon=float(epsilon),
            sensitivity=float(sensitivity),
            domain_size=int(vector.size),
        ) as span:
            cost = self._accountant.laplace_cost(epsilon)
            self._charge(name, epsilon, cost)
            value = float(statistic(vector))
            scale = sensitivity / epsilon
            span.set_attributes(cost=float(cost.primary), noise_scale=float(scale))
            self._record(
                MeasurementRecord(name, "LaplaceScalar", epsilon, scale, 1, cost=cost.primary)
            )
            return value + float(self._rng.laplace(0.0, scale))

    # ------------------------------------------------------------------
    # Durable state (snapshot/restore).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-ready serialisation of the kernel's *bookkeeping* state.

        Contains the budget graph, the root ledger, the measurement history,
        the noise seed and the name counter — everything needed to resume
        exact accounting — but never the private data itself: sources other
        than the root are recorded by name and kind only.  Restoring requires
        the deployment to supply the original table (the private data is the
        operator's, not the snapshot's).
        """
        return {
            "seed": self._seed,
            "name_counter": self._name_counter,
            "history": [asdict(record) for record in self._history],
            "source_kinds": {
                name: source.kind for name, source in self._sources.items()
            },
            "budget": self._budget.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore the bookkeeping saved by :meth:`state_dict`.

        Must be called on a freshly-built kernel wrapping the original table
        with an equivalent accountant.  Non-root sources come back as *data
        stubs*: their lineage, kind and budget counters are exact (audits
        keep working), but measuring or transforming them raises — post-crash
        work derives fresh sources from the root.
        """
        self._seed = state["seed"]
        self._rng = np.random.default_rng(self._seed)
        self._name_counter = int(state["name_counter"])
        self._history = [MeasurementRecord(**record) for record in state["history"]]
        self._budget.load_state(state["budget"])
        for name, kind in state["source_kinds"].items():
            if name != "root":
                self._sources[name] = _Source(name, None, kind, {"restored": True})

    def restore_measurement(self, record: MeasurementRecord) -> None:
        """Append a journal-recovered history record (replay path only).

        Bypasses the ``measurement_listener`` — the record is already in the
        journal being replayed.
        """
        self._history.append(record)

    def adopt_measurement(self, record: MeasurementRecord) -> None:
        """Append a history record produced by a worker process's kernel.

        Unlike :meth:`restore_measurement`, adoption *does* fire the
        ``measurement_listener``: the record is new — it was measured by a
        throwaway kernel on the executor's process backend and has not been
        journaled yet.
        """
        self._record(record)

    # ------------------------------------------------------------------
    # Lineage introspection (public).
    # ------------------------------------------------------------------
    def lineage(self, name: str) -> list[str]:
        return self._budget.lineage(name)

    def cumulative_stability(self, name: str) -> float:
        return self._budget.cumulative_stability(name)

    def source_consumed(self, name: str) -> float:
        return self._budget.consumed(name)
