"""Synthetic Current-Population-Survey-like census data (Sec. 9.2 substrate).

The paper's census case study uses the March 2000 CPS public-use file: 49,436
heads-of-household with income, age, race, marital status and gender,
discretised to domains 5000 x 5 x 4 x 7 x 2 = 1,400,000 cells.

That file is not redistributable here, so this module generates a *seeded
synthetic stand-in* with the same schema, the same discretisation and
realistic structure: log-normal income correlated with age, an age pyramid,
plausible categorical marginals and mild correlations between marital status,
age and gender.  The experiments it feeds (Table 5, Fig. 4b) measure how DP
mechanisms cope with a sparse, smooth, high-dimensional vector — properties
the synthetic data preserves.
"""

from __future__ import annotations

import numpy as np

from .relation import Relation
from .schema import Attribute, Schema

#: Discretisation used by the paper: income 5000 bins over (0, 750000),
#: age 5 bins over (0, 100), marital 7, race 4, gender 2.
CENSUS_DOMAIN = (5000, 5, 7, 4, 2)
CENSUS_RECORDS = 49_436


def census_schema(income_bins: int = 5000, age_bins: int = 5) -> Schema:
    """The census schema with configurable income/age discretisation."""
    return Schema.build(
        [
            Attribute("income", income_bins, lo=0.0, hi=750_000.0),
            Attribute("age", age_bins, lo=0.0, hi=100.0),
            Attribute(
                "marital",
                7,
                labels=(
                    "married-civilian",
                    "married-af",
                    "married-absent",
                    "widowed",
                    "divorced",
                    "separated",
                    "never-married",
                ),
            ),
            Attribute("race", 4, labels=("white", "black", "asian", "other")),
            Attribute("gender", 2, labels=("male", "female")),
        ],
        name="Census",
    )


def synthetic_cps(
    num_records: int = CENSUS_RECORDS,
    income_bins: int = 5000,
    age_bins: int = 5,
    seed: int = 2000,
) -> Relation:
    """Generate a synthetic CPS-like relation of heads-of-household.

    Parameters
    ----------
    num_records:
        Number of records (defaults to the paper's 49,436).
    income_bins, age_bins:
        Discretisation of the numeric attributes (scaled-down domains are
        handy for tests).
    seed:
        Seed of the generator — the dataset is fully deterministic.
    """
    rng = np.random.default_rng(seed)
    schema = census_schema(income_bins=income_bins, age_bins=age_bins)

    # Age of heads-of-household: roughly 18-95 with a broad hump around 45.
    age_years = np.clip(rng.normal(47.0, 16.0, size=num_records), 18.0, 99.0)

    # Income: log-normal, mildly increasing with age until ~55 then declining.
    age_effect = 1.0 + 0.015 * (age_years - 18.0) - 0.0004 * np.maximum(age_years - 55.0, 0.0) ** 2
    base = rng.lognormal(mean=10.3, sigma=0.75, size=num_records)
    income_dollars = np.clip(base * np.maximum(age_effect, 0.2), 0.0, 749_999.0)
    # A small share report zero income.
    zero_mask = rng.random(num_records) < 0.04
    income_dollars[zero_mask] = 0.0

    # Gender of the head-of-household: slight male majority.
    gender = (rng.random(num_records) < 0.48).astype(np.int64)  # 1 = female

    # Marital status depends on age (young -> never married, old -> widowed).
    marital = np.empty(num_records, dtype=np.int64)
    young = age_years < 30
    mid = (age_years >= 30) & (age_years < 65)
    old = age_years >= 65
    marital[young] = rng.choice(7, p=[0.25, 0.01, 0.02, 0.0, 0.05, 0.03, 0.64], size=young.sum())
    marital[mid] = rng.choice(7, p=[0.55, 0.01, 0.02, 0.02, 0.17, 0.04, 0.19], size=mid.sum())
    marital[old] = rng.choice(7, p=[0.52, 0.01, 0.01, 0.26, 0.12, 0.02, 0.06], size=old.sum())

    # Race marginals roughly matching the 2000 survey.
    race = rng.choice(4, p=[0.78, 0.12, 0.05, 0.05], size=num_records)

    income_attr = schema["income"]
    age_attr = schema["age"]
    income_bin = np.clip(
        (income_dollars / (income_attr.hi / income_attr.size)).astype(np.int64),
        0,
        income_attr.size - 1,
    )
    age_bin = np.clip(
        (age_years / (age_attr.hi / age_attr.size)).astype(np.int64), 0, age_attr.size - 1
    )

    return Relation.from_columns(
        schema,
        {
            "income": income_bin,
            "age": age_bin,
            "marital": marital,
            "race": race,
            "gender": gender,
        },
    )


def small_census(num_records: int = 5000, seed: int = 7) -> Relation:
    """A scaled-down census (income 50 bins) for unit tests and examples."""
    return synthetic_cps(num_records=num_records, income_bins=50, age_bins=5, seed=seed)
