"""Synthetic Credit-Default data for the Naive Bayes case study (Sec. 9.3).

The paper uses the UCI "default of credit card clients" dataset: 30,000
records, a binary ``default`` label and 23 predictors, of which the case study
uses X3-X6 (education, marital status, age and the first repayment-status
attribute) for a combined predictor domain of 7 * 4 * 56 * 11 = 17,248 cells.

We generate a seeded synthetic stand-in with the same shape: a binary label
whose log-odds depend on the predictors through a sparse linear model, so a
Naive Bayes classifier trained on exact histograms attains an AUC well above
0.5 and the DP experiments can reproduce the qualitative ordering of Fig. 3
(Unperturbed > WorkloadLS / SelectLS > Identity > Majority, converging to 0.5
as epsilon shrinks).
"""

from __future__ import annotations

import numpy as np

from .relation import Relation
from .schema import Attribute, Schema

#: Predictor domains matching the paper's experiment (X3-X6): education has 7
#: codes, marital status 4, age 56 values (21..76), repayment status 11
#: values (-2..8 shifted to 0..10).  Product = 17,248 cells.
PREDICTOR_DOMAIN = (7, 4, 56, 11)
PREDICTOR_NAMES = ("education", "marriage", "age", "pay_0")
LABEL_NAME = "default"


def credit_schema() -> Schema:
    """Schema of the synthetic credit-default relation (label + 4 predictors)."""
    return Schema.build(
        [
            Attribute(LABEL_NAME, 2, labels=("no-default", "default")),
            Attribute("education", PREDICTOR_DOMAIN[0]),
            Attribute("marriage", PREDICTOR_DOMAIN[1]),
            Attribute("age", PREDICTOR_DOMAIN[2], lo=21.0, hi=77.0),
            Attribute("pay_0", PREDICTOR_DOMAIN[3]),
        ],
        name="CreditDefault",
    )


def synthetic_credit_default(num_records: int = 30_000, seed: int = 2009) -> Relation:
    """Generate the synthetic credit-default relation.

    The repayment-status attribute carries most of the signal (as in the real
    data, where months of payment delay strongly predict default); age,
    education and marital status contribute weakly.
    """
    rng = np.random.default_rng(seed)

    education = rng.choice(
        PREDICTOR_DOMAIN[0], p=[0.02, 0.35, 0.45, 0.15, 0.01, 0.01, 0.01], size=num_records
    )
    marriage = rng.choice(PREDICTOR_DOMAIN[1], p=[0.01, 0.45, 0.52, 0.02], size=num_records)

    # Age in years 21..76 with a right-skewed hump in the thirties.
    age_years = np.clip(rng.gamma(shape=6.0, scale=6.0, size=num_records) + 21.0, 21.0, 76.0)
    age_bin = np.clip((age_years - 21.0).astype(np.int64), 0, PREDICTOR_DOMAIN[2] - 1)

    # Repayment status: concentrated around "paid duly" (values 0-2 after the
    # shift), with a tail of increasing delays.
    pay_0 = rng.choice(
        PREDICTOR_DOMAIN[3],
        p=[0.10, 0.12, 0.45, 0.18, 0.07, 0.04, 0.02, 0.01, 0.005, 0.003, 0.002],
        size=num_records,
    )

    # Default probability: logistic in the delay attribute plus weak effects.
    logits = (
        -1.9
        + 0.75 * np.maximum(pay_0.astype(float) - 2.0, 0.0)
        + 0.10 * (education == 4).astype(float)
        - 0.05 * (marriage == 1).astype(float)
        + 0.01 * (age_bin.astype(float) / 10.0)
    )
    prob_default = 1.0 / (1.0 + np.exp(-logits))
    label = (rng.random(num_records) < prob_default).astype(np.int64)

    return Relation.from_columns(
        credit_schema(),
        {
            LABEL_NAME: label,
            "education": education,
            "marriage": marriage,
            "age": age_bin,
            "pay_0": pay_0,
        },
    )
