"""Synthetic DPBench-style benchmark distributions (evaluation substrate).

The paper's data-dependent experiments (Table 4, Table 6, Fig. 4a) run over a
"diverse collection of 10 datasets taken from DPBench" — 1-D histograms such
as HEPTH, ADULTFRANK, MEDCOST, SEARCHLOGS, PATENT, INCOME, NETTRACE and 2-D
spatial datasets.  Those files are not bundled here, so this module provides
ten seeded synthetic distributions that span the same qualitative regimes the
benchmark was designed to cover: smooth vs spiky, dense vs sparse, uniform vs
heavy-tailed, clustered vs scattered.

Each generator returns a non-negative integer data vector (a histogram).  The
``scale`` parameter controls the total number of records.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

DatasetGenerator = Callable[[int, int, int], np.ndarray]


def _normalise_to_scale(weights: np.ndarray, scale: int, rng: np.random.Generator) -> np.ndarray:
    """Turn non-negative weights into an integer histogram with ~``scale`` records."""
    weights = np.clip(np.asarray(weights, dtype=np.float64), 0.0, None)
    total = weights.sum()
    if total <= 0:
        weights = np.ones_like(weights)
        total = weights.sum()
    probabilities = weights / total
    return rng.multinomial(scale, probabilities).astype(np.float64)


def uniform(n: int, scale: int = 100_000, seed: int = 0) -> np.ndarray:
    """Flat histogram: the regime where Uniform/Identity do well."""
    rng = np.random.default_rng(seed)
    return _normalise_to_scale(np.ones(n), scale, rng)


def gaussian_bump(n: int, scale: int = 100_000, seed: int = 1) -> np.ndarray:
    """A single smooth mode centred in the domain."""
    rng = np.random.default_rng(seed)
    x = np.arange(n)
    weights = np.exp(-0.5 * ((x - n / 2) / (n / 12)) ** 2)
    return _normalise_to_scale(weights, scale, rng)


def bimodal(n: int, scale: int = 100_000, seed: int = 2) -> np.ndarray:
    """Two separated smooth modes."""
    rng = np.random.default_rng(seed)
    x = np.arange(n)
    weights = np.exp(-0.5 * ((x - n / 4) / (n / 20)) ** 2) + 0.6 * np.exp(
        -0.5 * ((x - 3 * n / 4) / (n / 16)) ** 2
    )
    return _normalise_to_scale(weights, scale, rng)


def power_law(n: int, scale: int = 100_000, seed: int = 3) -> np.ndarray:
    """Zipf-like heavy tail (e.g. search-log frequencies)."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, n + 1) ** 1.1
    return _normalise_to_scale(weights, scale, rng)


def sparse_spikes(n: int, scale: int = 100_000, seed: int = 4) -> np.ndarray:
    """Mostly-empty domain with a few tall spikes (e.g. network trace ports)."""
    rng = np.random.default_rng(seed)
    weights = np.zeros(n)
    spikes = rng.choice(n, size=max(4, n // 200), replace=False)
    weights[spikes] = rng.pareto(1.5, size=len(spikes)) + 1.0
    return _normalise_to_scale(weights, scale, rng)


def piecewise_uniform(n: int, scale: int = 100_000, seed: int = 5) -> np.ndarray:
    """A few flat segments of very different densities (DAWA's best case)."""
    rng = np.random.default_rng(seed)
    num_segments = 8
    edges = np.sort(rng.choice(np.arange(1, n), size=num_segments - 1, replace=False))
    edges = np.concatenate([[0], edges, [n]])
    weights = np.zeros(n)
    for lo, hi in zip(edges[:-1], edges[1:]):
        weights[lo:hi] = rng.pareto(1.0) + 0.01
    return _normalise_to_scale(weights, scale, rng)


def exponential_decay(n: int, scale: int = 100_000, seed: int = 6) -> np.ndarray:
    """Counts decaying exponentially across the domain (e.g. income tails)."""
    rng = np.random.default_rng(seed)
    weights = np.exp(-np.arange(n) / (n / 8))
    return _normalise_to_scale(weights, scale, rng)


def clustered(n: int, scale: int = 100_000, seed: int = 7) -> np.ndarray:
    """Many narrow clusters scattered over the domain."""
    rng = np.random.default_rng(seed)
    weights = np.full(n, 1e-3)
    centers = rng.choice(n, size=max(6, n // 128), replace=False)
    x = np.arange(n)
    for c in centers:
        weights += np.exp(-0.5 * ((x - c) / (n / 256 + 1)) ** 2) * rng.pareto(1.2)
    return _normalise_to_scale(weights, scale, rng)


def zipf_shuffled(n: int, scale: int = 100_000, seed: int = 8) -> np.ndarray:
    """Heavy-tailed counts with no spatial smoothness (shuffled Zipf)."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, n + 1) ** 0.9
    rng.shuffle(weights)
    return _normalise_to_scale(weights, scale, rng)


def staircase(n: int, scale: int = 100_000, seed: int = 9) -> np.ndarray:
    """Monotone step function: favourable for hierarchical strategies."""
    rng = np.random.default_rng(seed)
    steps = 16
    weights = np.repeat(np.linspace(1.0, 20.0, steps), int(np.ceil(n / steps)))[:n]
    return _normalise_to_scale(weights, scale, rng)


#: The ten named 1-D benchmark distributions used by the evaluation harness.
DATASETS_1D: dict[str, DatasetGenerator] = {
    "UNIFORM": uniform,
    "GAUSSIAN": gaussian_bump,
    "BIMODAL": bimodal,
    "POWERLAW": power_law,
    "SPARSE": sparse_spikes,
    "PIECEWISE": piecewise_uniform,
    "EXPDECAY": exponential_decay,
    "CLUSTERED": clustered,
    "ZIPFSHUF": zipf_shuffled,
    "STAIRCASE": staircase,
}


def load_1d(name: str, n: int = 4096, scale: int = 100_000, seed: int | None = None) -> np.ndarray:
    """Load one of the named 1-D distributions as a data vector of length ``n``."""
    key = name.upper()
    if key not in DATASETS_1D:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS_1D)}")
    generator = DATASETS_1D[key]
    default_seed = list(DATASETS_1D).index(key)
    return generator(n, scale, default_seed if seed is None else seed)


def load_all_1d(n: int = 4096, scale: int = 100_000) -> dict[str, np.ndarray]:
    """All ten 1-D benchmark vectors, keyed by name."""
    return {name: load_1d(name, n=n, scale=scale) for name in DATASETS_1D}


def load_2d(
    name: str = "GAUSS2D", shape: tuple[int, int] = (256, 256), scale: int = 1_000_000, seed: int = 0
) -> np.ndarray:
    """Synthetic 2-D spatial datasets (for UniformGrid / AdaptiveGrid / Quadtree).

    Supported names: ``GAUSS2D`` (one blob), ``MIXTURE2D`` (several blobs of
    different spread), ``SPARSE2D`` (scattered points), ``UNIFORM2D``.
    Returns the flattened row-major histogram of size ``rows * cols``.
    """
    rng = np.random.default_rng(seed)
    rows, cols = shape
    key = name.upper()
    r = np.arange(rows)[:, None]
    c = np.arange(cols)[None, :]
    if key == "UNIFORM2D":
        weights = np.ones((rows, cols))
    elif key == "GAUSS2D":
        weights = np.exp(
            -0.5 * (((r - rows / 2) / (rows / 8)) ** 2 + ((c - cols / 2) / (cols / 8)) ** 2)
        )
    elif key == "MIXTURE2D":
        weights = np.zeros((rows, cols))
        for _ in range(6):
            cr, cc = rng.integers(0, rows), rng.integers(0, cols)
            sr, sc = rng.uniform(rows / 40, rows / 8), rng.uniform(cols / 40, cols / 8)
            weights += np.exp(-0.5 * (((r - cr) / sr) ** 2 + ((c - cc) / sc) ** 2)) * rng.pareto(1.5)
    elif key == "SPARSE2D":
        weights = np.zeros((rows, cols))
        idx = rng.choice(rows * cols, size=max(8, rows * cols // 500), replace=False)
        weights.flat[idx] = rng.pareto(1.2, size=len(idx)) + 1.0
    else:
        raise KeyError(f"unknown 2-D dataset {name!r}")
    return _normalise_to_scale(weights.ravel(), scale, rng)
