"""In-memory relations and the table transformations of Sec. 5.1.

A :class:`Relation` stores records as a 2-D integer ndarray whose columns are
the bin indices of the schema's attributes.  The table transformation
operators mirror PINQ/EKTELO and carry a *stability* constant:

==================  =========
Transformation      Stability
==================  =========
Where (filter)      1
Select (project)    1
SplitByPartition    1
GroupBy             2
Vectorize           1
==================  =========

Adding or removing one record from the input changes the output of a c-stable
transformation by at most c records (symmetric difference for tables, L1
distance for vectors); the protected kernel multiplies budget requests by the
cumulative stability of the lineage (Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from .schema import Attribute, Schema

#: Stability constants of the supported table transformations.
STABILITY = {
    "where": 1,
    "select": 1,
    "split_by_partition": 1,
    "group_by": 2,
    "vectorize": 1,
}


@dataclass
class Relation:
    """A single-relation table of discretised records.

    Parameters
    ----------
    schema:
        The relation's :class:`~repro.dataset.schema.Schema`.
    records:
        Integer ndarray of shape ``(num_records, num_attributes)``; entry
        ``[i, j]`` is the bin index of record ``i`` on attribute ``j``.
    """

    schema: Schema
    records: np.ndarray

    def __post_init__(self):
        records = np.asarray(self.records, dtype=np.int64)
        if records.ndim == 1 and len(self.schema) == 1:
            records = records.reshape(-1, 1)
        if records.ndim != 2 or records.shape[1] != len(self.schema):
            raise ValueError(
                f"records of shape {records.shape} do not match schema with "
                f"{len(self.schema)} attributes"
            )
        for j, attr in enumerate(self.schema):
            if records.size and (records[:, j].min() < 0 or records[:, j].max() >= attr.size):
                raise ValueError(f"records contain out-of-domain values for {attr.name!r}")
        self.records = records

    # ------------------------------------------------------------------
    # Basic accessors.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.records.shape[0])

    def column(self, name: str) -> np.ndarray:
        """The bin indices of attribute ``name`` for every record."""
        return self.records[:, self.schema.index_of(name)]

    @property
    def domain(self) -> tuple[int, ...]:
        return self.schema.domain

    @property
    def domain_size(self) -> int:
        return self.schema.domain_size

    # ------------------------------------------------------------------
    # Table transformations (each returns a new Relation).
    # ------------------------------------------------------------------
    def where(self, predicate: Callable[[np.ndarray], np.ndarray] | Mapping[str, object]) -> "Relation":
        """Filter records (1-stable).

        ``predicate`` is either a callable taking the record array and
        returning a boolean mask, or a mapping from attribute name to an
        allowed value / iterable of values / ``(lo, hi)`` inclusive range
        (ranges are given as a 2-tuple of ints).
        """
        if callable(predicate):
            mask = np.asarray(predicate(self.records), dtype=bool)
        else:
            mask = np.ones(len(self), dtype=bool)
            for name, allowed in predicate.items():
                col = self.column(name)
                if isinstance(allowed, tuple) and len(allowed) == 2:
                    lo, hi = allowed
                    mask &= (col >= lo) & (col <= hi)
                elif isinstance(allowed, Iterable) and not isinstance(allowed, (str, bytes)):
                    mask &= np.isin(col, np.asarray(list(allowed)))
                else:
                    mask &= col == allowed
        return Relation(self.schema, self.records[mask])

    def select(self, names: Sequence[str]) -> "Relation":
        """Project onto the named attributes (1-stable)."""
        idx = [self.schema.index_of(name) for name in names]
        return Relation(self.schema.project(names), self.records[:, idx])

    def split_by_partition(self, assignment: np.ndarray) -> list["Relation"]:
        """Split the table into disjoint relations by a per-record group id (1-stable)."""
        assignment = np.asarray(assignment)
        if assignment.shape != (len(self),):
            raise ValueError("partition assignment must have one group id per record")
        groups = np.unique(assignment)
        return [Relation(self.schema, self.records[assignment == g]) for g in groups]

    def group_by(self, name: str) -> dict[int, "Relation"]:
        """Group records by an attribute value (2-stable), keyed by bin index."""
        col = self.column(name)
        return {
            int(value): Relation(self.schema, self.records[col == value])
            for value in np.unique(col)
        }

    # ------------------------------------------------------------------
    # Vectorisation.
    # ------------------------------------------------------------------
    def vectorize(self) -> np.ndarray:
        """T-Vectorize: the histogram over the full cross-product domain (1-stable).

        Cell ordering is row-major (C order) over the schema's attributes, the
        same convention used by :class:`repro.matrix.Kronecker`.
        """
        domain = self.domain
        if len(self) == 0:
            return np.zeros(self.domain_size, dtype=np.float64)
        flat = np.ravel_multi_index(tuple(self.records[:, j] for j in range(len(domain))), domain)
        return np.bincount(flat, minlength=self.domain_size).astype(np.float64)

    def projection_vector(self, names: Sequence[str]) -> np.ndarray:
        """Histogram of the projection onto ``names`` (select + vectorize)."""
        return self.select(names).vectorize()

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, schema: Schema, columns: Mapping[str, np.ndarray]) -> "Relation":
        """Build a relation from per-attribute bin-index columns."""
        arrays = [np.asarray(columns[a.name], dtype=np.int64) for a in schema]
        length = len(arrays[0])
        for arr in arrays:
            if len(arr) != length:
                raise ValueError("all columns must have the same length")
        return cls(schema, np.column_stack(arrays))

    @classmethod
    def from_histogram(cls, schema: Schema, histogram: np.ndarray, rng=None) -> "Relation":
        """Materialise records whose vectorisation equals ``histogram`` (integer counts)."""
        histogram = np.asarray(histogram)
        if histogram.size != schema.domain_size:
            raise ValueError("histogram size does not match the schema's domain")
        counts = np.round(histogram).astype(np.int64)
        if np.any(counts < 0):
            raise ValueError("histogram must be non-negative")
        flat_idx = np.repeat(np.arange(counts.size), counts)
        coords = np.column_stack(np.unravel_index(flat_idx, schema.domain))
        return cls(schema, coords)


def single_attribute_relation(name: str, values: np.ndarray, size: int) -> Relation:
    """Convenience: wrap a 1-D array of bin indices as a one-attribute relation."""
    schema = Schema.build([Attribute(name, size)])
    return Relation(schema, np.asarray(values, dtype=np.int64).reshape(-1, 1))
