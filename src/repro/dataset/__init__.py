"""Relational substrate: schemas, relations, table transformations, datasets."""

from .census import CENSUS_DOMAIN, census_schema, small_census, synthetic_cps
from .credit import (
    LABEL_NAME,
    PREDICTOR_DOMAIN,
    PREDICTOR_NAMES,
    credit_schema,
    synthetic_credit_default,
)
from .dpbench import DATASETS_1D, load_1d, load_2d, load_all_1d
from .relation import STABILITY, Relation, single_attribute_relation
from .schema import Attribute, Schema

__all__ = [
    "Attribute",
    "Schema",
    "Relation",
    "STABILITY",
    "single_attribute_relation",
    "census_schema",
    "synthetic_cps",
    "small_census",
    "CENSUS_DOMAIN",
    "credit_schema",
    "synthetic_credit_default",
    "PREDICTOR_DOMAIN",
    "PREDICTOR_NAMES",
    "LABEL_NAME",
    "DATASETS_1D",
    "load_1d",
    "load_all_1d",
    "load_2d",
]
