"""Schemas of single-relation tables with discretised attributes (Sec. 3).

EKTELO's input is a database instance of a single-relation schema
``T(A_1, ..., A_l)`` where every attribute is discrete (or discretised).  The
vector representation ``x`` of the table has one cell per element of the
cross-product of the attribute domains; its length is the product of the
per-attribute domain sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Attribute:
    """A discretised attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"income"``.
    size:
        Number of discrete values (bins) in this attribute's domain.
    lo, hi:
        Optional numeric range the bins discretise, used by :meth:`bin_of` to
        map raw values to bin indices (uniform-width bins).  Purely
        categorical attributes leave these as ``None``.
    labels:
        Optional human-readable labels of the categorical values.
    """

    name: str
    size: int
    lo: float | None = None
    hi: float | None = None
    labels: tuple[str, ...] | None = None

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"attribute {self.name!r} must have a positive domain size")
        if self.labels is not None and len(self.labels) != self.size:
            raise ValueError(f"attribute {self.name!r}: labels do not match domain size")

    @property
    def is_numeric(self) -> bool:
        """Whether the attribute discretises an underlying numeric range."""
        return self.lo is not None and self.hi is not None

    def bin_of(self, value: float) -> int:
        """Map a raw numeric value to its bin index (clipped to the domain)."""
        if not self.is_numeric:
            raise ValueError(f"attribute {self.name!r} is categorical; no numeric binning")
        width = (self.hi - self.lo) / self.size
        idx = int(np.floor((value - self.lo) / width))
        return int(np.clip(idx, 0, self.size - 1))

    def bin_edges(self) -> np.ndarray:
        """Uniform bin edges of a numeric attribute (length ``size + 1``)."""
        if not self.is_numeric:
            raise ValueError(f"attribute {self.name!r} is categorical; no bin edges")
        return np.linspace(self.lo, self.hi, self.size + 1)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Attribute` objects."""

    attributes: tuple[Attribute, ...]
    name: str = "T"
    _index: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self):
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate attribute names in schema")
        object.__setattr__(self, "_index", {a.name: i for i, a in enumerate(self.attributes)})

    @classmethod
    def build(cls, attributes: Iterable[Attribute], name: str = "T") -> "Schema":
        return cls(tuple(attributes), name=name)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __getitem__(self, key):
        if isinstance(key, str):
            return self.attributes[self._index[key]]
        return self.attributes[key]

    def index_of(self, name: str) -> int:
        """Position of the attribute called ``name``."""
        if name not in self._index:
            raise KeyError(f"unknown attribute {name!r}")
        return self._index[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def domain(self) -> tuple[int, ...]:
        """Per-attribute domain sizes, in schema order."""
        return tuple(a.size for a in self.attributes)

    @property
    def domain_size(self) -> int:
        """Size of the vectorised domain (product of attribute domain sizes)."""
        return int(np.prod([a.size for a in self.attributes], dtype=np.int64))

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of the projection onto the named attributes (given order)."""
        return Schema(tuple(self[name] for name in names), name=self.name)

    def describe(self) -> str:
        """Human-readable one-line summary, e.g. ``T(age:5, income:5000)``."""
        parts = ", ".join(f"{a.name}:{a.size}" for a in self.attributes)
        return f"{self.name}({parts})"
