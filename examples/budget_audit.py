"""Budget auditing: see exactly where a plan spends its privacy budget.

EKTELO's protected kernel tracks every transformation's stability and every
measurement's cost.  This example runs the DAWA-Striped census plan and prints
the audit report: per-source consumption, cumulative stabilities, and how the
parallel composition across stripes keeps the root-level total at epsilon.

Run:  python examples/budget_audit.py
"""

from __future__ import annotations

from repro.dataset import small_census
from repro.plans import DawaStripedPlan
from repro.private import audit, protect


def main() -> None:
    relation = small_census(num_records=10_000, seed=3)
    domain = relation.schema.domain
    epsilon = 1.0

    source = protect(relation, epsilon_total=epsilon, seed=0)
    vector = source.vectorize()
    plan = DawaStripedPlan(domain, stripe_axis=0)
    result = plan.run(vector, epsilon)

    report = audit(source)
    print(f"Plan: {plan.name}  (signature: {plan.signature})")
    print(f"Declared epsilon: {epsilon}   plan reported spending: {result.budget_spent:.3f}\n")
    print(report.to_text())

    num_stripes = result.info.get("num_stripes")
    print(
        f"\nNote how each of the {num_stripes} stripes was measured with the full "
        f"epsilon = {epsilon}, yet the root-level consumption is still {report.consumed_at_root:.3f} "
        "thanks to parallel composition across the disjoint stripes."
    )


if __name__ == "__main__":
    main()
