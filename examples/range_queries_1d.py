"""Answering 1-D range-query workloads: comparing the Fig. 2 plans.

This example reproduces, in miniature, the DPBench-style comparison the paper
builds on: run every 1-D plan on a few synthetic datasets and privacy budgets,
and report scaled per-query L2 error on a random range workload.  It shows the
paper's central observation — no single plan dominates; data-dependent plans
(DAWA, AHP, MWEM variants) win at small budgets or structured data, while
data-independent plans (Identity, HB) win at large budgets.

Run:  python examples/range_queries_1d.py
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table, per_query_l2_error
from repro.dataset import Attribute, Relation, Schema, load_1d
from repro.plans import (
    AhpPlan,
    DawaPlan,
    GreedyHPlan,
    H2Plan,
    HbPlan,
    IdentityPlan,
    MwemVariantD,
    UniformPlan,
)
from repro.private import protect
from repro.workload import random_range_workload


def vector_source(values, epsilon, seed):
    schema = Schema.build([Attribute("v", len(values))])
    relation = Relation.from_histogram(schema, values)
    return protect(relation, epsilon, seed=seed).vectorize()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", type=int, default=1024)
    parser.add_argument("--scale", type=int, default=200_000)
    parser.add_argument("--epsilons", type=float, nargs="+", default=[0.01, 0.1, 1.0])
    parser.add_argument("--datasets", nargs="+", default=["PIECEWISE", "SPARSE", "GAUSSIAN"])
    args = parser.parse_args()

    workload = random_range_workload(args.domain, 200, seed=0)
    plan_factories = {
        "Identity": lambda: IdentityPlan(),
        "Uniform": lambda: UniformPlan(),
        "H2": lambda: H2Plan(),
        "HB": lambda: HbPlan(),
        "Greedy-H": lambda: GreedyHPlan(workload_intervals=workload.intervals),
        "AHP": lambda: AhpPlan(),
        "DAWA": lambda: DawaPlan(workload_intervals=workload.intervals),
        "MWEM variant d": lambda: MwemVariantD(workload, rounds=8),
    }

    rows = []
    for dataset in args.datasets:
        x = load_1d(dataset, n=args.domain, scale=args.scale)
        for epsilon in args.epsilons:
            for plan_name, factory in plan_factories.items():
                source = vector_source(x, epsilon, seed=11)
                result = factory().run(source, epsilon)
                error = per_query_l2_error(workload, x, result.x_hat)
                rows.append([dataset, epsilon, plan_name, error])

    print("\nScaled per-query L2 error on RandomRange(200) (lower is better):\n")
    print(format_table(["dataset", "epsilon", "plan", "error"], rows))


if __name__ == "__main__":
    main()
