"""Pluggable accountants: Gaussian measurements and zCDP composition.

The kernel's budget enforcement is generic over a *privacy accountant*
(:mod:`repro.accounting`): the paper's pure ε-DP, classic (ε, δ) with the
analytic Gaussian mechanism, or ρ-zCDP with additive composition.  This
walkthrough shows the three things the subsystem buys:

1. the same plan code measuring with Gaussian instead of Laplace noise
   (``noise="gaussian"``), calibrated to the strategy's **L2** sensitivity,
2. the zCDP accountant charging a 40-round MWEM run far less converted ε
   than basic composition would,
3. a multi-tenant service where each session picks its own accountant, and
   the audit export reports the converted (ε, δ) statement.

Run:  python examples/accounting_gaussian.py
"""

from __future__ import annotations

import numpy as np

from repro.accounting import ZCDPAccountant
from repro.analysis import expected_workload_error
from repro.dataset import small_census
from repro.matrix import Prefix, RangeQueries
from repro.plans import MwemPlan
from repro.private import protect
from repro.service import PlanScheduler, QueryRequest, SessionManager
from repro.service.export import reconcile


def gaussian_vs_laplace_error() -> None:
    print("=== 1. Gaussian vs Laplace expected error (matched (eps, delta)) ===")
    n, epsilon, delta = 2048, 1.0, 1e-6
    strategy = Prefix(n)
    workload = RangeQueries(n, [(i, i + n // 8) for i in range(0, n - n // 8, n // 32)])
    laplace = expected_workload_error(workload, strategy, epsilon, noise="laplace")
    gaussian = expected_workload_error(workload, strategy, epsilon, noise="gaussian", delta=delta)
    print(f"strategy Prefix({n}): L1 sensitivity {strategy.sensitivity():.0f}, "
          f"L2 sensitivity {strategy.sensitivity_l2():.1f}")
    print(f"expected total squared error  laplace : {laplace:.3e}")
    print(f"                              gaussian: {gaussian:.3e}  "
          f"({laplace / gaussian:.0f}x lower)\n")


def mwem_zcdp_crossover() -> None:
    print("=== 2. Many-round MWEM: zCDP vs basic composition ===")
    relation = small_census(num_records=5_000, seed=3)
    n = relation.domain_size
    workload = RangeQueries(n, [(i, min(i + 999, n - 1)) for i in range(0, n - 1, 500)])
    plan = MwemPlan(workload, rounds=40, total_records=5_000.0, history_passes=2)
    epsilon, delta = 1.0, 1e-6

    pure = protect(relation, epsilon_total=epsilon, seed=0).vectorize()
    plan.run(pure, epsilon)
    print(f"pure accountant:  spent eps = {pure.budget_consumed():.3f} "
          "(basic composition: the 80 tiny charges add up linearly)")

    zc = protect(
        relation, seed=0, accountant=ZCDPAccountant(epsilon=epsilon, delta=delta)
    ).vectorize()
    plan.run(zc, epsilon)
    odometer = zc.odometer()
    eps_spent, delta_spent = odometer.epsilon_delta_report()
    print(f"zcdp accountant:  spent rho = {zc.budget_consumed():.5f} "
          f"-> converted ({eps_spent:.3f}, {delta_spent:g})-DP")
    print(f"headroom left on the vector source: eps ~ "
          f"{odometer.headroom(zc.name, mechanism='gaussian'):.2f} of Gaussian budget\n")


def per_tenant_service_accounting() -> None:
    print("=== 3. Per-tenant accountants in the query service ===")
    table = small_census(num_records=5_000, seed=3)
    manager = SessionManager()
    scheduler = PlanScheduler(manager)

    pure_session = manager.create_session("classic-tenant", table, epsilon_total=1.0, seed=1)
    zcdp_session = manager.create_session(
        "gaussian-tenant", table, epsilon_total=1.0, seed=1, accountant="zcdp", delta=1e-6
    )

    scheduler.execute(QueryRequest(
        session_id=pure_session.session_id, plan="Hierarchical (H2)", epsilon=0.4,
        workload="prefix", workload_params={"n": table.domain_size},
    ))
    response = scheduler.execute(QueryRequest(
        session_id=zcdp_session.session_id, plan="Hierarchical (H2)", epsilon=0.4,
        plan_params={"noise": "gaussian"},
        workload="prefix", workload_params={"n": table.domain_size},
    ))

    for session in (pure_session, zcdp_session):
        report = session.accounting_report()
        print(f"{session.tenant:16s} accountant={report['accountant']:6s} "
              f"native spent={report['native_spent']:.5f} "
              f"-> ({report['epsilon_spent']:.3f}, {report['delta_spent']:g})-DP; "
              f"ledger exact: {reconcile(session)['exact']}")
    record = zcdp_session.kernel.history()[-1]
    print(f"gaussian-tenant's last measurement: {record.operator} "
          f"sigma={record.noise_scale:.1f} (rho cost {record.cost:.5f})")
    print(f"response payload shape: {np.asarray(response.payload).shape}")


def main() -> None:
    gaussian_vs_laplace_error()
    mwem_zcdp_crossover()
    per_tenant_service_accounting()


if __name__ == "__main__":
    main()
