"""Distributed observability: one trace across process workers, a postmortem
bundle, and SLO burn rates.

The execution core can push plan compute into worker processes; this
walkthrough shows that the observability layer follows it there:

1. runs a DAWA request on the **process backend** with a
   :class:`~repro.telemetry.Tracer` attached — the worker records its spans
   on a private tracer, ships them home in the job outcome, and the driver
   adopts them into the live trace, so the printed span tree is one request
   end to end (note the ``executor.worker`` subtree carrying the worker's
   pid) and the Chrome export renders driver and worker in separate process
   lanes,
2. attaches a :class:`~repro.telemetry.FlightRecorder` and fails a request
   on purpose: the failure dumps a postmortem bundle (spans + outcomes +
   metrics + breaker state) into ``postmortem/``,
3. evaluates latency / availability / privacy-burn SLOs over the scheduler's
   registry with :func:`repro.service.slo_report`.

Run:  python examples/distributed_observability.py
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.dataset import small_census
from repro.private import DeadlineExceededError
from repro.service import (
    PlanScheduler,
    ProcessExecutor,
    QueryRequest,
    SessionManager,
    slo_report,
)
from repro.telemetry import FlightRecorder, SloSpec, Tracer, write_chrome_trace

HERE = Path(__file__).resolve().parent
TRACE_OUT = HERE / "distributed_trace.json"
POSTMORTEM_DIR = HERE / "postmortem"


def span_tree(spans) -> None:
    children: dict[str | None, list] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def walk(parent_id, depth):
        for span in sorted(children.get(parent_id, []), key=lambda s: s.start):
            extras = [f"pid={span.process}"] if span.process != os.getpid() else []
            extras += [
                f"{k}={span.attributes[k]}"
                for k in ("backend", "epsilon", "attempt")
                if k in span.attributes
            ]
            print(
                f"  {'  ' * depth}{span.name:34s} {span.duration * 1e3:7.2f} ms"
                + (f"  [{', '.join(extras)}]" if extras else "")
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)


def main() -> None:
    executor = ProcessExecutor(max_workers=2)
    manager = SessionManager()
    session = manager.create_session("acme", small_census(), epsilon_total=2.0, seed=42)
    tracer = Tracer()
    recorder = FlightRecorder(directory=POSTMORTEM_DIR)
    scheduler = PlanScheduler(
        manager, tracer=tracer, executor=executor, flight_recorder=recorder
    )
    n = session.vector_source().domain_size

    print("=== 1. One trace across the process boundary ===")
    print(f"driver pid: {os.getpid()}")
    dawa = scheduler.execute(
        QueryRequest(
            session.session_id,
            plan="DAWA",
            epsilon=0.5,
            workload="prefix",
            workload_params={"n": n},
        )
    )
    span_tree(tracer.trace(dawa.trace_id))
    write_chrome_trace(tracer.trace(dawa.trace_id), TRACE_OUT)
    print(
        f"wrote {TRACE_OUT.name} - the worker's spans render in their own "
        "process lane in ui.perfetto.dev"
    )

    print("\n=== 2. Postmortem bundle on a failed request ===")
    # An impossible deadline: the request is ledgered as a timeout, and the
    # failure freezes the recorder's rings into a postmortem bundle.
    try:
        scheduler.execute(
            QueryRequest(
                session.session_id, plan="Identity", epsilon=0.1,
                deadline_seconds=1e-9,
            )
        )
    except DeadlineExceededError as exc:
        print(f"request failed as arranged: {exc}")
    bundle = recorder.bundles[-1]
    print(
        f"bundle: reason={bundle['reason']} spans={len(bundle['spans'])} "
        f"outcomes={len(bundle['outcomes'])}"
    )
    print(f"written to {Path(bundle['path']).relative_to(HERE)}/ "
          "(spans.jsonl, trace.json, metrics.json, state.json)")

    print("\n=== 3. SLO burn rates over the live registry ===")
    report = slo_report(
        scheduler,
        specs=[
            SloSpec(name="latency-p99-1s", kind="latency", target=0.99,
                    threshold_seconds=1.0),
            SloSpec(name="availability", kind="error_rate", target=0.999),
            SloSpec(name="acme-privacy-burn", kind="privacy_burn", tenant="acme",
                    budget=2.0, horizon_seconds=86400.0),
        ],
    )
    for result in report["results"]:
        rule = result["rules"][0]
        print(
            f"  {result['name']:18s} sli={result['sli']:.4f} "
            f"burn={rule['short_burn_rate']:.2f}x/"
            f"{rule['long_burn_rate']:.2f}x alerting={result['alerting']}"
        )
    print(
        "(two requests, one failed on purpose: a 50% error rate against a "
        "99.9% target is a huge burn rate - exactly what should page)"
    )

    executor.shutdown()


if __name__ == "__main__":
    main()
