"""Differentially-private Naive Bayes classification (Sec. 9.3).

Builds credit-default classifiers from DP histograms under several plans and
compares their ROC AUC against the non-private classifier and the majority
baseline, across a range of privacy budgets — the Fig. 3 experiment in
example form.

Run:  python examples/naive_bayes_classifier.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import (
    fit_naive_bayes_exact,
    format_table,
    majority_auc,
    roc_auc,
)
from repro.dataset import PREDICTOR_NAMES, synthetic_credit_default
from repro.plans import NAIVE_BAYES_PLANS

LABEL = "default"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=20_000)
    parser.add_argument("--epsilons", type=float, nargs="+", default=[0.001, 0.01, 0.1])
    args = parser.parse_args()

    relation = synthetic_credit_default(num_records=args.records, seed=2009)
    predictors = list(PREDICTOR_NAMES)
    print(f"Credit table: {relation.schema.describe()} — {len(relation)} records")

    # Train/test split (80/20).
    rng = np.random.default_rng(0)
    permutation = rng.permutation(len(relation))
    split = int(0.8 * len(relation))
    train_idx, test_idx = permutation[:split], permutation[split:]
    from repro.dataset import Relation

    train = Relation(relation.schema, relation.records[train_idx])
    test_records = relation.records[test_idx]
    feature_columns = [relation.schema.index_of(p) for p in predictors]
    test_features = test_records[:, feature_columns]
    test_labels = test_records[:, relation.schema.index_of(LABEL)]

    exact_model = fit_naive_bayes_exact(train, LABEL, predictors)
    exact_auc = roc_auc(test_labels, exact_model.decision_scores(test_features))
    print(f"\nNon-private (Unperturbed) AUC: {exact_auc:.3f}")
    print(f"Majority baseline AUC:         {majority_auc():.3f}\n")

    rows = []
    for epsilon in args.epsilons:
        for plan_name, fit in NAIVE_BAYES_PLANS.items():
            model = fit(train, LABEL, predictors, epsilon=epsilon, seed=3)
            auc = roc_auc(test_labels, model.decision_scores(test_features))
            rows.append([epsilon, plan_name, auc])

    print(format_table(["epsilon", "plan", "test AUC"], rows))
    print(
        "\nExpected shape (paper Fig. 3): WorkloadLS and SelectLS approach the "
        "unperturbed AUC at epsilon = 0.1 and collapse towards 0.5 at epsilon = 0.001."
    )


if __name__ == "__main__":
    main()
