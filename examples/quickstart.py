"""Quickstart: the paper's running example (Algorithm 1) — a private CDF estimate.

This example walks through the full EKTELO workflow on the synthetic census
data:

1. put the table behind the protected kernel with a global privacy budget,
2. filter to a sub-population and project onto the salary/income attribute
   (table transformations — Private, no budget),
3. vectorise and run the Algorithm 1 plan: AHP partition selection (half the
   budget), reduce-by-partition, identity measurements (the other half),
   non-negative least squares back onto the original domain,
4. answer the Prefix workload to obtain the empirical CDF,
5. compare against the true CDF and show how much budget was spent.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.dataset import small_census
from repro.plans import cdf_estimator
from repro.private import protect


def main() -> None:
    # The private table: a synthetic stand-in for the CPS census file.
    relation = small_census(num_records=20_000, seed=7)
    print(f"Private table: {relation.schema.describe()} with {len(relation)} records")

    # The analyst's target sub-population: males in their 30s (age bin 1 of 5).
    sub_population = {"gender": 0, "age": 1}

    epsilon_total = 1.0
    source = protect(relation, epsilon_total=epsilon_total, seed=0)
    print(f"Protected kernel initialised with epsilon_total = {epsilon_total}")

    # Run the Algorithm 1 plan.
    estimated_cdf = cdf_estimator(source, "income", epsilon=1.0, where=sub_population)

    # Ground truth (only available to us because this is a demo).
    truth = np.cumsum(relation.where(sub_population).projection_vector(["income"]))

    print(f"\nBudget spent: {source.budget_consumed():.3f} (remaining {source.budget_remaining():.3f})")
    print("\nIncome-bin CDF (selected points):")
    print(f"{'bin':>5} {'true':>12} {'estimate':>12} {'abs error':>12}")
    for bin_index in range(0, len(truth), max(len(truth) // 10, 1)):
        print(
            f"{bin_index:>5} {truth[bin_index]:>12.1f} "
            f"{estimated_cdf[bin_index]:>12.1f} "
            f"{abs(truth[bin_index] - estimated_cdf[bin_index]):>12.1f}"
        )
    max_error = np.abs(estimated_cdf - truth).max()
    print(f"\nMaximum absolute CDF error: {max_error:.1f} records "
          f"({100 * max_error / truth[-1]:.2f}% of the sub-population)")


if __name__ == "__main__":
    main()
