"""Census tabulations (Sec. 9.2): compare plans on high-dimensional census data.

The U.S. Census Bureau releases tabulations such as income distributions
broken down by demographic attributes.  This example reproduces the case
study's comparison on the synthetic census: the Identity and PrivBayes
baselines against the new EKTELO plans (PrivBayesLS, HB-Striped_kron,
DAWA-Striped) on three workloads (Identity counts, all 2-way marginals, and
income prefixes crossed with demographics).

Run:  python examples/census_tabulations.py           (scaled-down domain)
      python examples/census_tabulations.py --full    (paper's 1.4M-cell domain)
"""

from __future__ import annotations

import argparse
import time

from repro.analysis import format_table, per_query_l2_error
from repro.dataset import synthetic_cps
from repro.plans import (
    DawaStripedPlan,
    HbStripedKronPlan,
    IdentityPlan,
    PrivBayesLsPlan,
    PrivBayesPlan,
)
from repro.private import protect
from repro.workload import (
    census_prefix_income_workload,
    identity_workload,
    two_way_marginals_workload,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper-scale 5000-bin income domain")
    parser.add_argument("--epsilon", type=float, default=1.0)
    args = parser.parse_args()

    income_bins = 5000 if args.full else 100
    relation = synthetic_cps(num_records=49_436, income_bins=income_bins, seed=2000)
    domain = relation.schema.domain
    x_true = relation.vectorize()
    print(f"Census table: {relation.schema.describe()} — {relation.domain_size:,} cells")

    workloads = {
        "Identity": identity_workload(domain),
        "2-way marginals": two_way_marginals_workload(domain),
        "Prefix(Income)": census_prefix_income_workload(domain, income_axis=0),
    }
    plans = {
        "Identity": IdentityPlan(),
        "PrivBayes": PrivBayesPlan(domain, seed=0),
        "PrivBayesLS": PrivBayesLsPlan(domain, seed=0),
        "HB-Striped_kron": HbStripedKronPlan(domain, stripe_axis=0),
        "DAWA-Striped": DawaStripedPlan(domain, stripe_axis=0),
    }

    rows = []
    for plan_name, plan in plans.items():
        source = protect(relation, args.epsilon, seed=1).vectorize()
        start = time.perf_counter()
        result = plan.run(source, args.epsilon)
        runtime = time.perf_counter() - start
        errors = [
            per_query_l2_error(workload, x_true, result.x_hat) for workload in workloads.values()
        ]
        rows.append([plan_name, *errors, runtime])
        print(f"  finished {plan_name} in {runtime:.1f}s (budget spent {result.budget_spent:.2f})")

    print("\nScaled per-query L2 error (lower is better):\n")
    print(format_table(["plan", *workloads.keys(), "runtime (s)"], rows))
    print(
        "\nExpected shape (paper Table 5): DAWA-Striped wins all workloads; "
        "PrivBayes trails Identity; the striped plans adapt 1-D techniques to "
        "the high-dimensional domain."
    )


if __name__ == "__main__":
    main()
