"""Durability demo: journaled session, mid-request crash, exact recovery.

This example walks the crash-safety path end to end:

1. open a session with a write-ahead :class:`~repro.durability.PrivacyJournal`
   attached, and answer a couple of requests normally,
2. kill the process mid-request with the fault-injection harness — a
   ``WorkerDeath`` fired *between* a budget charge and the measurement that
   would have recorded it (the charge-ahead window: the journal already holds
   the charge, the in-memory state dies with the process),
3. throw the live objects away — only the journal file survives — and
   restore the session into a fresh scheduler from the journal alone,
4. verify the recovered state: the orphaned charge is claimed by a
   synthesized audit event, the event ledger reconciles **exactly** against
   the kernel's own ledger, and no budget was double-spent or leaked,
5. re-ask a pre-crash question — the answer replays from the journal's
   release records byte-identically, at zero additional epsilon.

The invariant being demonstrated: a crash can *waste* privacy budget (the
orphaned charge bought nothing), but it can never *leak* it — every unit of
epsilon the kernel ever charged is accounted for in the audit trail.

Run:  python examples/durable_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.dataset import Attribute, Relation, Schema
from repro.durability import FaultInjector, PrivacyJournal, WorkerDeath
from repro.service import PlanScheduler, QueryRequest, SessionManager

N = 256


def histogram_relation(values: np.ndarray) -> Relation:
    schema = Schema.build([Attribute("income", len(values))])
    return Relation.from_histogram(schema, np.asarray(values, dtype=np.float64))


def main() -> None:
    rng = np.random.default_rng(3)
    relation = histogram_relation(rng.integers(0, 500, size=N))
    wal = Path(tempfile.mkdtemp(prefix="durable-service-")) / "acme.wal"

    # ------------------------------------------------------------------
    # 1. A journaled session doing normal work.
    # ------------------------------------------------------------------
    manager = SessionManager()
    scheduler = PlanScheduler(manager)
    journal = PrivacyJournal(wal, fsync="commit")
    session = manager.create_session(
        "acme", relation, epsilon_total=1.0, seed=7, journal=journal
    )
    print(f"session {session.session_id} journaling to {wal}\n")

    cdf = scheduler.execute(
        QueryRequest(session.session_id, plan="Hierarchical (H2)", epsilon=0.2,
                     workload="prefix", workload_params={"n": N}, tag="cdf")
    )
    counts = scheduler.execute(
        QueryRequest(session.session_id, plan="Identity", epsilon=0.1, tag="counts")
    )
    for response in (cdf, counts):
        print(f"  {response.plan:<18} eps_spent={response.epsilon_spent:.3f}")

    # ------------------------------------------------------------------
    # 2. Kill the worker mid-request.  DAWA charges the budget twice (once
    #    for its private partition selection, once for the measurement);
    #    dying after the second charge is accepted leaves epsilon charged
    #    in the journal with no measurement or audit event behind it.
    # ------------------------------------------------------------------
    faults = FaultInjector()
    session.kernel.fault_injector = faults
    faults.arm("kernel.after_charge", after=1, exception=WorkerDeath("kicked the power cable"))
    try:
        scheduler.execute(
            QueryRequest(session.session_id, plan="DAWA", epsilon=0.4,
                         workload="prefix", workload_params={"n": N}, tag="doomed")
        )
        raise AssertionError("the injected crash did not fire")
    except WorkerDeath:
        pre_crash = session.budget_consumed()
        print(
            f"\ncrash mid-DAWA: kernel ledger at {pre_crash:.3f} eps, "
            f"audit trail covers only "
            f"{sum(e.epsilon_spent for e in session.events):.3f} eps"
        )

    # Everything in memory dies with the process; only the WAL survives.
    del manager, scheduler, session, journal

    # ------------------------------------------------------------------
    # 3. Restore from the journal alone into a fresh service.  The private
    #    table is never journaled — the operator supplies it at restore.
    # ------------------------------------------------------------------
    fresh = PlanScheduler(SessionManager())
    restored = fresh.restore_session(relation, journal=PrivacyJournal(wal))
    info = restored.recovery_info
    print(
        f"\nrestored from {info['replayed_records']} journal records; "
        f"reconcile exact={info['reconcile']['exact']}"
    )

    # ------------------------------------------------------------------
    # 4. The orphaned charge was claimed, not lost: a synthesized audit
    #    event covers exactly the epsilon the doomed request charged.
    # ------------------------------------------------------------------
    orphan = info["orphaned_event"]
    assert orphan is not None
    print(
        f"orphan claimed: plan={orphan['plan']} error={orphan['error']} "
        f"eps={orphan['epsilon_spent']:.3f}"
    )
    assert abs(restored.budget_consumed() - pre_crash) < 1e-9
    print(
        f"budget after recovery: {restored.budget_consumed():.3f} eps "
        f"(matches the pre-crash kernel ledger exactly)"
    )

    # ------------------------------------------------------------------
    # 5. Pre-crash answers replay from the journal at zero epsilon.
    # ------------------------------------------------------------------
    replay = fresh.execute(
        QueryRequest(restored.session_id, plan="Hierarchical (H2)", epsilon=0.2,
                     workload="prefix", workload_params={"n": N}, tag="cdf again")
    )
    assert replay.cached and replay.epsilon_spent == 0.0
    assert np.array_equal(replay.answers, cdf.answers)
    print(
        f"\nreplay of the pre-crash CDF: cached={replay.cached}, "
        f"eps_spent={replay.epsilon_spent}, answers byte-identical="
        f"{np.array_equal(replay.answers, cdf.answers)}"
    )


if __name__ == "__main__":
    main()
