"""Print the plan-signature table (the paper's Fig. 2) from the plan registry.

Every algorithm in the library is expressed as a plan over the same operator
classes, so their signatures make structural similarities obvious — e.g. DAWA
and AHP differ only in their partition-selection and query-selection
operators.  This "transparency" property is one of the paper's design goals.

Run:  python examples/plan_signatures.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.plans import PLAN_TABLE


def main() -> None:
    rows = [
        [entry.plan_id if entry.plan_id is not None else "-", entry.name, entry.citation, entry.signature]
        for entry in PLAN_TABLE
    ]
    print("\nFig. 2 — plan signatures (operator abbreviations as in the paper)\n")
    print(format_table(["id", "plan", "citation", "signature"], rows))
    print(
        "\nLegend: S* = query selection, P* = partition selection, LM = Vector Laplace,\n"
        "LS/NLS/MW = inference, TR/TP = vector transformations, I:(..) = iteration,\n"
        "TP[..] = subplan run on every partition."
    )


if __name__ == "__main__":
    main()
