"""Observability: trace a DAWA request end to end and export the artifacts.

Every seam of the stack is instrumented — service request, plan stages,
kernel measurements (with their ε and sensitivity), least-squares solves
(with Gram-cache hits) — but records nothing until a tracer is activated.
This walkthrough:

1. runs DAWA and Identity requests through the service with a
   :class:`~repro.telemetry.Tracer` attached and prints the span tree of one
   request (the hierarchy a flame graph would show),
2. writes the DAWA trace as a Chrome trace-event file — open it at
   ``chrome://tracing`` or https://ui.perfetto.dev to see partition /
   measurement / inference stages on a timeline,
3. prints the per-tenant privacy-spend odometer and latency percentiles from
   the always-on metrics registry, plus the Prometheus exposition a scraper
   would collect.

Run:  python examples/telemetry_tracing.py
"""

from __future__ import annotations

from pathlib import Path

from repro.dataset import small_census
from repro.service import PlanScheduler, QueryRequest, SessionManager, telemetry_report
from repro.telemetry import Tracer, prometheus_text, write_chrome_trace

OUT = Path(__file__).resolve().parent / "dawa_trace.json"


def span_tree(spans) -> None:
    """Print one trace's spans as an indented tree with their attributes."""
    children: dict[str | None, list] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def walk(parent_id, depth):
        for span in sorted(children.get(parent_id, []), key=lambda s: s.start):
            keys = ("epsilon", "cost", "method", "rows", "num_groups", "gram_cache_hit")
            attrs = ", ".join(
                f"{k}={span.attributes[k]}" for k in keys if k in span.attributes
            )
            print(
                f"  {'  ' * depth}{span.name:36s} {span.duration * 1e3:7.2f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)


def main() -> None:
    manager = SessionManager()
    session = manager.create_session("acme", small_census(), epsilon_total=2.0, seed=42)
    tracer = Tracer()
    scheduler = PlanScheduler(manager, tracer=tracer)

    n = session.vector_source().domain_size
    dawa = scheduler.execute(
        QueryRequest(
            session.session_id,
            plan="DAWA",
            epsilon=0.5,
            workload="prefix",
            workload_params={"n": n},
        )
    )
    identity = scheduler.execute(
        QueryRequest(
            session.session_id,
            plan="Identity",
            epsilon=0.1,
            workload="prefix",
            workload_params={"n": n},
        )
    )

    print("=== 1. Span tree of the DAWA request ===")
    print(f"trace id: {dawa.trace_id} (also on the session's audit event)")
    span_tree(tracer.trace(dawa.trace_id))

    print("\n=== 2. Chrome trace export ===")
    write_chrome_trace(tracer.trace(dawa.trace_id), OUT, process_name="repro.service")
    print(f"wrote {OUT.name} - load it in chrome://tracing or ui.perfetto.dev")

    print("\n=== 3. Metrics: odometer, latency, Prometheus ===")
    report = telemetry_report(scheduler)
    odometer = report["privacy_odometer"]["acme"]
    print(f"tenant acme spent {odometer['total_spent']:.3f} {odometer['unit']} "
          f"over {odometer['requests']} requests:")
    for plan, entry in odometer["plans"].items():
        print(f"  {plan:10s} spent={entry['spent']:.3f} requests={entry['requests']}")
    latency = report["metrics"]["histograms"]["service_request_latency_seconds{tenant=acme}"]
    print(f"request latency: p50={latency['p50'] * 1e3:.2f} ms "
          f"p95={latency['p95'] * 1e3:.2f} ms max={latency['max'] * 1e3:.2f} ms")
    print(f"\nidentity request trace: {identity.trace_id} "
          f"({len(tracer.trace(identity.trace_id))} spans)")
    print("\nPrometheus exposition (first lines):")
    for line in prometheus_text(scheduler.metrics).splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
