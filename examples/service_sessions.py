"""Service demo: two tenants, concurrent plans, measurement reuse, audit export.

This example drives the `repro.service` layer the way a deployment would:

1. open one session per tenant, each wrapping its own protected kernel with
   its own privacy budget,
2. submit a mixed batch of plan requests for both tenants and execute them
   concurrently on the scheduler's thread pool (sessions never share a
   kernel, so parallel work cannot cross budgets),
3. re-submit a tenant's workload request — the answer comes back from the
   measurement cache with **zero** additional epsilon spent (post-processing
   of the already-released noisy measurement),
4. export the per-session audit and reconcile the service's event ledger
   against each kernel's own ``budget_consumed()`` — they must match exactly.

Run:  python examples/service_sessions.py
"""

from __future__ import annotations

import numpy as np

from repro.dataset import Attribute, Relation, Schema
from repro.service import PlanScheduler, QueryRequest, SessionManager, reconcile, session_report


def histogram_relation(values: np.ndarray, name: str = "income") -> Relation:
    """Wrap a histogram as a one-attribute relation (each tenant's table)."""
    schema = Schema.build([Attribute(name, len(values))])
    return Relation.from_histogram(schema, np.asarray(values, dtype=np.float64))


def main() -> None:
    rng = np.random.default_rng(3)
    n = 256

    manager = SessionManager()
    scheduler = PlanScheduler(manager, max_workers=4)

    # Each tenant brings its own table and budget.
    acme = manager.create_session(
        "acme", histogram_relation(rng.integers(0, 500, size=n)), epsilon_total=1.0, seed=7
    )
    globex = manager.create_session(
        "globex", histogram_relation(rng.integers(0, 200, size=n)), epsilon_total=0.5, seed=11
    )
    print(f"sessions: {acme.session_id} (eps=1.0), {globex.session_id} (eps=0.5)\n")

    # A mixed batch: acme asks for the CDF workload under two plans, globex
    # for per-cell counts.  The scheduler runs them across 4 workers.
    batch = [
        QueryRequest(acme.session_id, plan="Hierarchical (H2)", epsilon=0.2,
                     workload="prefix", workload_params={"n": n}, tag="cdf/h2"),
        QueryRequest(acme.session_id, plan="Identity", epsilon=0.1,
                     workload="prefix", workload_params={"n": n}, tag="cdf/identity"),
        QueryRequest(globex.session_id, plan="Identity", epsilon=0.1, tag="counts"),
        QueryRequest(globex.session_id, plan="Uniform", epsilon=0.05, tag="total"),
    ]
    responses = scheduler.execute_batch(batch)
    for response in responses:
        print(
            f"{response.session_id:<10} {response.plan:<18} "
            f"eps_spent={response.epsilon_spent:.3f} cached={response.cached} "
            f"seed={response.seed}"
        )

    # Re-ask acme's CDF question: answered from the measurement cache.
    before = acme.budget_consumed()
    replay = scheduler.execute(
        QueryRequest(acme.session_id, plan="Hierarchical (H2)", epsilon=0.2,
                     workload="prefix", workload_params={"n": n}, tag="cdf/h2 again")
    )
    assert replay.cached and replay.epsilon_spent == 0.0
    assert np.array_equal(replay.answers, responses[0].answers)
    print(
        f"\nrepeat of acme's CDF request: cached={replay.cached}, "
        f"epsilon spent {before:.3f} -> {acme.budget_consumed():.3f} (no change)"
    )

    # Audit export reconciles the service ledger with each kernel's own.
    print("\naudit reconciliation:")
    for session in (acme, globex):
        check = reconcile(session)
        report = session_report(session)
        assert check["exact"], check
        print(
            f"  {session.session_id:<10} tenant={session.tenant:<8} "
            f"requests={report['num_requests']} (cached {report['num_cached']})  "
            f"service ledger={check['service_epsilon']:.6g}  "
            f"kernel ledger={check['kernel_epsilon']:.6g}  exact={check['exact']}"
        )
        print(f"    remaining budget: {session.budget_remaining():.6g}")


if __name__ == "__main__":
    main()
