"""Workload-based domain reduction (Sec. 8): lossless compression of the domain.

When the analyst only cares about a fixed workload, cells the workload never
distinguishes can be merged before any noise is added — without changing any
workload answer (Prop. 8.3) and without ever looking at the private data
(the partition is computed from the workload alone, Algorithm 4).

This example builds a census-style workload, computes the reduction, verifies
losslessness on the true data, and then compares a DP release with and without
the reduction.

Run:  python examples/workload_reduction.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import per_query_l2_error
from repro.dataset import small_census
from repro.matrix import Identity
from repro.operators.partition import workload_based_partition
from repro.private import protect
from repro.workload import marginals_workload


def main() -> None:
    relation = small_census(num_records=20_000, seed=5)
    domain = relation.schema.domain
    x_true = relation.vectorize()
    print(f"Census table: {relation.schema.describe()} — {relation.domain_size:,} cells")

    # A workload of selected marginals: income alone and age x gender.  The
    # marital and race attributes are never queried, so every cell that agrees
    # on (income, age, gender) can be merged losslessly.
    workload = marginals_workload(
        domain,
        [
            [relation.schema.index_of("income")],
            [relation.schema.index_of("age"), relation.schema.index_of("gender")],
        ],
    )
    print(f"Workload: {workload.shape[0]} queries over {workload.shape[1]:,} cells")

    # Compute the lossless reduction from the workload only (no private data).
    partition = workload_based_partition(workload)
    reduced_workload = partition.reduce_workload(workload)
    print(f"Workload-based reduction: {partition.shape[1]:,} cells -> {partition.num_groups:,} groups")

    # Losslessness check on the true data (possible here because it is a demo).
    exact = workload.matvec(x_true)
    reduced_exact = reduced_workload.matvec(partition.reduce_vector(x_true))
    print(f"Lossless: max |Wx - W'x'| = {np.abs(exact - reduced_exact).max():.2e}")

    # Differentially private release with and without the reduction.
    epsilon = 0.1
    source = protect(relation, epsilon, seed=1).vectorize()
    noisy_full = source.vector_laplace(Identity(source.domain_size), epsilon)
    error_full = per_query_l2_error(workload, x_true, noisy_full)

    source = protect(relation, epsilon, seed=2).vectorize()
    reduced_source = source.reduce_by_partition(partition)
    noisy_reduced = reduced_source.vector_laplace(Identity(reduced_source.domain_size), epsilon)
    error_reduced = per_query_l2_error(
        reduced_workload, partition.reduce_vector(x_true), noisy_reduced, scale=x_true.sum()
    )

    print(f"\nScaled per-query L2 error at epsilon = {epsilon}:")
    print(f"  Identity on the full domain    : {error_full:.3e}")
    print(f"  Identity on the reduced domain : {error_reduced:.3e}")
    print(f"  improvement factor             : {error_full / error_reduced:.2f}x")


if __name__ == "__main__":
    main()
