"""Tests of the paper's analytic claims (Theorem 5.3, Prop. 8.3, Theorem 8.4).

These are checked numerically on small domains where the expected-error
formulas can be evaluated densely.
"""

import numpy as np
import pytest

from repro.analysis import expected_query_error
from repro.matrix import Identity, Prefix, RangeQueries, Total, VStack, marginal
from repro.operators.partition import workload_based_partition


class TestTheorem53MoreMeasurementsNeverHurt:
    """Expected error never increases when a measurement is added (Theorem 5.3)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_augmentation(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        base = Identity(n)
        extra_row = rng.integers(0, 2, n).astype(float)
        augmented = VStack([base, RangeQueries(n, [(0, n - 1)])]) if extra_row.sum() == 0 else None
        if augmented is None:
            from repro.matrix import DenseMatrix

            augmented = VStack([base, DenseMatrix(extra_row.reshape(1, -1))])
        query = rng.integers(0, 2, n).astype(float)
        # Theorem 5.3 assumes unit-variance measurements: compare with
        # sensitivity-free variance, i.e. epsilon chosen so both have scale 1.
        error_before = float(query @ np.linalg.pinv(base.dense().T @ base.dense()) @ query)
        aug_dense = augmented.dense()
        error_after = float(query @ np.linalg.pinv(aug_dense.T @ aug_dense) @ query)
        assert error_after <= error_before + 1e-9

    def test_prefix_plus_identity_beats_identity_alone(self):
        n = 16
        identity_only = Identity(n).dense()
        both = np.vstack([identity_only, Prefix(n).dense()])
        query = np.ones(n)
        error_identity = float(query @ np.linalg.pinv(identity_only.T @ identity_only) @ query)
        error_both = float(query @ np.linalg.pinv(both.T @ both) @ query)
        assert error_both < error_identity


class TestProposition83LosslessReduction:
    """W x = W' x' for the workload-based partition (Prop. 8.3)."""

    @pytest.mark.parametrize(
        "workload_factory",
        [
            lambda: RangeQueries(24, [(0, 11), (12, 23), (6, 17)]),
            lambda: Total(24),
            lambda: VStack([Total(24), RangeQueries(24, [(0, 5)])]),
            lambda: marginal((4, 3, 2), [0]),
            lambda: marginal((4, 3, 2), [0, 2]),
        ],
    )
    def test_lossless(self, workload_factory):
        workload = workload_factory()
        n = workload.shape[1]
        rng = np.random.default_rng(0)
        x = rng.integers(0, 50, n).astype(float)
        partition = workload_based_partition(workload)
        x_reduced = partition.reduce_vector(x)
        w_reduced = partition.reduce_workload(workload)
        assert np.allclose(workload.matvec(x), w_reduced.matvec(x_reduced), atol=1e-8)

    def test_pseudo_inverse_formula(self):
        workload = RangeQueries(12, [(0, 5), (6, 11)])
        partition = workload_based_partition(workload)
        P = partition.dense()
        D = np.diag(partition.group_sizes)
        assert np.allclose(partition.pseudo_inverse().dense(), P.T @ np.linalg.inv(D))


class TestTheorem84ReductionNeverHurts:
    """Expected per-query error never increases after workload-based reduction."""

    @pytest.mark.parametrize("strategy_name", ["identity", "hierarchical"])
    def test_reduced_error_not_worse(self, strategy_name):
        from repro.matrix import HierarchicalQueries

        n = 16
        workload = RangeQueries(n, [(0, 7), (8, 15), (0, 15), (4, 11)])
        partition = workload_based_partition(workload)
        p = partition.num_groups
        strategy = Identity(n) if strategy_name == "identity" else HierarchicalQueries(n)
        reduced_strategy_dense = strategy.dense() @ partition.pseudo_inverse().dense()

        from repro.matrix import DenseMatrix

        reduced_strategy = DenseMatrix(reduced_strategy_dense)
        reduced_workload = DenseMatrix(workload.dense() @ partition.pseudo_inverse().dense())

        for i in range(workload.shape[0]):
            original = expected_query_error(workload.dense()[i], strategy)
            reduced = expected_query_error(reduced_workload.dense()[i], reduced_strategy)
            assert reduced <= original + 1e-6
