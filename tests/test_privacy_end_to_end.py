"""Statistical end-to-end checks of the differential-privacy machinery.

These tests do not prove privacy (the proof is Theorem 4.1); they check the
measurable consequences the implementation is responsible for:

* the Laplace noise scale actually used matches sensitivity / epsilon,
* budget accounting matches the sequential / parallel composition rules on
  plan-shaped workflows,
* the noise injected for a given seed is independent of the data (a necessary
  condition for the output-perturbation mechanism to be correct),
* neighbouring datasets produce output distributions whose empirical ratio is
  bounded roughly by exp(epsilon) on a coarse event (a smoke test, not a proof).
"""

import numpy as np
import pytest

from repro.matrix import Identity, Total
from repro.private import protect
from tests.conftest import make_vector_relation


class TestNoiseCalibration:
    def test_noise_scale_matches_sensitivity_over_epsilon(self):
        x = np.full(64, 100.0)
        epsilon = 0.5
        samples = []
        for seed in range(200):
            source = protect(make_vector_relation(x), epsilon, seed=seed).vectorize()
            noisy = source.vector_laplace(Total(64), epsilon)
            samples.append(noisy[0] - x.sum())
        # Laplace(b) has standard deviation b * sqrt(2); here b = 1 / 0.5 = 2.
        empirical_std = np.std(samples)
        assert 0.7 * 2 * np.sqrt(2) < empirical_std < 1.4 * 2 * np.sqrt(2)

    def test_noise_is_data_independent_given_seed(self):
        epsilon = 1.0
        x1 = np.arange(32.0)
        x2 = np.arange(32.0)[::-1].copy()
        noise1 = (
            protect(make_vector_relation(x1), epsilon, seed=3)
            .vectorize()
            .vector_laplace(Identity(32), epsilon)
            - x1
        )
        noise2 = (
            protect(make_vector_relation(x2), epsilon, seed=3)
            .vectorize()
            .vector_laplace(Identity(32), epsilon)
            - x2
        )
        assert np.allclose(noise1, noise2)

    def test_higher_sensitivity_queries_get_more_noise(self):
        x = np.full(32, 50.0)
        epsilon = 1.0
        total_spread = []
        prefix_spread = []
        for seed in range(100):
            source = protect(make_vector_relation(x), 10.0, seed=seed).vectorize()
            total_spread.append(source.vector_laplace(Total(32), epsilon)[0] - x.sum())
            from repro.matrix import Prefix

            source2 = protect(make_vector_relation(x), 10.0, seed=seed + 1000).vectorize()
            prefix_spread.append(source2.vector_laplace(Prefix(32), epsilon)[0] - x[0])
        # Prefix has sensitivity 32, Total has sensitivity 1.
        assert np.std(prefix_spread) > 5 * np.std(total_spread)


class TestCompositionAccounting:
    def test_sequential_composition_of_plan_steps(self):
        x = np.arange(64.0)
        source = protect(make_vector_relation(x), 1.0, seed=0).vectorize()
        source.vector_laplace(Identity(64), 0.3)
        source.vector_laplace(Total(64), 0.2)
        source.vector_laplace(Identity(64), 0.5)
        assert source.budget_consumed() == pytest.approx(1.0)

    def test_parallel_composition_of_stripes(self):
        from repro.operators.partition import stripe_partition

        domain = (8, 4)
        x = np.arange(32.0)
        source = protect(make_vector_relation(x), 1.0, seed=0).vectorize()
        partition = stripe_partition(domain, stripe_axis=0)
        stripes = source.split_by_partition(partition)
        assert len(stripes) == 4
        for stripe in stripes:
            stripe.vector_laplace(Identity(stripe.domain_size), 1.0)
        assert source.budget_consumed() == pytest.approx(1.0)

    def test_mixed_sequential_and_parallel(self):
        from repro.matrix import ReductionMatrix

        x = np.arange(24.0)
        source = protect(make_vector_relation(x), 1.0, seed=0).vectorize()
        source.vector_laplace(Total(24), 0.25)
        pieces = source.split_by_partition(ReductionMatrix(np.arange(24) % 2))
        for piece in pieces:
            piece.vector_laplace(Identity(piece.domain_size), 0.5)
        assert source.budget_consumed() == pytest.approx(0.75)


class TestNeighbourSmokeTest:
    def test_output_distribution_ratio_is_bounded(self):
        """Empirical ratio of a coarse output event across neighbours <= ~exp(eps)."""
        epsilon = 1.0
        base = np.zeros(8)
        base[0] = 10.0
        neighbour = base.copy()
        neighbour[0] = 11.0  # one extra record in cell 0

        threshold = 10.5
        trials = 4000
        hits_base = 0
        hits_neighbour = 0
        for seed in range(trials):
            noisy_base = (
                protect(make_vector_relation(base), epsilon, seed=seed)
                .vectorize()
                .vector_laplace(Total(8), epsilon)[0]
            )
            noisy_neighbour = (
                protect(make_vector_relation(neighbour), epsilon, seed=seed + trials)
                .vectorize()
                .vector_laplace(Total(8), epsilon)[0]
            )
            hits_base += noisy_base > threshold
            hits_neighbour += noisy_neighbour > threshold
        ratio = (hits_neighbour + 1) / (hits_base + 1)
        # exp(1) ~ 2.72; allow generous sampling slack.
        assert ratio < np.exp(epsilon) * 1.5
