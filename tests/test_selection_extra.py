"""Additional coverage for query-selection operators (granularity, bounds, sensitivity)."""

import numpy as np
import pytest

from repro.matrix import Identity, Kronecker, Prefix, Total
from repro.operators.selection import (
    adaptive_grid_select,
    greedy_h_select,
    hdmm_select,
    optimise_dimension,
    stripe_kron_select,
    uniform_grid_select,
)
from repro.operators.selection.privbayes import privbayes_select
from repro.private import protect

from repro.dataset import Attribute, Relation, Schema


class TestGridGranularity:
    def test_uniform_grid_granularity_monotone_in_epsilon(self):
        low = uniform_grid_select(64, 64, total_estimate=100_000, epsilon=0.01)
        high = uniform_grid_select(64, 64, total_estimate=100_000, epsilon=1.0)
        assert high.shape[0] >= low.shape[0]

    def test_uniform_grid_never_exceeds_domain(self):
        grid = uniform_grid_select(8, 8, total_estimate=10**12, epsilon=10.0)
        assert grid.shape[0] <= 64

    def test_adaptive_grid_rects_stay_inside_region(self):
        region = (2, 9, 4, 15)
        finer = adaptive_grid_select(region, 16, 20, noisy_region_count=1e6, epsilon=1.0)
        assert finer is not None
        for r_lo, r_hi, c_lo, c_hi in finer.rects:
            assert region[0] <= r_lo <= r_hi <= region[1]
            assert region[2] <= c_lo <= c_hi <= region[3]

    def test_adaptive_grid_covers_region_exactly_once(self):
        region = (0, 7, 0, 7)
        finer = adaptive_grid_select(region, 8, 8, noisy_region_count=1e5, epsilon=1.0)
        coverage = finer.dense().sum(axis=0).reshape(8, 8)
        assert np.allclose(coverage, 1.0)


class TestGreedyHWeights:
    def test_heavier_usage_gets_larger_weight(self):
        # A workload made only of full-domain ranges concentrates usage on the
        # root level; its weight should exceed the unit level's.
        n = 32
        strategy = greedy_h_select(n, [(0, n - 1)] * 20)
        dense = strategy.dense()
        root_rows = [row for row in dense if np.count_nonzero(row) == n]
        unit_rows = [row for row in dense if np.count_nonzero(row) == 1]
        assert root_rows and unit_rows
        assert np.max(np.abs(root_rows[0])) > np.max(np.abs(unit_rows[0]))

    def test_supports_any_domain_size(self):
        for n in [5, 17, 33, 100]:
            strategy = greedy_h_select(n)
            assert strategy.shape[1] == n
            assert np.linalg.matrix_rank(strategy.dense()) == n


class TestHdmmDimensionChoice:
    def test_total_workload_dimension_gets_cheap_strategy(self):
        strategy = optimise_dimension(Total(16))
        # Whatever is chosen must answer the total with low error; its
        # sensitivity should stay far below measuring all prefixes.
        assert strategy.sensitivity() <= Prefix(16).sensitivity()

    def test_kron_strategy_supports_workload(self):
        workload = Kronecker([Prefix(8), Identity(4)])
        strategy = hdmm_select(workload)
        # Least-squares reconstruction through the strategy answers the workload.
        a = strategy.dense()
        w = workload.dense()
        projection = w @ np.linalg.pinv(a.T @ a) @ (a.T @ a)
        assert np.allclose(projection, w, atol=1e-6)

    def test_large_dimension_uses_heuristic_without_materialising(self):
        strategy = optimise_dimension(Prefix(5000))
        assert strategy.shape[1] == 5000


class TestStripeKron:
    def test_sensitivity_is_hierarchy_sensitivity(self):
        domain = (16, 3, 2)
        strategy = stripe_kron_select(domain, stripe_axis=0, branching=2)
        from repro.matrix import HierarchicalQueries

        expected = HierarchicalQueries(16, branching=2).sensitivity()
        assert strategy.sensitivity() == pytest.approx(expected)

    def test_answers_match_per_stripe_measurement(self):
        domain = (4, 3)
        strategy = stripe_kron_select(domain, stripe_axis=0, branching=2)
        rng = np.random.default_rng(0)
        x = rng.integers(0, 10, 12).astype(float)
        answers = strategy.matvec(x)
        # The Kronecker layout interleaves per-stripe hierarchies; verify the
        # total mass of answers equals measuring each stripe separately.
        from repro.matrix import HierarchicalQueries

        hierarchy = HierarchicalQueries(4, branching=2)
        per_stripe = [
            hierarchy.matvec(x.reshape(4, 3)[:, j]) for j in range(3)
        ]
        assert np.isclose(np.sort(answers).sum(), np.sort(np.concatenate(per_stripe)).sum())


class TestPrivBayesBounds:
    def _relation(self):
        schema = Schema.build([Attribute("a", 3), Attribute("b", 2), Attribute("c", 2), Attribute("d", 2)])
        rng = np.random.default_rng(1)
        records = np.column_stack(
            [rng.integers(0, size, 2000) for size in schema.domain]
        )
        return Relation(schema, records)

    def test_parent_sets_respect_max_parents(self):
        relation = self._relation()
        source = protect(relation, 10.0, seed=0).vectorize()
        _, network = privbayes_select(
            source, relation.schema.domain, epsilon=3.0, max_parents=1, total_records=2000.0
        )
        assert all(len(parents) <= 1 for _, parents in network)

    def test_measurement_budget_split_across_attributes(self):
        relation = self._relation()
        source = protect(relation, 10.0, seed=0).vectorize()
        privbayes_select(
            source, relation.schema.domain, epsilon=3.0, max_parents=2, total_records=2000.0
        )
        assert source.budget_consumed() == pytest.approx(3.0)
