"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import Attribute, Relation, Schema, small_census, synthetic_credit_default
from repro.private import protect


@pytest.fixture
def rng():
    """A seeded random generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_vector():
    """A small non-negative integer data vector (a 1-D histogram)."""
    rng = np.random.default_rng(7)
    return rng.integers(0, 40, size=64).astype(np.float64)


@pytest.fixture
def tiny_census():
    """A scaled-down census relation (income 50 bins) for end-to-end tests."""
    return small_census(num_records=2000, seed=11)


@pytest.fixture
def tiny_credit():
    """A small credit-default relation for the Naive Bayes tests."""
    return synthetic_credit_default(num_records=3000, seed=13)


def make_vector_relation(values: np.ndarray, name: str = "v") -> Relation:
    """Wrap a histogram as a one-attribute relation whose vectorisation equals it."""
    schema = Schema.build([Attribute(name, len(values))])
    return Relation.from_histogram(schema, values)


@pytest.fixture
def vector_source_factory():
    """Factory fixture: build a protected vector source around a histogram."""

    def build(values: np.ndarray, epsilon: float = 1.0, seed: int = 0):
        relation = make_vector_relation(np.asarray(values, dtype=np.float64))
        return protect(relation, epsilon, seed=seed).vectorize()

    return build
