"""Tests for the functional operator wrappers and measurement helpers."""

import numpy as np
import pytest

from repro.matrix import Identity, Prefix, ReductionMatrix, Total
from repro.operators import (
    laplace_noise_scale,
    noisy_count,
    select,
    t_vectorize,
    v_reduce_by_partition,
    v_split_by_partition,
    vector_laplace,
    where,
)
from repro.private import protect
from tests.conftest import make_vector_relation

from repro.dataset import small_census


class TestMeasurementWrappers:
    def test_vector_laplace_matches_handle_method(self):
        x = np.arange(16.0)
        source_a = protect(make_vector_relation(x), 1.0, seed=5).vectorize()
        source_b = protect(make_vector_relation(x), 1.0, seed=5).vectorize()
        ya = vector_laplace(source_a, Identity(16), 0.5)
        yb = source_b.vector_laplace(Identity(16), 0.5)
        assert np.array_equal(ya, yb)

    def test_noisy_count_wrapper(self):
        relation = small_census(1000, seed=1)
        source = protect(relation, 1.0, seed=2)
        value = noisy_count(source, 0.5)
        assert abs(value - 1000) < 100
        assert source.budget_consumed() == pytest.approx(0.5)

    def test_laplace_noise_scale_is_public(self):
        assert laplace_noise_scale(Identity(10), 0.5) == pytest.approx(2.0)
        assert laplace_noise_scale(Prefix(10), 1.0) == pytest.approx(10.0)
        assert laplace_noise_scale(Total(10), 2.0) == pytest.approx(0.5)


class TestTransformationWrappers:
    def test_pipeline_matches_method_chaining(self):
        relation = small_census(2000, seed=3)
        source_a = protect(relation, 1.0, seed=0)
        source_b = protect(relation, 1.0, seed=0)

        chained = source_a.where({"gender": 0}).select(["income"]).vectorize()
        wrapped = t_vectorize(select(where(source_b, {"gender": 0}), ["income"]))
        ya = chained.vector_laplace(Identity(chained.domain_size), 0.5)
        yb = wrapped.vector_laplace(Identity(wrapped.domain_size), 0.5)
        assert np.array_equal(ya, yb)

    def test_reduce_and_split_wrappers(self):
        x = np.arange(12.0)
        source = protect(make_vector_relation(x), 1.0, seed=1).vectorize()
        partition = ReductionMatrix(np.arange(12) % 3)
        reduced = v_reduce_by_partition(source, partition)
        assert reduced.domain_size == 3
        pieces = v_split_by_partition(source, partition)
        assert len(pieces) == 3
        assert sum(p.domain_size for p in pieces) == 12
