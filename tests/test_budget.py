"""Unit tests for the budget tracker (Algorithm 2)."""

import pytest

from repro.private.budget import BudgetTracker, NodeKind


class TestBasicAccounting:
    def test_root_requests_accumulate(self):
        tracker = BudgetTracker(1.0)
        assert tracker.request("root", 0.4)
        assert tracker.request("root", 0.4)
        assert tracker.consumed() == pytest.approx(0.8)
        assert tracker.remaining() == pytest.approx(0.2)

    def test_root_request_denied_when_exceeding(self):
        tracker = BudgetTracker(1.0)
        assert tracker.request("root", 0.9)
        assert not tracker.request("root", 0.2)
        # Denied request leaves the state unchanged.
        assert tracker.consumed() == pytest.approx(0.9)

    def test_negative_request_rejected(self):
        tracker = BudgetTracker(1.0)
        with pytest.raises(ValueError):
            tracker.request("root", -0.1)

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            BudgetTracker(0.0)

    def test_unknown_node(self):
        tracker = BudgetTracker(1.0)
        with pytest.raises(KeyError):
            tracker.request("ghost", 0.1)


class TestDerivedNodes:
    def test_stability_multiplies_cost(self):
        tracker = BudgetTracker(1.0)
        tracker.add_derived("groupby", "root", stability=2.0)
        assert tracker.request("groupby", 0.3)
        # The root pays stability * sigma.
        assert tracker.consumed("root") == pytest.approx(0.6)
        assert tracker.consumed("groupby") == pytest.approx(0.3)

    def test_chained_stability(self):
        tracker = BudgetTracker(10.0)
        tracker.add_derived("a", "root", stability=2.0)
        tracker.add_derived("b", "a", stability=3.0)
        assert tracker.request("b", 1.0)
        assert tracker.consumed("root") == pytest.approx(6.0)
        assert tracker.cumulative_stability("b") == pytest.approx(6.0)

    def test_denial_propagates_without_charging(self):
        tracker = BudgetTracker(1.0)
        tracker.add_derived("a", "root", stability=2.0)
        assert not tracker.request("a", 0.6)  # would cost 1.2 at the root
        assert tracker.consumed("root") == 0.0
        assert tracker.consumed("a") == 0.0

    def test_duplicate_names_rejected(self):
        tracker = BudgetTracker(1.0)
        tracker.add_derived("a", "root", stability=1.0)
        with pytest.raises(ValueError):
            tracker.add_derived("a", "root", stability=1.0)

    def test_nonpositive_stability_rejected(self):
        tracker = BudgetTracker(1.0)
        with pytest.raises(ValueError):
            tracker.add_derived("a", "root", stability=0.0)

    def test_lineage(self):
        tracker = BudgetTracker(1.0)
        tracker.add_derived("a", "root", stability=1.0)
        tracker.add_derived("b", "a", stability=1.0)
        assert tracker.lineage("b") == ["b", "a", "root"]


class TestParallelComposition:
    def _tracker_with_partition(self, epsilon=1.0, children=3):
        tracker = BudgetTracker(epsilon)
        tracker.add_derived("vector", "root", stability=1.0)
        tracker.add_partition("part", "vector")
        names = []
        for i in range(children):
            name = f"child{i}"
            tracker.add_derived(name, "part", stability=1.0)
            names.append(name)
        return tracker, names

    def test_parallel_children_share_cost(self):
        tracker, children = self._tracker_with_partition()
        for child in children:
            assert tracker.request(child, 0.5)
        # Only the maximum over children reaches the root.
        assert tracker.consumed("root") == pytest.approx(0.5)

    def test_unequal_children_charge_max(self):
        tracker, children = self._tracker_with_partition(epsilon=2.0)
        assert tracker.request(children[0], 0.5)
        assert tracker.request(children[1], 0.9)
        assert tracker.request(children[2], 0.2)
        assert tracker.consumed("root") == pytest.approx(0.9)

    def test_repeated_requests_on_same_child_are_sequential(self):
        tracker, children = self._tracker_with_partition(epsilon=2.0)
        assert tracker.request(children[0], 0.5)
        assert tracker.request(children[0], 0.5)
        assert tracker.consumed("root") == pytest.approx(1.0)

    def test_denial_when_max_exceeds_budget(self):
        tracker, children = self._tracker_with_partition(epsilon=1.0)
        assert tracker.request(children[0], 0.8)
        assert not tracker.request(children[1], 1.2)
        assert tracker.consumed("root") == pytest.approx(0.8)

    def test_node_kinds(self):
        tracker, _ = self._tracker_with_partition()
        assert tracker.node("root").kind is NodeKind.ROOT
        assert tracker.node("part").kind is NodeKind.PARTITION
        assert tracker.node("child0").kind is NodeKind.DERIVED

    def test_direct_request_on_partition_node_rejected(self):
        tracker, _ = self._tracker_with_partition()
        with pytest.raises(RuntimeError):
            tracker.request("part", 0.1)

    def test_derived_below_partition_child(self):
        tracker, children = self._tracker_with_partition(epsilon=1.0)
        tracker.add_derived("reduced", children[0], stability=1.0)
        assert tracker.request("reduced", 0.4)
        assert tracker.consumed("root") == pytest.approx(0.4)
        # Sibling can still measure 0.4 "for free" (parallel composition).
        assert tracker.request(children[1], 0.4)
        assert tracker.consumed("root") == pytest.approx(0.4)
