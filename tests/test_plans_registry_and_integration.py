"""Plan registry tests and end-to-end integration tests."""

import numpy as np
import pytest

from repro.analysis import per_query_l2_error
from repro.dataset import load_1d, small_census
from repro.matrix import Prefix
from repro.plans import (
    PLAN_TABLE,
    PLANS_BY_ID,
    PLANS_BY_NAME,
    PlanResult,
    get_plan,
    plan_signatures,
    with_representation,
)
from repro.private import protect
from repro.workload import prefix_workload, random_range_workload
from tests.conftest import make_vector_relation


class TestRegistry:
    def test_all_twenty_plan_ids_present(self):
        assert set(PLANS_BY_ID) == set(range(1, 21))

    def test_signatures_match_figure_two(self):
        assert PLANS_BY_NAME["Identity"].signature == "SI LM"
        assert PLANS_BY_NAME["DAWA"].signature == "PD TR SG LM LS"
        assert PLANS_BY_NAME["MWEM variant d"].signature == "I:( SW SH2 LM NLS )"
        assert PLANS_BY_NAME["HB-Striped_kron"].signature == "SS LM LS"

    def test_every_entry_has_a_factory(self):
        for entry in PLAN_TABLE:
            assert callable(entry.factory)

    def test_get_plan_by_name(self):
        plan = get_plan("Uniform")
        assert plan.name == "Uniform"

    def test_get_plan_unknown_name(self):
        with pytest.raises(KeyError):
            get_plan("NotAPlan")

    def test_plan_signatures_table(self):
        rows = plan_signatures()
        assert len(rows) == len(PLAN_TABLE)
        assert (1, "Identity", "SI LM") in rows


class TestPlanResult:
    def test_answer_uses_estimate(self):
        result = PlanResult(np.array([1.0, 2.0, 3.0]), budget_spent=0.5)
        answers = result.answer(Prefix(3))
        assert np.allclose(answers, [1.0, 3.0, 6.0])

    def test_with_representation_round_trip(self):
        m = Prefix(6)
        for representation in ("implicit", "sparse", "dense"):
            converted = with_representation(m, representation)
            assert np.allclose(converted.dense(), m.dense())

    def test_with_representation_rejects_unknown(self):
        with pytest.raises(ValueError):
            with_representation(Prefix(4), "quantum")


class TestEndToEnd:
    """Full pipeline: relation -> protected kernel -> plan -> workload answers."""

    def test_prefix_workload_pipeline(self):
        x = load_1d("EXPDECAY", n=64, scale=30_000)
        relation = make_vector_relation(x)
        source = protect(relation, 1.0, seed=0).vectorize()
        plan = get_plan("Hierarchical Opt (HB)")
        result = plan.run(source, 1.0)
        workload = prefix_workload(64)
        answers = result.answer(workload)
        truth = workload.matvec(x)
        assert np.abs(answers - truth).max() / truth.max() < 0.1

    def test_census_tabulation_pipeline(self):
        relation = small_census(3000, seed=61)
        domain = relation.schema.domain
        source = protect(relation, 1.0, seed=1).vectorize()
        plan = get_plan("DAWA-Striped", domain=domain, stripe_axis=0)
        result = plan.run(source, 1.0)
        assert result.budget_spent == pytest.approx(1.0)
        workload = random_range_workload(relation.domain_size, 20, seed=3)
        assert np.all(np.isfinite(result.answer(workload)))

    def test_multiple_plans_share_one_budget(self):
        x = load_1d("GAUSSIAN", n=64, scale=10_000)
        relation = make_vector_relation(x)
        source = protect(relation, 1.0, seed=2).vectorize()
        first = get_plan("Identity").run(source, 0.5)
        second = get_plan("Hierarchical (H2)").run(source, 0.5)
        assert source.budget_consumed() == pytest.approx(1.0)
        from repro.private import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            get_plan("Uniform").run(source, 0.1)

    def test_inference_combines_measurements_from_both_plans(self):
        # Measurements taken by different plans can be pooled in one global
        # least-squares inference (the "inference: impact on accuracy" claim).
        from repro.matrix import Identity as IdentityMatrix
        from repro.operators.inference import least_squares_from_parts

        x = load_1d("STAIRCASE", n=32, scale=20_000)
        relation = make_vector_relation(x)
        source = protect(relation, 2.0, seed=3).vectorize()
        m1 = IdentityMatrix(32)
        y1 = source.vector_laplace(m1, 1.0)
        m2 = Prefix(32)
        y2 = source.vector_laplace(m2, 1.0)
        combined = least_squares_from_parts([(m1, y1, 1.0), (m2, y2, 32.0)])
        single = least_squares_from_parts([(m1, y1, 1.0)])
        workload = prefix_workload(32)
        combined_error = per_query_l2_error(workload, x, combined.x_hat)
        single_error = per_query_l2_error(workload, x, single.x_hat)
        assert combined_error <= single_error * 1.05

    def test_workload_reduction_end_to_end(self):
        from repro.operators.partition import workload_based_partition

        x = load_1d("CLUSTERED", n=128, scale=40_000)
        relation = make_vector_relation(x)
        workload = random_range_workload(128, 10, seed=4, max_length=8)
        partition = workload_based_partition(workload)
        assert partition.num_groups < 128

        source = protect(relation, 1.0, seed=5).vectorize()
        reduced = source.reduce_by_partition(partition)
        from repro.matrix import Identity as IdentityMatrix

        noisy = reduced.vector_laplace(IdentityMatrix(reduced.domain_size), 1.0)
        reduced_workload = partition.reduce_workload(workload)
        answers = reduced_workload.matvec(noisy)
        truth = workload.matvec(x)
        assert np.abs(answers - truth).mean() / max(truth.mean(), 1.0) < 0.05
