"""Unit tests for matrix combinators (VStack, HStack, Product, Kronecker, Weighted)."""

import numpy as np
import pytest

from repro.matrix import (
    DenseMatrix,
    HStack,
    Identity,
    Kronecker,
    Prefix,
    Product,
    SparseMatrix,
    Total,
    VStack,
    Weighted,
    ensure_matrix,
    stack_all,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestVStack:
    def test_matvec_matches_dense(self, rng):
        a = DenseMatrix(rng.normal(size=(3, 5)))
        b = DenseMatrix(rng.normal(size=(2, 5)))
        stacked = VStack([a, b])
        v = rng.normal(size=5)
        expected = np.concatenate([a.dense() @ v, b.dense() @ v])
        assert np.allclose(stacked.matvec(v), expected)

    def test_rmatvec_matches_dense(self, rng):
        a = DenseMatrix(rng.normal(size=(3, 5)))
        b = DenseMatrix(rng.normal(size=(2, 5)))
        stacked = VStack([a, b])
        u = rng.normal(size=5)
        assert np.allclose(stacked.rmatvec(u), stacked.dense().T @ u)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            VStack([Identity(3), Identity(4)])

    def test_split_answers(self):
        stacked = VStack([Identity(2), Total(2)])
        pieces = stacked.split_answers(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(pieces[0], [1.0, 2.0])
        assert np.allclose(pieces[1], [3.0])

    def test_row_indexing_across_parts(self):
        stacked = VStack([Identity(3), Total(3)])
        assert np.allclose(stacked.row(3), [1.0, 1.0, 1.0])
        assert np.allclose(stacked.row(1), [0.0, 1.0, 0.0])

    def test_stack_all_single(self):
        m = Identity(4)
        assert stack_all([m]) is m

    def test_sensitivity_adds_column_norms(self):
        stacked = VStack([Identity(4), Total(4)])
        assert stacked.sensitivity() == 2.0


class TestHStack:
    def test_matvec(self, rng):
        a = DenseMatrix(rng.normal(size=(3, 2)))
        b = DenseMatrix(rng.normal(size=(3, 4)))
        h = HStack([a, b])
        v = rng.normal(size=6)
        assert np.allclose(h.matvec(v), h.dense() @ v)

    def test_rmatvec(self, rng):
        a = DenseMatrix(rng.normal(size=(3, 2)))
        b = DenseMatrix(rng.normal(size=(3, 4)))
        h = HStack([a, b])
        u = rng.normal(size=3)
        assert np.allclose(h.rmatvec(u), h.dense().T @ u)

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            HStack([Identity(3), Total(3)])


class TestProduct:
    def test_matvec_matches_dense(self, rng):
        a = DenseMatrix(rng.normal(size=(3, 4)))
        b = DenseMatrix(rng.normal(size=(4, 6)))
        p = Product(a, b)
        v = rng.normal(size=6)
        assert np.allclose(p.matvec(v), a.dense() @ b.dense() @ v)

    def test_transpose(self, rng):
        a = DenseMatrix(rng.normal(size=(3, 4)))
        b = DenseMatrix(rng.normal(size=(4, 6)))
        p = Product(a, b)
        assert np.allclose(p.T.dense(), p.dense().T)

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ValueError):
            Product(Identity(3), Identity(4))

    def test_matmul_operator_builds_product(self):
        p = Identity(3) @ Identity(3)
        assert isinstance(p, Product)
        assert np.allclose(p.dense(), np.eye(3))


class TestWeighted:
    def test_scales_matvec(self):
        w = Weighted(Identity(3), 2.5)
        assert np.allclose(w.matvec(np.ones(3)), 2.5 * np.ones(3))

    def test_abs_and_square(self):
        w = Weighted(Identity(3), -2.0)
        assert np.allclose(abs(w).dense(), 2.0 * np.eye(3))
        assert np.allclose(w.square().dense(), 4.0 * np.eye(3))

    def test_sensitivity(self):
        assert Weighted(Identity(5), 3.0).sensitivity() == 3.0


class TestKronecker:
    def test_matvec_matches_numpy_kron(self, rng):
        a = DenseMatrix(rng.normal(size=(2, 3)))
        b = DenseMatrix(rng.normal(size=(4, 5)))
        k = Kronecker([a, b])
        v = rng.normal(size=15)
        assert np.allclose(k.matvec(v), np.kron(a.dense(), b.dense()) @ v)

    def test_rmatvec_matches_numpy_kron(self, rng):
        a = DenseMatrix(rng.normal(size=(2, 3)))
        b = DenseMatrix(rng.normal(size=(4, 5)))
        k = Kronecker([a, b])
        u = rng.normal(size=8)
        assert np.allclose(k.rmatvec(u), np.kron(a.dense(), b.dense()).T @ u)

    def test_three_factor_kron(self, rng):
        factors = [DenseMatrix(rng.normal(size=(2, 2))) for _ in range(3)]
        k = Kronecker(factors)
        expected = np.kron(np.kron(factors[0].dense(), factors[1].dense()), factors[2].dense())
        v = rng.normal(size=8)
        assert np.allclose(k.matvec(v), expected @ v)
        assert np.allclose(k.dense(), expected)

    def test_sensitivity_multiplies(self):
        from repro.matrix import Ones

        k = Kronecker([Ones(3, 2), Identity(4)])
        # ||A (x) B||_1 = ||A||_1 * ||B||_1 = 3 * 1.
        assert k.sensitivity() == 3.0
        dense = k.dense()
        assert np.abs(dense).sum(axis=0).max() == 3.0

    def test_shape(self):
        k = Kronecker([Identity(3), Total(5), Prefix(2)])
        assert k.shape == (3 * 1 * 2, 3 * 5 * 2)


class TestEnsureMatrix:
    def test_wraps_ndarray(self):
        m = ensure_matrix(np.eye(3))
        assert isinstance(m, DenseMatrix)

    def test_wraps_sparse(self):
        import scipy.sparse as sp

        m = ensure_matrix(sp.identity(4))
        assert isinstance(m, SparseMatrix)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ensure_matrix(np.ones(3))

    def test_passthrough(self):
        m = Identity(3)
        assert ensure_matrix(m) is m
