"""Unit tests for the Private→Public selection operators (WorstApprox, PrivBayes)."""

import numpy as np
import pytest

from repro.matrix import RangeQueries
from repro.operators.selection.privbayes import (
    mutual_information_score,
    privbayes_select,
    privbayes_synthetic_distribution,
)
from repro.operators.selection.worst_approx import augment_with_hierarchy, worst_approximated
from tests.conftest import make_vector_relation

from repro.dataset import Attribute, Relation, Schema
from repro.private import protect


class TestWorstApproximated:
    def _source(self, x, epsilon=100.0, seed=0):
        relation = make_vector_relation(np.asarray(x, dtype=float))
        return protect(relation, epsilon, seed=seed).vectorize()

    def test_selects_badly_approximated_query(self):
        x = np.zeros(16)
        x[0:4] = 100.0
        workload = RangeQueries(16, [(0, 3), (8, 11)])
        estimate = np.zeros(16)  # query 0 is badly approximated, query 1 perfectly
        source = self._source(x, epsilon=100.0)
        index, row = worst_approximated(source, workload, estimate, epsilon=50.0)
        assert index == 0
        assert np.allclose(row, workload.row(0))

    def test_consumes_budget(self):
        x = np.ones(8)
        workload = RangeQueries(8, [(0, 3), (4, 7)])
        source = self._source(x, epsilon=1.0)
        worst_approximated(source, workload, np.zeros(8), epsilon=0.25)
        assert source.budget_consumed() == pytest.approx(0.25)

    def test_augmentation_is_disjoint_from_selected(self):
        row = np.zeros(16)
        row[4:8] = 1.0
        augmented = augment_with_hierarchy(row, round_index=1, n=16)
        dense = augmented.dense()
        # First row is the selected query; other rows never overlap its support.
        assert np.allclose(dense[0], row)
        for other in dense[1:]:
            assert np.all(other[4:8] == 0)
        # Disjointness keeps the sensitivity at 1.
        assert augmented.sensitivity() == 1.0

    def test_augmentation_interval_length_grows_with_round(self):
        row = np.zeros(16)
        row[0] = 1.0
        early = augment_with_hierarchy(row, round_index=0, n=16)
        late = augment_with_hierarchy(row, round_index=3, n=16)
        assert early.shape[0] > late.shape[0]


class TestPrivBayes:
    def _census_like(self, seed=0):
        schema = Schema.build([Attribute("a", 3), Attribute("b", 3), Attribute("c", 2)])
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 3, 4000)
        b = (a + rng.integers(0, 2, 4000)) % 3  # b strongly depends on a
        c = rng.integers(0, 2, 4000)
        return Relation.from_columns(schema, {"a": a, "b": b, "c": c})

    def test_mutual_information_detects_dependence(self):
        relation = self._census_like()
        x = relation.vectorize()
        domain = relation.schema.domain
        mi_dependent = mutual_information_score(x, domain, 1, [0])  # b vs a
        mi_independent = mutual_information_score(x, domain, 2, [0])  # c vs a
        assert mi_dependent > mi_independent + 0.1

    def test_empty_parent_set_scores_zero(self):
        relation = self._census_like()
        x = relation.vectorize()
        assert mutual_information_score(x, relation.schema.domain, 1, []) == 0.0

    def test_select_returns_valid_network_and_measurements(self):
        relation = self._census_like()
        source = protect(relation, 10.0, seed=1).vectorize()
        measurements, network = privbayes_select(
            source, relation.schema.domain, epsilon=5.0, total_records=4000.0, seed=0
        )
        assert len(network) == 3
        attributes = [attr for attr, _ in network]
        assert sorted(attributes) == [0, 1, 2]
        # Parents always precede their child in the construction order.
        seen = set()
        for attribute, parents in network:
            assert set(parents) <= seen
            seen.add(attribute)
        assert measurements.shape[1] == relation.schema.domain_size
        assert source.budget_consumed() <= 5.0 + 1e-9

    def test_synthetic_distribution_is_probability_vector(self):
        relation = self._census_like()
        domain = relation.schema.domain
        x = relation.vectorize()
        network = [(0, ()), (1, (0,)), (2, (0,))]
        estimates = {}
        for attribute, parents in network:
            keep = (attribute, *parents)
            tensor = x.reshape(domain)
            drop = tuple(a for a in range(len(domain)) if a not in keep)
            table = tensor.sum(axis=drop)
            estimates[keep] = table.ravel()
        distribution = privbayes_synthetic_distribution(network, estimates, domain)
        assert np.isclose(distribution.sum(), 1.0)
        assert np.all(distribution >= 0)
        # With exact marginals the factorised joint should resemble the truth.
        truth = x / x.sum()
        assert np.abs(distribution - truth).sum() < 0.5
