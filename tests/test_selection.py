"""Unit tests for the query-selection operators."""

import numpy as np
import pytest

from repro.matrix import Identity, Kronecker, Prefix, RangeQueries, Total, VStack
from repro.operators.selection import (
    adaptive_grid_select,
    classify_workload_factor,
    expected_total_error,
    greedy_h_select,
    h2_select,
    hb_select,
    hdmm_select,
    identity_select,
    prefix_select,
    quadtree_select,
    stripe_kron_select,
    total_select,
    uniform_grid_select,
    wavelet_select,
)
from repro.operators.selection.hierarchical import _dyadic_decomposition


class TestSimpleSelect:
    def test_identity_total_prefix(self):
        assert identity_select(6).shape == (6, 6)
        assert total_select(6).shape == (1, 6)
        assert prefix_select(6).shape == (6, 6)

    def test_wavelet_requires_power_of_two(self):
        assert wavelet_select(8).shape == (8, 8)
        with pytest.raises(ValueError):
            wavelet_select(6)

    def test_h2_and_hb_support_reconstruction(self):
        for strategy in [h2_select(20), hb_select(20)]:
            assert np.linalg.matrix_rank(strategy.dense()) == 20

    def test_hb_uses_larger_branching_for_big_domains(self):
        small = h2_select(64)
        big = hb_select(4096)
        # HB uses a larger branching factor, hence fewer internal nodes per leaf.
        assert big.shape[0] / 4096 <= small.shape[0] / 64 + 1


class TestGreedyH:
    def test_dyadic_decomposition_covers_range(self):
        pieces = _dyadic_decomposition(3, 12, 16)
        covered = sorted(i for lo, hi in pieces for i in range(lo, hi + 1))
        assert covered == list(range(3, 13))

    def test_full_rank(self):
        g = greedy_h_select(32, [(0, 15), (16, 31)])
        assert np.linalg.matrix_rank(g.dense()) == 32

    def test_workload_changes_weights(self):
        uniform = greedy_h_select(32)
        adapted = greedy_h_select(32, [(0, 31)] * 10)
        assert not np.allclose(uniform.dense(), adapted.dense())

    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(0)
        g = greedy_h_select(16, [(0, 3), (4, 15)])
        v = rng.normal(size=16)
        assert np.allclose(g.matvec(v), g.dense() @ v)


class TestGridSelect:
    def test_quadtree_covers_domain(self):
        q = quadtree_select(8, 8)
        assert np.allclose(q.dense().sum(axis=0).min(), q.dense().sum(axis=0).min())
        assert q.shape[1] == 64

    def test_uniform_grid_partitions_domain(self):
        g = uniform_grid_select(16, 16, total_estimate=10_000, epsilon=0.1)
        dense = g.dense()
        # Every cell is covered exactly once by the flat grid.
        assert np.allclose(dense.sum(axis=0), 1.0)

    def test_uniform_grid_granularity_grows_with_data(self):
        small = uniform_grid_select(32, 32, total_estimate=100, epsilon=0.1)
        large = uniform_grid_select(32, 32, total_estimate=1_000_000, epsilon=0.1)
        assert large.shape[0] > small.shape[0]

    def test_adaptive_grid_returns_none_for_sparse_regions(self):
        assert adaptive_grid_select((0, 7, 0, 7), 8, 8, noisy_region_count=0.0, epsilon=0.1) is None

    def test_adaptive_grid_refines_dense_regions(self):
        finer = adaptive_grid_select((0, 7, 0, 7), 8, 8, noisy_region_count=1e6, epsilon=1.0)
        assert finer is not None
        assert finer.shape[0] > 1


class TestHdmm:
    def test_identity_workload_gets_identity_like_strategy(self):
        strategy = hdmm_select(Identity(32))
        error_identity = expected_total_error(Identity(32), Identity(32))
        error_strategy = expected_total_error(Identity(32), strategy)
        assert error_strategy <= error_identity * 1.01

    def test_prefix_workload_prefers_hierarchy_over_identity(self):
        w = Prefix(64)
        strategy = hdmm_select(w)
        assert expected_total_error(w, strategy) < expected_total_error(w, Identity(64))

    def test_kron_workload_returns_kron_strategy(self):
        w = Kronecker([Prefix(16), Total(8)])
        strategy = hdmm_select(w)
        assert isinstance(strategy, Kronecker)
        assert strategy.shape[1] == 128

    def test_union_of_krons(self):
        w = VStack([Kronecker([Identity(4), Total(6)]), Kronecker([Total(4), Identity(6)])])
        strategy = hdmm_select(w)
        assert strategy.shape[1] == 24

    def test_expected_error_infinite_when_unsupported(self):
        # A total-only strategy cannot answer per-cell queries.
        assert expected_total_error(Identity(4), Total(4)) == float("inf")

    def test_classify_workload_factor(self):
        assert classify_workload_factor(Total(4)) == "total"
        assert classify_workload_factor(Identity(4)) == "identity"
        assert classify_workload_factor(Prefix(4)) == "prefix"
        assert classify_workload_factor(RangeQueries(4, [(0, 1)])) == "range"


class TestStripeKron:
    def test_shape(self):
        s = stripe_kron_select((8, 3, 2), stripe_axis=0)
        assert s.shape[1] == 48

    def test_identity_on_other_axes(self):
        s = stripe_kron_select((4, 3), stripe_axis=0)
        # Measuring a vector that is nonzero in a single "other" slice should
        # produce answers supported only in that slice's block of rows.
        x = np.zeros(12)
        x[1] = 5.0  # stripe position 0, other attribute value 1
        answers = s.matvec(x)
        assert np.count_nonzero(answers) > 0

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            stripe_kron_select((4, 3), stripe_axis=5)
