"""Unit tests for error metrics, classification utilities and harness helpers."""

import numpy as np
import pytest

from repro.analysis import (
    cross_validate_auc,
    expected_query_error,
    expected_workload_error,
    fit_naive_bayes_exact,
    fit_naive_bayes_from_histograms,
    format_table,
    improvement_factors,
    majority_auc,
    mean_absolute_error,
    per_query_l2_error,
    roc_auc,
    run_trials,
    total_squared_error,
)
from repro.dataset import synthetic_credit_default
from repro.matrix import HierarchicalQueries, Identity, Prefix, Total


class TestErrorMetrics:
    def test_zero_error_for_exact_estimate(self):
        x = np.arange(10.0)
        assert per_query_l2_error(Prefix(10), x, x) == 0.0
        assert mean_absolute_error(Prefix(10), x, x) == 0.0
        assert total_squared_error(Prefix(10), x, x) == 0.0

    def test_per_query_error_scales_with_records(self):
        x = np.full(10, 100.0)
        estimate = x + 10.0
        small_scale = per_query_l2_error(Identity(10), x, estimate, scale=10.0)
        large_scale = per_query_l2_error(Identity(10), x, estimate, scale=1000.0)
        assert small_scale > large_scale

    def test_total_squared_error_matches_manual(self):
        x = np.array([1.0, 2.0, 3.0])
        estimate = np.array([2.0, 2.0, 1.0])
        w = Identity(3)
        assert total_squared_error(w, x, estimate) == pytest.approx(1.0 + 0.0 + 4.0)

    def test_expected_error_identity_vs_hierarchy_on_total_query(self):
        # For long-range queries (here: the full-domain total) a hierarchy beats
        # identity measurements, whose variance grows linearly with the range
        # length; the crossover for whole workloads happens at larger domains.
        n = 64
        total_query = np.ones(n)
        identity_error = expected_query_error(total_query, Identity(n))
        hierarchy_error = expected_query_error(total_query, HierarchicalQueries(n))
        assert hierarchy_error < identity_error

    def test_expected_error_short_queries_prefer_identity(self):
        # Unit-length queries are answered best by measuring cells directly.
        n = 64
        unit_query = np.zeros(n)
        unit_query[3] = 1.0
        assert expected_query_error(unit_query, Identity(n)) <= expected_query_error(
            unit_query, HierarchicalQueries(n)
        )

    def test_expected_workload_error_positive(self):
        assert expected_workload_error(Prefix(8), Identity(8)) > 0


class TestRocAuc:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_reverse_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.05

    def test_constant_scores_give_half(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.zeros(4)
        assert roc_auc(labels, scores) == 0.5

    def test_single_class_returns_half(self):
        assert roc_auc(np.zeros(5), np.arange(5.0)) == 0.5

    def test_majority_baseline(self):
        assert majority_auc() == 0.5


class TestNaiveBayes:
    def test_fit_from_exact_histograms_matches_direct_fit(self):
        relation = synthetic_credit_default(num_records=5000, seed=0)
        predictors = ["education", "pay_0"]
        model = fit_naive_bayes_exact(relation, "default", predictors)
        label = relation.column("default")
        features = relation.records[:, [relation.schema.index_of(p) for p in predictors]]
        auc = roc_auc(label, model.decision_scores(features))
        assert auc > 0.6

    def test_fit_from_histograms_validates_label_shape(self):
        with pytest.raises(ValueError):
            fit_naive_bayes_from_histograms(np.ones(3), [np.ones((2, 4))])

    def test_noisy_histograms_are_clipped(self):
        label_hist = np.array([-5.0, 10.0])
        joint = np.array([[-1.0, 4.0], [2.0, 3.0]])
        model = fit_naive_bayes_from_histograms(label_hist, [joint])
        assert np.all(np.isfinite(model.class_log_prior))
        assert all(np.all(np.isfinite(t)) for t in model.feature_log_prob)

    def test_predict_outputs_binary(self):
        model = fit_naive_bayes_from_histograms(np.array([5.0, 5.0]), [np.eye(2) * 5])
        predictions = model.predict(np.array([[0], [1]]))
        assert set(predictions.tolist()) <= {0, 1}

    def test_cross_validation_runs_all_folds(self):
        relation = synthetic_credit_default(num_records=2000, seed=1)
        predictors = ["pay_0"]

        def fit(train):
            return fit_naive_bayes_exact(train, "default", predictors)

        result = cross_validate_auc(relation, "default", predictors, fit, folds=5, repeats=2)
        assert len(result.aucs) == 10
        assert 0.4 < result.median <= 1.0
        assert result.percentile(25) <= result.percentile(75)


class TestHarnessHelpers:
    def test_run_trials_collects_results(self):
        sweep = run_trials("test", lambda trial: float(trial), trials=4)
        assert sweep.errors == [0.0, 1.0, 2.0, 3.0]
        assert sweep.mean_error == pytest.approx(1.5)
        assert sweep.mean_runtime >= 0.0
        low, mean, high = sweep.error_percentiles()
        assert low == 0.0 and high == 3.0

    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1.0], ["longer", 123456.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_improvement_factors(self):
        factors = improvement_factors([2.0, 4.0], [1.0, 8.0])
        assert np.allclose(factors, [2.0, 0.5])
