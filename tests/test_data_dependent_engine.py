"""Property tests for the vectorized data-dependent engine.

Three families of guarantees:

* the vectorized DAWA L1 partition (:func:`l1_partition` /
  :func:`l1_partition_batch`) and AHP clustering
  (:func:`cluster_sorted_counts`) return assignments *identical* to the
  retained scalar references, on randomized histograms including the n=0,
  n=1, all-zero and non-power-of-two edge cases;
* the support-sparse sequential multiplicative-weights update is bit-identical
  to the dense sequential update (``exp(0) = 1`` exactly), in both the
  function-level and the single-update (:func:`mwem_update`) forms;
* the Gram-engine expected-error analysis matches the per-query
  pseudo-inverse formula it replaced, and :func:`multiplicative_weights`
  implements its documented total estimation (mean of total-like rows).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import expected_query_error, expected_workload_error
from repro.matrix import HierarchicalQueries, Identity, Prefix, RangeQueries, Total, VStack
from repro.matrix.dense import DenseMatrix
from repro.operators.inference import estimate_total, multiplicative_weights, mwem_update
from repro.operators.inference import mult_weights
from repro.operators.partition import cluster_sorted_counts, l1_partition, l1_partition_batch
from repro.operators.partition.ahp import _reference_cluster_sorted_counts
from repro.operators.partition.dawa import _reference_l1_partition


def _reference_batch(blocks, noise_scale):
    return np.stack([_reference_l1_partition(row, noise_scale) for row in blocks])


# Integer-valued histograms: every interval cost is an exact dyadic rational,
# so the vectorized accumulation is bit-equal to the reference's and the
# assignment match is *guaranteed*, not merely overwhelmingly likely.
_int_histograms = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=0, max_size=130
).map(lambda values: np.asarray(values, dtype=np.float64))

_noise_scales = st.sampled_from([0.25, 1.0, 3.5, 17.0])


class TestL1PartitionMatchesReference:
    @settings(max_examples=150, deadline=None)
    @given(noisy=_int_histograms, noise_scale=_noise_scales)
    def test_integer_histograms(self, noisy, noise_scale):
        assert np.array_equal(
            l1_partition(noisy, noise_scale), _reference_l1_partition(noisy, noise_scale)
        )

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 17, 31, 64, 100, 127, 255, 300])
    @pytest.mark.parametrize("noise_scale", [0.5, 2.0])
    def test_noised_histograms_all_domain_shapes(self, n, noise_scale):
        rng = np.random.default_rng(1000 + n)
        plateau = np.repeat(rng.integers(0, 60, n // 8 + 1), 8)[:n].astype(np.float64)
        noisy = plateau + rng.laplace(0.0, noise_scale, n)
        assert np.array_equal(
            l1_partition(noisy, noise_scale), _reference_l1_partition(noisy, noise_scale)
        )

    @pytest.mark.parametrize("n", [0, 1, 6, 33, 128])
    def test_all_zero_histogram(self, n):
        zeros = np.zeros(n)
        assert np.array_equal(l1_partition(zeros, 1.0), _reference_l1_partition(zeros, 1.0))

    def test_constant_histogram_merges_everything(self):
        constant = np.full(64, 9.0)
        assignment = l1_partition(constant, 1.0)
        assert np.array_equal(assignment, _reference_l1_partition(constant, 1.0))
        assert len(np.unique(assignment)) == 1

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-D"):
            l1_partition(np.zeros((2, 4)), 1.0)


class TestL1PartitionBatch:
    @pytest.mark.parametrize("shape", [(1, 1), (1, 40), (3, 5), (7, 33), (32, 16), (16, 64)])
    def test_matches_per_row_reference(self, shape):
        rng = np.random.default_rng(hash(shape) % (2**32))
        blocks = rng.integers(0, 80, size=shape).astype(np.float64)
        blocks += rng.laplace(0.0, 1.5, size=shape)
        assert np.array_equal(
            l1_partition_batch(blocks, 1.5), _reference_batch(blocks, 1.5)
        )

    def test_empty_batch_shapes(self):
        assert l1_partition_batch(np.zeros((0, 5)), 1.0).shape == (0, 5)
        assert l1_partition_batch(np.zeros((4, 0)), 1.0).shape == (4, 0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match="stack"):
            l1_partition_batch(np.zeros(8), 1.0)

    def test_groups_are_contiguous_per_row(self):
        rng = np.random.default_rng(7)
        blocks = rng.laplace(10.0, 4.0, size=(5, 48))
        for row in l1_partition_batch(blocks, 4.0):
            assert np.all(np.diff(row) >= 0)


class TestClusterSortedCountsMatchesReference:
    @settings(max_examples=150, deadline=None)
    @given(
        noisy=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
            min_size=0,
            max_size=120,
        ).map(np.asarray),
        gap_ratio=st.sampled_from([0.2, 0.5, 1.0, 2.5]),
    )
    def test_arbitrary_floats(self, noisy, gap_ratio):
        assert np.array_equal(
            cluster_sorted_counts(noisy, gap_ratio=gap_ratio),
            _reference_cluster_sorted_counts(noisy, gap_ratio=gap_ratio),
        )

    @pytest.mark.parametrize("n", [0, 1, 2, 63, 64, 65, 100, 513])
    def test_noised_histograms(self, n):
        rng = np.random.default_rng(2000 + n)
        noisy = np.maximum(rng.laplace(5.0, 25.0, n), 0.0)
        assert np.array_equal(
            cluster_sorted_counts(noisy), _reference_cluster_sorted_counts(noisy)
        )

    def test_all_zero_and_duplicates(self):
        for noisy in (np.zeros(40), np.repeat([3.0, 3.0, 900.0], 20)):
            assert np.array_equal(
                cluster_sorted_counts(noisy), _reference_cluster_sorted_counts(noisy)
            )

    def test_group_crossing_scan_window_boundary(self):
        # One group wider than the initial scan window forces the doubling path.
        from repro.operators.partition.ahp import _SCAN_WINDOW

        n = _SCAN_WINDOW * 4 + 17
        rng = np.random.default_rng(3)
        noisy = 1000.0 + rng.random(n) * 1e-6  # one huge tight group
        noisy[::97] += 5000.0  # plus a few far outliers
        assert np.array_equal(
            cluster_sorted_counts(noisy), _reference_cluster_sorted_counts(noisy)
        )


class TestSupportSparseMultiplicativeWeights:
    def _range_setup(self, seed, n=48, num_queries=30):
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, n, size=(num_queries, 2))
        queries = RangeQueries(n, [(min(a, b), max(a, b)) for a, b in pairs])
        x_true = rng.integers(0, 40, size=n).astype(np.float64)
        answers = queries.matvec(x_true) + rng.normal(0.0, 1.0, num_queries)
        return queries, answers, float(x_true.sum())

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_dense_sequential(self, seed):
        queries, answers, total = self._range_setup(seed)
        sparse = multiplicative_weights(
            queries, answers, total=total, iterations=9, support_sparse=True
        )
        dense = multiplicative_weights(
            queries, answers, total=total, iterations=9, support_sparse=False
        )
        assert np.array_equal(sparse.x_hat, dense.x_hat)
        assert sparse.residual_norm == dense.residual_norm

    def test_bit_identical_on_blocked_uncached_path(self, monkeypatch):
        monkeypatch.setattr(mult_weights, "_ROW_CACHE_CELLS", 0)
        monkeypatch.setattr(mult_weights, "_ROW_BLOCK", 4)
        queries, answers, total = self._range_setup(3)
        sparse = multiplicative_weights(
            queries, answers, total=total, iterations=5, support_sparse=True
        )
        dense = multiplicative_weights(
            queries, answers, total=total, iterations=5, support_sparse=False
        )
        assert np.array_equal(sparse.x_hat, dense.x_hat)

    def test_auto_matches_both(self):
        queries, answers, total = self._range_setup(4)
        auto = multiplicative_weights(queries, answers, total=total, iterations=6)
        forced = multiplicative_weights(
            queries, answers, total=total, iterations=6, support_sparse=False
        )
        assert np.array_equal(auto.x_hat, forced.x_hat)

    def test_row_cache_matches_self_extraction(self):
        queries, answers, total = self._range_setup(5)
        rows = queries.rows(np.arange(queries.shape[0]))
        with_cache = multiplicative_weights(
            queries, answers, total=total, iterations=6, row_cache=rows
        )
        without = multiplicative_weights(queries, answers, total=total, iterations=6)
        assert np.array_equal(with_cache.x_hat, without.x_hat)

    def test_row_cache_shape_validated(self):
        queries, answers, total = self._range_setup(6)
        with pytest.raises(ValueError, match="row_cache"):
            multiplicative_weights(queries, answers, row_cache=np.zeros((2, 2)))

    def test_mwem_update_support_bit_identical(self):
        rng = np.random.default_rng(8)
        n = 64
        x_hat = rng.random(n) * 10.0
        row = np.zeros(n)
        row[10:23] = 1.0
        dense = mwem_update(x_hat, row, 57.0, total=500.0)
        sparse = mwem_update(x_hat, row, 57.0, total=500.0, support=np.flatnonzero(row))
        assert np.array_equal(dense, sparse)

    def test_mwem_update_empty_support(self):
        x_hat = np.full(8, 2.0)
        row = np.zeros(8)
        dense = mwem_update(x_hat, row, 3.0, total=16.0)
        sparse = mwem_update(x_hat, row, 3.0, total=16.0, support=np.flatnonzero(row))
        assert np.array_equal(dense, sparse)


class TestTotalEstimation:
    def test_mean_of_total_like_rows(self):
        n = 16
        queries = VStack([Identity(n), Total(n), Total(n)])
        answers = np.concatenate([np.full(n, 3.0), [100.0, 110.0]])
        # Documented behaviour: the mean of the total-like rows' answers.
        assert estimate_total(queries, answers) == pytest.approx(105.0)
        result = multiplicative_weights(queries, answers, iterations=5)
        assert result.x_hat.sum() == pytest.approx(105.0, rel=1e-6)

    def test_all_ones_dense_row_detected(self):
        queries = DenseMatrix(np.vstack([np.eye(4), np.ones((1, 4))]))
        answers = np.array([1.0, 2.0, 3.0, 4.0, 42.0])
        assert estimate_total(queries, answers) == pytest.approx(42.0)

    def test_partial_coverage_row_is_not_total_like(self):
        # A row of 2s over half the cells has the right sum but not the right
        # squared sum; it must not be mistaken for a total query.
        row = np.zeros(8)
        row[:4] = 2.0
        queries = DenseMatrix(np.vstack([np.eye(8), row]))
        answers = np.concatenate([np.full(8, 1.0), [64.0]])
        assert estimate_total(queries, answers) == pytest.approx(64.0)  # max fallback

    def test_fallback_to_max_answer(self):
        queries = Identity(6)
        answers = np.array([1.0, -9.0, 2.0, 0.0, 3.0, 1.0])
        assert estimate_total(queries, answers) == pytest.approx(9.0)

    def test_fallback_floor_of_one(self):
        assert estimate_total(Identity(3), np.full(3, 0.25)) == 1.0

    def test_negative_noisy_total_floored(self):
        # A heavily-noised total row can come back negative; the estimate must
        # keep the same floor as the fallback or MW degenerates to NaN.
        queries = VStack([Identity(4), Total(4)])
        answers = np.concatenate([np.full(4, 2.0), [-30.0]])
        assert estimate_total(queries, answers) == 1.0
        result = multiplicative_weights(queries, answers, iterations=5)
        assert np.all(np.isfinite(result.x_hat))


class TestExpectedErrorEngine:
    @staticmethod
    def _per_row_pinv(workload, strategy, epsilon=1.0):
        """The seed's formula: a fresh pseudo-inverse for every workload row."""
        A = strategy.dense()
        gram_pinv = np.linalg.pinv(A.T @ A)
        sensitivity = float(np.abs(A).sum(axis=0).max())
        W = workload.dense()
        return float(
            sum(
                2.0 * sensitivity**2 / epsilon**2 * float(q @ gram_pinv @ q)
                for q in W
            )
        )

    @pytest.mark.parametrize(
        "workload,strategy",
        [
            (Prefix(32), Identity(32)),
            (Prefix(32), HierarchicalQueries(32)),
            (RangeQueries(24, [(0, 11), (3, 20), (7, 7)]), HierarchicalQueries(24)),
            (HierarchicalQueries(16), Prefix(16)),
        ],
    )
    def test_matches_per_row_pinv_formula(self, workload, strategy):
        assert expected_workload_error(workload, strategy, epsilon=0.7) == pytest.approx(
            self._per_row_pinv(workload, strategy, epsilon=0.7), rel=1e-8
        )

    def test_rank_deficient_strategy_matches_pinv(self):
        # A strategy that never observes cell 3: the Gram is singular and the
        # engine must fall back to the minimum-norm (pseudo-inverse) solve.
        rows = np.zeros((3, 4))
        rows[0, 0] = rows[1, 1] = rows[2, 2] = 1.0
        strategy = DenseMatrix(rows)
        workload = DenseMatrix(np.eye(4)[:3])  # queries within the observed span
        assert expected_workload_error(workload, strategy) == pytest.approx(
            self._per_row_pinv(workload, strategy), rel=1e-8
        )

    def test_query_error_is_thin_wrapper(self):
        q = np.zeros(16)
        q[2:9] = 1.0
        strategy = HierarchicalQueries(16)
        assert expected_query_error(q, strategy, epsilon=2.0) == pytest.approx(
            expected_workload_error(DenseMatrix(q.reshape(1, -1)), strategy, epsilon=2.0)
        )

    def test_query_error_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            expected_query_error(np.eye(3), Identity(3))

    def test_domain_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            expected_workload_error(Prefix(8), Identity(9))

    def test_sparse_gram_route(self):
        # A disjoint-partition strategy keeps a sparse Gram end-to-end; the
        # result must still match the dense pinv formula.
        from repro.matrix import ReductionMatrix

        strategy = VStack([ReductionMatrix(np.arange(24) // 4), Identity(24)])
        workload = RangeQueries(24, [(0, 23), (4, 9), (10, 10)])
        assert expected_workload_error(workload, strategy) == pytest.approx(
            self._per_row_pinv(workload, strategy), rel=1e-8
        )

    def test_solve_falls_back_to_columns_for_1d_only_lu(self):
        # umfpack-backed factorized() solves reject 2-D right-hand sides;
        # NormalEquations.solve must fall back to one solve per column.
        from scipy import sparse as sp
        from scipy.sparse.linalg import factorized

        from repro.operators.inference import NormalEquations

        gram = sp.identity(5, format="csc") * 2.0
        dense_lu = factorized(gram)

        def one_dimensional_lu(rhs):
            if np.asarray(rhs).ndim != 1:
                raise ValueError("only 1-D right-hand sides supported")
            return dense_lu(rhs)

        normal = NormalEquations(gram.tocsr(), cho=None, lu=one_dimensional_lu)
        rhs = np.arange(15.0).reshape(5, 3)
        assert np.allclose(normal.solve(rhs), rhs / 2.0)

    def test_blocked_trace_covers_all_rows(self, monkeypatch):
        from repro.analysis import error as error_module

        monkeypatch.setattr(error_module, "_ERROR_ROW_BLOCK", 3)
        workload = Prefix(10)
        strategy = Identity(10)
        assert expected_workload_error(workload, strategy) == pytest.approx(
            self._per_row_pinv(workload, strategy), rel=1e-8
        )
