"""Tests for the budget auditing report."""

import numpy as np
import pytest

from repro.matrix import Identity, ReductionMatrix, Total
from repro.private import audit, protect
from tests.conftest import make_vector_relation


@pytest.fixture
def audited_source():
    x = np.arange(24.0)
    source = protect(make_vector_relation(x), 1.0, seed=0)
    vector = source.vectorize()
    vector.vector_laplace(Total(24), 0.25)
    pieces = vector.split_by_partition(ReductionMatrix(np.arange(24) % 2))
    for piece in pieces:
        piece.vector_laplace(Identity(piece.domain_size), 0.5)
    return source


class TestBudgetAudit:
    def test_totals_match_kernel(self, audited_source):
        report = audit(audited_source)
        assert report.epsilon_total == 1.0
        assert report.consumed_at_root == pytest.approx(0.75)
        assert report.remaining == pytest.approx(0.25)

    def test_counts_measurements(self, audited_source):
        report = audit(audited_source)
        assert report.num_measurements == 3  # one Total + one Identity per split piece

    def test_sources_include_lineage(self, audited_source):
        report = audit(audited_source)
        names = {source.name for source in report.sources}
        assert "root" in names
        # The vectorised source and both split children appear.
        assert any(name.startswith("vector") for name in names)
        assert sum(name.startswith("split") for name in names) == 2

    def test_text_rendering(self, audited_source):
        text = audit(audited_source).to_text()
        assert "global budget" in text
        assert "VectorLaplace" in text
        assert "0.75" in text

    def test_stability_reported(self):
        relation_source = protect(make_vector_relation(np.arange(6.0)), 1.0, seed=1)
        groups = relation_source.group_by("v")
        any_group = next(iter(groups.values()))
        any_group.vectorize().vector_laplace(Identity(6), 0.1)
        report = audit(relation_source)
        stabilities = {s.name: s.cumulative_stability for s in report.sources}
        assert any(value == pytest.approx(2.0) for value in stabilities.values())
