"""Unit tests for the protected kernel and client handles."""

import numpy as np
import pytest

from repro.dataset import Attribute, Relation, Schema
from repro.matrix import Identity, ReductionMatrix, Total
from repro.private import (
    BudgetExceededError,
    InvalidTransformationError,
    ProtectedKernel,
    UnknownSourceError,
    protect,
)


@pytest.fixture
def relation():
    schema = Schema.build([Attribute("a", 4), Attribute("b", 3)])
    rng = np.random.default_rng(0)
    records = np.column_stack([rng.integers(0, 4, 200), rng.integers(0, 3, 200)])
    return Relation(schema, records)


class TestKernelBasics:
    def test_initial_state(self, relation):
        kernel = ProtectedKernel(relation, epsilon_total=1.0, seed=0)
        assert kernel.budget_consumed() == 0.0
        assert kernel.budget_remaining() == 1.0
        assert kernel.source_kind("root") == "table"
        assert kernel.domain_size("root") == 12

    def test_unknown_source(self, relation):
        kernel = ProtectedKernel(relation, 1.0)
        with pytest.raises(UnknownSourceError):
            kernel.domain_size("nope")

    def test_vectorize_creates_vector_source(self, relation):
        kernel = ProtectedKernel(relation, 1.0)
        name = kernel.transform_vectorize("root")
        assert kernel.source_kind(name) == "vector"
        assert kernel.domain_size(name) == 12

    def test_vector_ops_rejected_on_tables(self, relation):
        kernel = ProtectedKernel(relation, 1.0, seed=0)
        with pytest.raises(InvalidTransformationError):
            kernel.measure_vector_laplace("root", Identity(12), 0.1)

    def test_table_ops_rejected_on_vectors(self, relation):
        kernel = ProtectedKernel(relation, 1.0, seed=0)
        vec = kernel.transform_vectorize("root")
        with pytest.raises(InvalidTransformationError):
            kernel.transform_where(vec, {"a": 1})

    def test_measurement_spends_budget_and_records_history(self, relation):
        kernel = ProtectedKernel(relation, 1.0, seed=0)
        vec = kernel.transform_vectorize("root")
        kernel.measure_vector_laplace(vec, Identity(12), 0.25)
        assert kernel.budget_consumed() == pytest.approx(0.25)
        history = kernel.history()
        assert len(history) == 1
        assert history[0].operator == "VectorLaplace"
        assert history[0].epsilon == 0.25

    def test_budget_exceeded_raises(self, relation):
        kernel = ProtectedKernel(relation, 0.5, seed=0)
        vec = kernel.transform_vectorize("root")
        kernel.measure_vector_laplace(vec, Identity(12), 0.4)
        with pytest.raises(BudgetExceededError):
            kernel.measure_vector_laplace(vec, Identity(12), 0.2)
        # The failed request leaves the consumed budget unchanged.
        assert kernel.budget_consumed() == pytest.approx(0.4)

    def test_nonpositive_epsilon_rejected(self, relation):
        kernel = ProtectedKernel(relation, 1.0, seed=0)
        vec = kernel.transform_vectorize("root")
        with pytest.raises(ValueError):
            kernel.measure_vector_laplace(vec, Identity(12), 0.0)

    def test_query_matrix_shape_checked(self, relation):
        kernel = ProtectedKernel(relation, 1.0, seed=0)
        vec = kernel.transform_vectorize("root")
        with pytest.raises(InvalidTransformationError):
            kernel.measure_vector_laplace(vec, Identity(5), 0.1)

    def test_noisy_count(self, relation):
        kernel = ProtectedKernel(relation, 1.0, seed=0)
        count = kernel.measure_noisy_count("root", 0.5)
        assert abs(count - len(relation)) < 100
        assert kernel.budget_consumed() == pytest.approx(0.5)

    def test_group_by_has_stability_two(self, relation):
        kernel = ProtectedKernel(relation, 1.0, seed=0)
        groups = kernel.transform_group_by("root", "b")
        any_group = next(iter(groups.values()))
        assert kernel.cumulative_stability(any_group) == 2.0


class TestNoiseCalibration:
    def test_identity_noise_scale(self, relation):
        kernel = ProtectedKernel(relation, 100.0, seed=1)
        vec = kernel.transform_vectorize("root")
        answers = kernel.measure_vector_laplace(vec, Identity(12), 50.0)
        truth = relation.vectorize()
        # With epsilon=50 and sensitivity 1, noise is tiny.
        assert np.allclose(answers, truth, atol=1.5)

    def test_sensitivity_scales_noise(self, relation):
        # A matrix with L1 norm k inflates the noise scale by k; check the
        # recorded scale rather than sampling statistics.
        kernel = ProtectedKernel(relation, 10.0, seed=2)
        vec = kernel.transform_vectorize("root")
        from repro.matrix import Ones

        kernel.measure_vector_laplace(vec, Ones(5, 12), 1.0)
        assert kernel.history()[-1].noise_scale == pytest.approx(5.0)

    def test_seed_reproducibility(self, relation):
        a = ProtectedKernel(relation, 1.0, seed=7)
        b = ProtectedKernel(relation, 1.0, seed=7)
        va, vb = a.transform_vectorize("root"), b.transform_vectorize("root")
        ya = a.measure_vector_laplace(va, Identity(12), 0.5)
        yb = b.measure_vector_laplace(vb, Identity(12), 0.5)
        assert np.array_equal(ya, yb)


class TestProtectedDataSource:
    def test_pipeline(self, relation):
        source = protect(relation, 1.0, seed=0)
        vector = source.where({"a": (0, 1)}).select(["b"]).vectorize()
        assert vector.domain_size == 3
        answers = vector.vector_laplace(Identity(3), 0.5)
        assert answers.shape == (3,)
        assert source.budget_consumed() == pytest.approx(0.5)

    def test_split_by_partition_parallel_composition(self, relation):
        source = protect(relation, 1.0, seed=0)
        vector = source.vectorize()
        partition = ReductionMatrix(np.arange(12) % 3)
        pieces = vector.split_by_partition(partition)
        assert len(pieces) == 3
        for piece in pieces:
            piece.vector_laplace(Identity(piece.domain_size), 0.7)
        # Parallel composition: the root pays only the maximum.
        assert source.budget_consumed() == pytest.approx(0.7)

    def test_reduce_by_partition(self, relation):
        source = protect(relation, 10.0, seed=0)
        vector = source.vectorize()
        partition = ReductionMatrix(np.arange(12) % 4)
        reduced = vector.reduce_by_partition(partition)
        assert reduced.domain_size == 4
        noisy = reduced.vector_laplace(Identity(4), 5.0)
        assert np.isclose(noisy.sum(), len(relation), atol=10)

    def test_group_by_handles(self, relation):
        source = protect(relation, 1.0, seed=0)
        groups = source.group_by("b")
        assert set(groups) <= {0, 1, 2}

    def test_split_by_attribute(self, relation):
        source = protect(relation, 1.0, seed=0)
        pieces = source.split_by_attribute("b")
        # Each piece can be measured with the full budget (parallel composition).
        for piece in pieces.values():
            piece.vectorize().vector_laplace(Identity(12), 0.9)
        assert source.budget_consumed() == pytest.approx(0.9)

    def test_exponential_mechanism_prefers_high_scores(self, relation):
        source = protect(relation, 100.0, seed=0).vectorize()

        def scores(x):
            return np.array([0.0, 0.0, 100.0])

        choices = [
            source.exponential_mechanism(scores, 3, epsilon=5.0, score_sensitivity=1.0)
            for _ in range(10)
        ]
        assert all(c == 2 for c in choices)

    def test_laplace_scalar(self, relation):
        source = protect(relation, 10.0, seed=0).vectorize()
        value = source.laplace_scalar(lambda x: float(x.sum()), sensitivity=1.0, epsilon=5.0)
        assert abs(value - len(relation)) < 20

    def test_schema_metadata(self, relation):
        source = protect(relation, 1.0)
        assert source.schema.names == ("a", "b")
        assert source.kind == "table"
