"""Tests of the sparse-aware Gram/solve engine and strategy-key protocol.

Covers the PR-3 tentpole: ``gram_sparse``/``gram_auto``/``strategy_key``
across the full matrix hierarchy, the sparse branch of the normal-equations
inference artifact, and the scheduler-level Gram sharing that reuses one
factorisation across tenants.  Also pins the satellite bugfixes: weighted
residual-norm units, the all-zero-weights guard, the structural (dense-free)
``sparse()`` builders, and the rejected-request audit event.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse as sp

from repro.matrix import (
    DenseMatrix,
    ExpansionMatrix,
    HaarWavelet,
    HierarchicalQueries,
    HStack,
    Identity,
    Kronecker,
    LinearQueryMatrix,
    Ones,
    Prefix,
    Product,
    RangeQueries,
    RangeQueries2D,
    ReductionMatrix,
    SparseMatrix,
    Suffix,
    Total,
    VStack,
    Weighted,
    all_kway_marginals,
)
from repro.operators.inference import (
    build_normal_equations,
    least_squares,
    least_squares_from_parts,
)
from repro.operators.inference.least_squares import NormalEquations
from repro.service import ArtifactCache


def _rng(seed=0):
    return np.random.default_rng(seed)


def _reduction(n=12, groups_of=3, seed=3):
    groups = _rng(seed).integers(0, n // groups_of, size=n)
    groups[: n // groups_of] = np.arange(n // groups_of)  # every group non-empty
    return ReductionMatrix(groups)


def _catalog() -> list[tuple[str, LinearQueryMatrix]]:
    """One instance of every matrix class, plus nested compositions."""
    rng = _rng(42)
    red = _reduction()
    expansion = red.pseudo_inverse()
    sparse_mat = SparseMatrix(sp.random(9, 6, density=0.4, random_state=7, format="csr"))
    ranges = RangeQueries(8, [(0, 3), (2, 7), (5, 5), (0, 7)])
    return [
        ("identity", Identity(7)),
        ("ones", Ones(3, 5)),
        ("total", Total(6)),
        ("prefix", Prefix(9)),
        ("suffix", Suffix(9)),
        ("haar", HaarWavelet(8)),
        ("dense", DenseMatrix(rng.normal(size=(6, 4)))),
        ("sparse", sparse_mat),
        ("reduction", red),
        ("expansion", expansion),
        ("squared_expansion", expansion.square()),
        ("transpose", Prefix(6).T),
        ("weighted", Weighted(Prefix(5), -1.5)),
        ("vstack", VStack([Identity(8), ranges])),
        ("hstack", HStack([Identity(4), Ones(4, 3)])),
        ("product", Product(sparse_mat, DenseMatrix(rng.normal(size=(6, 5))))),
        ("kronecker", Kronecker([Prefix(3), Identity(2), Total(2)])),
        ("range_queries", ranges),
        ("hierarchical", HierarchicalQueries(8)),
        ("ranges_2d", RangeQueries2D(4, 4, [(0, 1, 0, 3), (2, 3, 1, 2), (0, 3, 0, 0)])),
        ("marginals", all_kway_marginals((2, 3, 2), 2)),
        (
            "nested",
            VStack(
                [
                    Weighted(Kronecker([Identity(3), Total(4)]), 2.0),
                    Product(Ones(5, 3), ReductionMatrix([0, 0, 1, 1, 1, 2, 2, 0, 1, 2, 1, 0])),
                ]
            ),
        ),
        ("expansion_product", Product(ranges, ExpansionMatrix(_reduction(8, 2, 5)))),
    ]


@pytest.mark.parametrize("name,matrix", _catalog(), ids=[n for n, _ in _catalog()])
class TestGramProtocol:
    def test_gram_sparse_matches_dense(self, name, matrix):
        dense = matrix.dense()
        expected = dense.T @ dense
        got = matrix.gram_sparse()
        assert sp.issparse(got)
        np.testing.assert_allclose(got.toarray(), expected, atol=1e-9)

    def test_gram_dense_matches_explicit(self, name, matrix):
        dense = matrix.dense()
        np.testing.assert_allclose(matrix.gram_dense(), dense.T @ dense, atol=1e-9)

    def test_gram_nnz_estimate_is_an_upper_bound(self, name, matrix):
        gram = matrix.gram_sparse()
        gram.eliminate_zeros()
        assert matrix.gram_nnz_estimate() >= gram.nnz

    def test_gram_auto_matches_dense_either_way(self, name, matrix):
        gram = matrix.gram_auto()
        dense = matrix.dense()
        arr = gram.toarray() if sp.issparse(gram) else gram
        np.testing.assert_allclose(arr, dense.T @ dense, atol=1e-9)

    def test_strategy_key_is_hashable_and_stable(self, name, matrix):
        key = matrix.strategy_key()
        hash(key)
        assert key == matrix.strategy_key()

    def test_sparse_matches_dense(self, name, matrix):
        # The structural sparse() builders must agree with dense().
        np.testing.assert_allclose(matrix.sparse().toarray(), matrix.dense(), atol=1e-12)


class TestGramAutoSelection:
    def test_disjoint_partition_strategy_is_sparse(self):
        strategy = VStack([_reduction(64, 8), Identity(64)])
        assert strategy.gram_nnz_estimate() < 0.25 * 64 * 64
        assert sp.issparse(strategy.gram_auto())

    def test_dense_structures_stay_dense(self):
        assert isinstance(Prefix(16).gram_auto(), np.ndarray)
        assert isinstance(HierarchicalQueries(16).gram_auto(), np.ndarray)

    def test_identity_and_expansion_closed_forms(self):
        assert Identity(10).gram_sparse().nnz == 10
        red = _reduction()
        expansion = red.pseudo_inverse()
        gram = expansion.gram_sparse()
        # diag(1/|g|): exactly p entries.
        assert gram.nnz == red.num_groups
        np.testing.assert_allclose(gram.diagonal(), 1.0 / red.group_sizes)

    def test_kronecker_gram_factorises(self):
        kron = Kronecker([Identity(4), _reduction(6, 2, 9)])
        assert sp.issparse(kron.gram_auto())
        dense = kron.dense()
        np.testing.assert_allclose(kron.gram_sparse().toarray(), dense.T @ dense, atol=1e-9)


class TestStrategyKeys:
    def test_equal_constructions_share_keys(self):
        assert HierarchicalQueries(32).strategy_key() == HierarchicalQueries(32).strategy_key()
        assert Identity(5).strategy_key() == Identity(5).strategy_key()
        groups = [0, 1, 1, 2, 0, 2]
        assert (
            ReductionMatrix(groups).strategy_key() == ReductionMatrix(groups).strategy_key()
        )
        intervals = [(0, 3), (1, 2)]
        assert (
            RangeQueries(6, intervals).strategy_key()
            == RangeQueries(6, intervals).strategy_key()
        )

    def test_different_constructions_differ(self):
        assert Identity(5).strategy_key() != Identity(6).strategy_key()
        assert HierarchicalQueries(32).strategy_key() != HierarchicalQueries(32, 4).strategy_key()
        assert (
            ReductionMatrix([0, 0, 1]).strategy_key()
            != ReductionMatrix([0, 1, 1]).strategy_key()
        )
        assert (
            Weighted(Prefix(4), 2.0).strategy_key() != Weighted(Prefix(4), 3.0).strategy_key()
        )

    def test_composite_keys_recurse(self):
        a = VStack([Identity(4), Prefix(4)]).strategy_key()
        b = VStack([Identity(4), Prefix(4)]).strategy_key()
        c = VStack([Identity(4), Suffix(4)]).strategy_key()
        assert a == b != c

    def test_raw_fallback_digests_content(self):
        # A class with no override digests its materialised content.
        class Custom(LinearQueryMatrix):
            def __init__(self, array):
                self.array = np.asarray(array, dtype=np.float64)
                self.shape = self.array.shape

            def matvec(self, v):
                return self.array @ v

            def rmatvec(self, v):
                return self.array.T @ v

        one = Custom([[1.0, 2.0], [0.0, 1.0]])
        same = Custom([[1.0, 2.0], [0.0, 1.0]])
        other = Custom([[1.0, 2.0], [0.0, 3.0]])
        assert one.strategy_key() == same.strategy_key()
        assert one.strategy_key() != other.strategy_key()


class TestNormalEquationsSparse:
    def test_sparse_branch_solves_like_dense(self):
        strategy = VStack([_reduction(32, 4, 1), Identity(32)])
        rng = _rng(11)
        answers = strategy.matvec(rng.normal(size=32)) + rng.normal(size=strategy.shape[0])
        sparse_ne = build_normal_equations(strategy, prefer="sparse")
        dense_ne = build_normal_equations(strategy, prefer="dense")
        assert sparse_ne.is_sparse and not dense_ne.is_sparse
        rhs = strategy.rmatvec(answers)
        np.testing.assert_allclose(sparse_ne.solve(rhs), dense_ne.solve(rhs), atol=1e-8)

    def test_auto_prefers_sparse_for_partition_strategy(self):
        strategy = VStack([_reduction(32, 4, 2), Identity(32)])
        assert build_normal_equations(strategy).is_sparse

    def test_singular_sparse_gram_falls_back_to_pseudo_inverse(self):
        # A measurement matrix with an unmeasured cell: the Gram has a zero
        # row/column, the sparse LU is singular, and solves fall back to the
        # minimum-norm least-squares solution.
        mat = sp.diags(np.array([1.0, 2.0, 0.0, 1.0, 3.0, 1.0, 1.0, 1.0, 1.0, 1.0]))
        strategy = SparseMatrix(mat.tocsr())
        ne = build_normal_equations(strategy, prefer="sparse")
        assert ne.is_sparse and ne.lu is None and ne.cho is None
        answers = np.ones(10)
        x_hat = ne.solve(strategy.rmatvec(answers))
        gram = ne.gram.toarray()
        np.testing.assert_allclose(gram @ x_hat, strategy.rmatvec(answers), atol=1e-9)

    def test_least_squares_normal_on_sparse_gram_strategy(self):
        strategy = VStack([_reduction(64, 8, 4), Identity(64)])
        rng = _rng(21)
        x_true = rng.normal(size=64)
        answers = strategy.matvec(x_true)
        result = least_squares(strategy, answers, method="normal")
        np.testing.assert_allclose(result.x_hat, x_true, atol=1e-8)

    def test_normal_equations_dataclass_is_backward_compatible(self):
        ne = NormalEquations(np.eye(3), cho=None)
        np.testing.assert_allclose(ne.solve(np.ones(3)), np.ones(3))


class TestWeightedResidualUnits:
    def test_uniform_weights_scale_residual_consistently(self):
        queries = HierarchicalQueries(16)
        rng = _rng(5)
        answers = queries.matvec(rng.normal(size=16)) + rng.normal(size=queries.shape[0])
        base = least_squares(queries, answers, method="normal")
        doubled = least_squares(
            queries, answers, weights=np.full(queries.shape[0], 2.0), method="normal"
        )
        # Same minimiser, but the residual is reported in weighted units.
        np.testing.assert_allclose(doubled.x_hat, base.x_hat, atol=1e-8)
        assert doubled.residual_norm == pytest.approx(2.0 * base.residual_norm, rel=1e-8)

    def test_uniform_and_nearly_uniform_weights_agree(self):
        # Regression: before the fix, exactly-uniform weights skipped the
        # scaling so residual_norm jumped by the weight factor relative to an
        # epsilon-perturbed (non-uniform) weight vector.
        queries = Prefix(12)
        rng = _rng(6)
        answers = queries.matvec(rng.normal(size=12)) + rng.normal(size=12)
        uniform = np.full(12, 3.0)
        nearly = uniform.copy()
        nearly[0] *= 1.0 + 1e-12
        r_uniform = least_squares(queries, answers, weights=uniform, method="normal")
        r_nearly = least_squares(queries, answers, weights=nearly, method="normal")
        assert r_uniform.residual_norm == pytest.approx(r_nearly.residual_norm, rel=1e-6)

    def test_from_parts_units_match_across_scale_splits(self):
        queries = HierarchicalQueries(8)
        rng = _rng(7)
        y1 = queries.matvec(rng.normal(size=8)) + rng.normal(size=queries.shape[0])
        y2 = queries.matvec(rng.normal(size=8)) + rng.normal(size=queries.shape[0])
        equal = least_squares_from_parts(
            [(queries, y1, 2.0), (queries, y2, 2.0)], method="normal"
        )
        perturbed = least_squares_from_parts(
            [(queries, y1, 2.0), (queries, y2, 2.0 * (1.0 + 1e-12))], method="normal"
        )
        assert equal.residual_norm == pytest.approx(perturbed.residual_norm, rel=1e-6)

    def test_all_zero_weights_rejected(self):
        queries = Prefix(4)
        answers = np.ones(4)
        with pytest.raises(ValueError, match="all zero"):
            least_squares(queries, answers, weights=np.zeros(4))

    def test_uniform_negative_weights_keep_residual_nonnegative(self):
        queries = Prefix(6)
        rng = _rng(13)
        answers = queries.matvec(rng.normal(size=6)) + rng.normal(size=6)
        positive = least_squares(queries, answers, weights=np.full(6, 2.0), method="normal")
        negative = least_squares(queries, answers, weights=np.full(6, -2.0), method="normal")
        assert negative.residual_norm >= 0.0
        assert negative.residual_norm == pytest.approx(positive.residual_norm, rel=1e-9)
        np.testing.assert_allclose(negative.x_hat, positive.x_hat, atol=1e-9)

    def test_nonuniform_weights_keep_the_sparse_gram_path(self):
        # Row weighting is a diagonal left factor: the Gram's sparsity
        # pattern is unchanged, so the weighted system must still factorise
        # sparse (Product.gram_nnz_estimate sees through the diagonal).
        strategy = VStack([_reduction(64, 8, 6), Identity(64)])
        rng = _rng(14)
        weights = rng.uniform(0.5, 2.0, size=strategy.shape[0])
        weighted = Product(SparseMatrix(sp.diags(weights)), strategy)
        assert weighted.gram_nnz_estimate() == strategy.gram_nnz_estimate()
        assert build_normal_equations(weighted).is_sparse
        x_true = rng.normal(size=64)
        answers = strategy.matvec(x_true)
        result = least_squares(strategy, answers, weights=weights, method="normal")
        np.testing.assert_allclose(result.x_hat, x_true, atol=1e-8)

    def test_lsmr_weighted_matches_normal_units(self):
        queries = HierarchicalQueries(8)
        rng = _rng(8)
        answers = queries.matvec(rng.normal(size=8)) + rng.normal(size=queries.shape[0])
        weights = np.full(queries.shape[0], 4.0)
        lsmr = least_squares(queries, answers, weights=weights, method="lsmr")
        normal = least_squares(queries, answers, weights=weights, method="normal")
        assert lsmr.residual_norm == pytest.approx(normal.residual_norm, rel=1e-5)


class TestAutoGramKeys:
    def test_gram_cache_without_explicit_key_shares_by_strategy(self):
        cache = ArtifactCache()
        rng = _rng(9)
        for trial in range(3):
            queries = HierarchicalQueries(32)  # rebuilt every time, same key
            answers = queries.matvec(rng.normal(size=32))
            least_squares(queries, answers, method="normal", gram_cache=cache)
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 2

    def test_nonuniform_weights_change_the_derived_key(self):
        cache = ArtifactCache()
        queries = Prefix(8)
        answers = np.arange(8.0)
        least_squares(queries, answers, method="normal", gram_cache=cache)
        weights = np.ones(8)
        weights[0] = 3.0
        least_squares(queries, answers, weights=weights, method="normal", gram_cache=cache)
        # Non-uniform weights produce a different weighted strategy → two entries.
        assert cache.stats["misses"] == 2

    def test_uniform_scales_share_one_gram_artifact(self):
        # The minimiser is invariant under a uniform row scaling, so requests
        # at different noise scales (uniform weights) must reuse one cached
        # factorisation instead of building an n x n artifact per scale.
        cache = ArtifactCache()
        queries = Prefix(8)
        answers = np.arange(8.0)
        for scale in (1.0, 2.0, 5.0):
            result = least_squares(
                queries,
                answers,
                weights=np.full(8, scale),
                method="normal",
                gram_cache=cache,
            )
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 2

    def test_auto_method_relaxes_aspect_when_cache_present(self):
        # A square strategy: auto stays with LSMR stand-alone but switches to
        # the shared normal equations when a Gram cache is available.
        queries = Prefix(16)
        answers = np.arange(16.0)
        without = least_squares(queries, answers, method="auto")
        assert without.iterations > 1  # LSMR path
        cache = ArtifactCache()
        with_cache = least_squares(queries, answers, method="auto", gram_cache=cache)
        assert with_cache.iterations == 1  # normal path
        assert len(cache) == 1
        np.testing.assert_allclose(with_cache.x_hat, without.x_hat, atol=1e-6)
