"""Property tests for the vectorized matmat/rmatmat primitive protocol.

Every matrix class in the registry below must satisfy, for random 2-D blocks:

* ``matmat(B)`` equals the column-stacked ``matvec`` results,
* ``rmatmat(B)`` equals the column-stacked ``rmatvec`` results,
* ``rows(indices)`` equals stacking ``row(i)`` per index,
* ``dense()`` is consistent with matvec on basis vectors,

including nested Kronecker / VStack / Product compositions.  The protocol's
shared validation (float64 output, 1-D rejection, shape checks) is asserted
once against representative classes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix import (
    DenseMatrix,
    HaarWavelet,
    HierarchicalQueries,
    HStack,
    Identity,
    Kronecker,
    Ones,
    Prefix,
    Product,
    RangeQueries,
    RangeQueries2D,
    ReductionMatrix,
    SparseMatrix,
    Suffix,
    Total,
    VStack,
    Weighted,
)
from repro.matrix.base import LinearQueryMatrix


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def _dense_example(m: int, n: int, seed: int = 7) -> DenseMatrix:
    return DenseMatrix(_rng(seed).normal(size=(m, n)))


def _sparse_example(m: int, n: int, seed: int = 11) -> SparseMatrix:
    arr = _rng(seed).normal(size=(m, n))
    arr[np.abs(arr) < 0.8] = 0.0
    return SparseMatrix(arr)


def matrix_registry() -> list[tuple[str, LinearQueryMatrix]]:
    """One representative instance per matrix class, plus nested compositions."""
    reduction = ReductionMatrix(np.array([0, 0, 1, 2, 2, 2, 1, 0]))
    entries: list[tuple[str, LinearQueryMatrix]] = [
        ("identity", Identity(9)),
        ("ones", Ones(4, 6)),
        ("total", Total(5)),
        ("prefix", Prefix(8)),
        ("suffix", Suffix(8)),
        ("wavelet", HaarWavelet(16)),
        ("dense", _dense_example(5, 7)),
        ("sparse", _sparse_example(6, 9)),
        ("transpose", Prefix(6).T),
        ("weighted", Weighted(Prefix(7), -2.5)),
        ("vstack", VStack([Identity(6), Prefix(6), _dense_example(3, 6)])),
        ("hstack", HStack([Identity(4), _dense_example(4, 3)])),
        ("product", Product(_dense_example(4, 6), Prefix(6))),
        ("kronecker", Kronecker([Prefix(3), Identity(4)])),
        ("ranges", RangeQueries(10, [(0, 3), (2, 7), (9, 9)])),
        ("ranges2d", RangeQueries2D(3, 4, [(0, 1, 1, 2), (2, 2, 0, 3)])),
        ("hierarchical", HierarchicalQueries(9, branching=3)),
        ("reduction", reduction),
        ("expansion", reduction.pseudo_inverse()),
        ("expansion_sq", reduction.pseudo_inverse().square()),
        (
            "kron_of_stack",
            Kronecker([VStack([Total(3), Identity(3)]), Prefix(4)]),
        ),
        (
            "stack_of_kron",
            VStack(
                [
                    Kronecker([Identity(2), Prefix(5)]),
                    Kronecker([Total(2), Identity(5)]),
                    _dense_example(4, 10),
                ]
            ),
        ),
        (
            "product_of_kron",
            Product(
                Kronecker([Prefix(2), Identity(4)]),
                Kronecker([Identity(2), Suffix(4)]),
            ),
        ),
        (
            "nested_kron",
            Kronecker([Kronecker([Prefix(2), Identity(3)]), Total(4)]),
        ),
        (
            "weighted_stack_product",
            Weighted(Product(VStack([Identity(5), Prefix(5)]), _dense_example(5, 4)), 0.5),
        ),
    ]
    return entries


REGISTRY = matrix_registry()
IDS = [name for name, _ in REGISTRY]
MATRICES = [matrix for _, matrix in REGISTRY]


@pytest.fixture(params=MATRICES, ids=IDS)
def matrix(request) -> LinearQueryMatrix:
    return request.param


class TestMatmatEqualsColumnStackedMatvec:
    def test_matmat(self, matrix):
        B = _rng(1).normal(size=(matrix.shape[1], 5))
        expected = np.column_stack([matrix.matvec(B[:, j]) for j in range(B.shape[1])])
        np.testing.assert_allclose(matrix.matmat(B), expected, atol=1e-10)

    def test_rmatmat(self, matrix):
        B = _rng(2).normal(size=(matrix.shape[0], 4))
        expected = np.column_stack([matrix.rmatvec(B[:, j]) for j in range(B.shape[1])])
        np.testing.assert_allclose(matrix.rmatmat(B), expected, atol=1e-10)

    def test_single_column(self, matrix):
        v = _rng(3).normal(size=matrix.shape[1])
        np.testing.assert_allclose(
            matrix.matmat(v.reshape(-1, 1)).ravel(), matrix.matvec(v), atol=1e-10
        )

    def test_transpose_view_consistency(self, matrix):
        B = _rng(4).normal(size=(matrix.shape[0], 3))
        np.testing.assert_allclose(matrix.T.matmat(B), matrix.rmatmat(B), atol=1e-10)


class TestDerivedOperations:
    def test_dense_matches_matvec_on_basis(self, matrix):
        dense = matrix.dense()
        assert dense.shape == matrix.shape
        for j in range(matrix.shape[1]):
            e = np.zeros(matrix.shape[1])
            e[j] = 1.0
            np.testing.assert_allclose(dense[:, j], matrix.matvec(e), atol=1e-10)

    def test_rows_matches_row(self, matrix):
        indices = [0, matrix.shape[0] - 1, matrix.shape[0] // 2]
        batched = matrix.rows(indices)
        expected = np.vstack([matrix.row(i) for i in indices])
        np.testing.assert_allclose(batched, expected, atol=1e-10)

    def test_rows_blocked_extraction(self, matrix):
        # Force multiple blocks to exercise the block loop.
        indices = np.arange(matrix.shape[0])
        batched = matrix.rows(indices, block_size=2)
        np.testing.assert_allclose(batched, matrix.dense(), atol=1e-10)

    def test_rows_scratch_cap_shrinks_block(self, monkeypatch):
        # With a tiny scratch budget the block width collapses to 1 and the
        # extraction must still be correct (and never allocate a wide basis).
        from repro.matrix import base as base_mod

        monkeypatch.setattr(base_mod, "_ROWS_SCRATCH_CELLS", 8)
        matrix = HierarchicalQueries(8)
        indices = np.arange(matrix.shape[0])
        np.testing.assert_allclose(
            matrix.rows(indices, block_size=256), matrix.dense(), atol=1e-10
        )

    def test_gram_dense(self, matrix):
        dense = matrix.dense()
        np.testing.assert_allclose(
            matrix.gram_dense(), dense.T @ dense, atol=1e-8
        )

    def test_gram_dense_blocked(self, matrix):
        dense = matrix.dense()
        got = LinearQueryMatrix.gram_dense(matrix, block_size=3)
        np.testing.assert_allclose(got, dense.T @ dense, atol=1e-8)

    def test_linear_operator_matmat(self, matrix):
        op = matrix.as_linear_operator()
        B = _rng(5).normal(size=(matrix.shape[1], 3))
        np.testing.assert_allclose(op.matmat(B), matrix.dense() @ B, atol=1e-8)

    def test_rmatmul_dunder(self, matrix):
        B = _rng(6).normal(size=(2, matrix.shape[0]))
        np.testing.assert_allclose(B @ matrix, B @ matrix.dense(), atol=1e-8)


class TestOperandValidation:
    @pytest.mark.parametrize(
        "example",
        [Identity(4), Prefix(4), _dense_example(4, 4), Kronecker([Prefix(2), Identity(2)])],
        ids=["identity", "prefix", "dense", "kron"],
    )
    def test_rejects_1d_operand(self, example):
        with pytest.raises(ValueError, match="matvec"):
            example.matmat(np.ones(4))
        with pytest.raises(ValueError, match="matvec"):
            example.rmatmat(np.ones(4))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            Prefix(4).matmat(np.ones((5, 2)))
        with pytest.raises(ValueError, match="dimension mismatch"):
            Ones(3, 4).rmatmat(np.ones((4, 2)))

    def test_output_is_float64(self, matrix):
        B = np.ones((matrix.shape[1], 2), dtype=np.int64)
        out = matrix.matmat(B)
        assert out.dtype == np.float64
        out_r = matrix.rmatmat(np.ones((matrix.shape[0], 2), dtype=np.int32))
        assert out_r.dtype == np.float64


class TestInferenceFastPaths:
    def _reference_mw(self, queries, answers, total, iterations=7):
        """The seed's row-at-a-time MW loop, kept as the equivalence oracle."""
        queries = queries if hasattr(queries, "row") else DenseMatrix(queries)
        n = queries.shape[1]
        x_hat = np.full(n, total / n)
        for _ in range(iterations):
            for i in range(queries.shape[0]):
                row = queries.row(i)
                estimate = float(row @ x_hat)
                error = answers[i] - estimate
                x_hat = x_hat * np.exp(row * error / (2.0 * total))
                x_hat *= total / x_hat.sum()
        return x_hat

    def test_mw_sequential_equivalent_to_seed(self):
        from repro.operators.inference import multiplicative_weights

        rng = _rng(42)
        queries = HierarchicalQueries(16)
        x_true = rng.integers(0, 20, size=16).astype(np.float64)
        answers = queries.matvec(x_true) + rng.normal(scale=0.5, size=queries.shape[0])
        total = float(x_true.sum())
        result = multiplicative_weights(queries, answers, total=total, iterations=7)
        expected = self._reference_mw(queries, answers, total, iterations=7)
        np.testing.assert_allclose(result.x_hat, expected, rtol=1e-9)

    def test_mw_sequential_equivalent_when_cache_disabled(self, monkeypatch):
        from repro.operators.inference import mult_weights

        monkeypatch.setattr(mult_weights, "_ROW_CACHE_CELLS", 0)
        rng = _rng(43)
        queries = RangeQueries(12, [(0, 5), (3, 9), (2, 2), (0, 11)])
        x_true = rng.integers(0, 10, size=12).astype(np.float64)
        answers = queries.matvec(x_true)
        total = float(x_true.sum())
        result = mult_weights.multiplicative_weights(
            queries, answers, total=total, iterations=5
        )
        expected = self._reference_mw(queries, answers, total, iterations=5)
        np.testing.assert_allclose(result.x_hat, expected, rtol=1e-9)

    def test_mw_batched_mode_converges(self):
        from repro.operators.inference import multiplicative_weights

        rng = _rng(44)
        queries = HierarchicalQueries(32)
        x_true = rng.integers(0, 30, size=32).astype(np.float64)
        answers = queries.matvec(x_true)
        result = multiplicative_weights(
            queries, answers, total=float(x_true.sum()), iterations=60, mode="batched"
        )
        assert result.residual_norm < 0.05 * np.linalg.norm(answers)

    def test_mw_unknown_mode_rejected(self):
        from repro.operators.inference import multiplicative_weights

        with pytest.raises(ValueError, match="mode"):
            multiplicative_weights(Identity(4), np.ones(4), mode="nope")

    def test_least_squares_normal_matches_lsmr(self):
        from repro.operators.inference import least_squares

        rng = _rng(45)
        queries = HierarchicalQueries(64)
        x_true = rng.normal(size=64)
        answers = queries.matvec(x_true) + rng.normal(scale=0.1, size=queries.shape[0])
        via_lsmr = least_squares(queries, answers, method="lsmr", tolerance=1e-12)
        via_normal = least_squares(queries, answers, method="normal")
        np.testing.assert_allclose(via_normal.x_hat, via_lsmr.x_hat, atol=1e-6)

    def test_least_squares_auto_picks_normal_for_tall_skinny(self):
        from repro.operators.inference import least_squares

        rng = _rng(46)
        # 32 cols, 126 rows: safely past the 2x tall-skinny aspect threshold.
        queries = VStack([HierarchicalQueries(32), HierarchicalQueries(32)])
        answers = queries.matvec(rng.normal(size=32))
        result = least_squares(queries, answers, method="auto")
        assert result.iterations == 1  # the normal/direct paths report one step

    def test_least_squares_normal_rank_deficient_falls_back(self):
        from repro.operators.inference import least_squares

        queries = DenseMatrix(np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]))
        answers = np.array([2.0, 4.0, 6.0])
        result = least_squares(queries, answers, method="normal")
        np.testing.assert_allclose(queries.matvec(result.x_hat), answers, atol=1e-8)

    def test_least_squares_gram_shared_through_artifact_cache(self):
        from repro.operators.inference import least_squares
        from repro.service import ArtifactCache

        rng = _rng(47)
        cache = ArtifactCache()
        queries = HierarchicalQueries(32)
        key = ("hierarchical", 32, 2)
        for trial in range(3):
            answers = queries.matvec(rng.normal(size=32))
            result = least_squares(
                queries, answers, method="normal", gram_cache=cache, gram_key=key
            )
            assert result.x_hat.shape == (32,)
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 2

    def test_artifact_cache_gram_convenience(self):
        from repro.service import ArtifactCache

        cache = ArtifactCache()
        queries = Prefix(16)
        first = cache.gram("prefix-16", queries)
        second = cache.gram("prefix-16", queries)
        assert first is second
        np.testing.assert_allclose(first, queries.dense().T @ queries.dense())

    def test_cache_gram_primes_least_squares_fast_path(self):
        # ArtifactCache.gram / .normal_equations and least_squares(gram_cache=)
        # must address one shared entry, not build the Gram twice.
        from repro.operators.inference import least_squares
        from repro.service import ArtifactCache

        cache = ArtifactCache()
        queries = HierarchicalQueries(16)
        cache.gram("h16", queries)
        answers = queries.matvec(np.arange(16.0))
        least_squares(queries, answers, method="normal", gram_cache=cache, gram_key="h16")
        assert cache.stats == {"entries": 1, "hits": 1, "misses": 1, "evictions": 0}

    def test_least_squares_max_iterations_zero_is_honoured(self):
        from repro.operators.inference import least_squares

        queries = Prefix(8)
        answers = np.arange(1.0, 9.0)
        result = least_squares(queries, answers, method="lsmr", max_iterations=0)
        assert result.iterations == 0
        np.testing.assert_allclose(result.x_hat, np.zeros(8))


class TestKroneckerDenseBudget:
    def test_small_kronecker_materialises(self):
        k = Kronecker([Prefix(4), Identity(3)])
        np.testing.assert_allclose(k.dense(), np.kron(Prefix(4).dense(), np.eye(3)))

    def test_budget_exceeded_raises_with_cell_count(self):
        k = Kronecker([Prefix(4096), Prefix(4096)])
        with pytest.raises(ValueError) as excinfo:
            k.dense()
        message = str(excinfo.value)
        assert "dense_cell_budget" in message
        assert f"{4096**4:,}" in message

    def test_budget_is_configurable(self):
        k = Kronecker([Prefix(8), Prefix(8)])
        k.dense_cell_budget = 1_000
        with pytest.raises(ValueError):
            k.dense()
        k.dense_cell_budget = None
        assert k.dense().shape == (64, 64)

    def test_budget_covers_first_and_only_factor(self):
        single = Kronecker([Prefix(8)])
        single.dense_cell_budget = 10
        with pytest.raises(ValueError, match="dense_cell_budget"):
            single.dense()
        first_heavy = Kronecker([Prefix(8), Prefix(2)])
        first_heavy.dense_cell_budget = 32  # first factor alone is 64 cells
        with pytest.raises(ValueError, match="dense_cell_budget"):
            first_heavy.dense()
