"""Unit tests for schemas, relations and table transformations."""

import numpy as np
import pytest

from repro.dataset import Attribute, Relation, Schema, single_attribute_relation
from repro.dataset.relation import STABILITY


@pytest.fixture
def schema():
    return Schema.build(
        [
            Attribute("age", 4, lo=0.0, hi=100.0),
            Attribute("gender", 2, labels=("male", "female")),
            Attribute("income", 5, lo=0.0, hi=100_000.0),
        ]
    )


@pytest.fixture
def relation(schema):
    records = np.array(
        [
            [0, 0, 1],
            [1, 1, 2],
            [2, 0, 2],
            [3, 1, 4],
            [1, 0, 0],
            [1, 0, 2],
        ]
    )
    return Relation(schema, records)


class TestAttribute:
    def test_bin_of_clips(self):
        a = Attribute("income", 10, lo=0.0, hi=100.0)
        assert a.bin_of(-5.0) == 0
        assert a.bin_of(1000.0) == 9
        assert a.bin_of(55.0) == 5

    def test_bin_edges(self):
        a = Attribute("x", 4, lo=0.0, hi=8.0)
        assert np.allclose(a.bin_edges(), [0, 2, 4, 6, 8])

    def test_categorical_has_no_binning(self):
        a = Attribute("color", 3)
        assert not a.is_numeric
        with pytest.raises(ValueError):
            a.bin_of(1.0)

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Attribute("c", 3, labels=("a", "b"))

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Attribute("bad", 0)


class TestSchema:
    def test_domain_and_size(self, schema):
        assert schema.domain == (4, 2, 5)
        assert schema.domain_size == 40

    def test_index_of(self, schema):
        assert schema.index_of("gender") == 1
        with pytest.raises(KeyError):
            schema.index_of("missing")

    def test_getitem_by_name_and_index(self, schema):
        assert schema["age"].size == 4
        assert schema[2].name == "income"

    def test_project(self, schema):
        projected = schema.project(["income", "age"])
        assert projected.names == ("income", "age")
        assert projected.domain == (5, 4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.build([Attribute("a", 2), Attribute("a", 3)])

    def test_describe(self, schema):
        assert "age:4" in schema.describe()


class TestRelation:
    def test_len_and_column(self, relation):
        assert len(relation) == 6
        assert np.array_equal(relation.column("gender"), [0, 1, 0, 1, 0, 0])

    def test_out_of_domain_rejected(self, schema):
        with pytest.raises(ValueError):
            Relation(schema, np.array([[0, 0, 9]]))

    def test_where_mapping_value(self, relation):
        filtered = relation.where({"gender": 0})
        assert len(filtered) == 4

    def test_where_mapping_range(self, relation):
        filtered = relation.where({"age": (1, 2)})
        assert len(filtered) == 4

    def test_where_mapping_set(self, relation):
        filtered = relation.where({"income": [0, 4]})
        assert len(filtered) == 2

    def test_where_callable(self, relation):
        filtered = relation.where(lambda r: r[:, 0] >= 2)
        assert len(filtered) == 2

    def test_select(self, relation):
        projected = relation.select(["income"])
        assert projected.schema.names == ("income",)
        assert projected.records.shape == (6, 1)

    def test_group_by(self, relation):
        groups = relation.group_by("gender")
        assert set(groups) == {0, 1}
        assert len(groups[0]) == 4
        assert len(groups[1]) == 2

    def test_split_by_partition(self, relation):
        assignment = np.array([0, 0, 1, 1, 0, 1])
        parts = relation.split_by_partition(assignment)
        assert [len(p) for p in parts] == [3, 3]

    def test_split_by_partition_wrong_length(self, relation):
        with pytest.raises(ValueError):
            relation.split_by_partition(np.array([0, 1]))

    def test_vectorize_counts(self, relation):
        x = relation.vectorize()
        assert x.shape == (40,)
        assert x.sum() == 6
        # Record [1, 0, 2] appears exactly once; [0, 0, 3] never.
        assert x[np.ravel_multi_index((1, 0, 2), (4, 2, 5))] == 1
        assert x[np.ravel_multi_index((0, 0, 3), (4, 2, 5))] == 0

    def test_vectorize_empty(self, schema):
        empty = Relation(schema, np.empty((0, 3), dtype=np.int64))
        assert np.all(empty.vectorize() == 0)

    def test_projection_vector(self, relation):
        hist = relation.projection_vector(["gender"])
        assert np.array_equal(hist, [4, 2])

    def test_from_histogram_round_trip(self, schema):
        rng = np.random.default_rng(0)
        hist = rng.integers(0, 3, size=schema.domain_size).astype(float)
        rel = Relation.from_histogram(schema, hist)
        assert np.array_equal(rel.vectorize(), hist)

    def test_from_histogram_rejects_negative(self, schema):
        hist = np.zeros(schema.domain_size)
        hist[0] = -1
        with pytest.raises(ValueError):
            Relation.from_histogram(schema, hist)

    def test_from_columns_mismatched_length(self, schema):
        with pytest.raises(ValueError):
            Relation.from_columns(
                schema,
                {"age": np.array([0]), "gender": np.array([0, 1]), "income": np.array([0])},
            )

    def test_single_attribute_relation(self):
        rel = single_attribute_relation("x", np.array([0, 1, 1, 2]), 3)
        assert np.array_equal(rel.vectorize(), [1, 2, 1])


class TestStabilityConstants:
    def test_documented_stabilities(self):
        assert STABILITY["where"] == 1
        assert STABILITY["select"] == 1
        assert STABILITY["split_by_partition"] == 1
        assert STABILITY["group_by"] == 2
        assert STABILITY["vectorize"] == 1
