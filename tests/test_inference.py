"""Unit tests for the inference operators (LS, NNLS, MW, tree-based, threshold)."""

import numpy as np
import pytest

from repro.matrix import HierarchicalQueries, Identity, Prefix, RangeQueries, Total, VStack
from repro.operators.inference import (
    hierarchical_measurements,
    least_squares,
    least_squares_from_parts,
    multiplicative_weights,
    nnls,
    nnls_with_total,
    threshold,
    tree_based_least_squares,
)


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestLeastSquares:
    def test_exact_recovery_noiseless(self, rng):
        x = rng.integers(0, 30, size=40).astype(float)
        m = HierarchicalQueries(40)
        result = least_squares(m, m.matvec(x))
        assert np.allclose(result.x_hat, x, atol=1e-4)

    def test_direct_and_iterative_agree(self, rng):
        x = rng.integers(0, 20, size=16).astype(float)
        m = HierarchicalQueries(16)
        y = m.matvec(x) + rng.normal(0, 1.0, m.shape[0])
        iterative = least_squares(m, y, method="lsmr")
        direct = least_squares(m, y, method="direct")
        assert np.allclose(iterative.x_hat, direct.x_hat, atol=1e-3)

    def test_weights_downweight_noisy_measurements(self, rng):
        x = rng.integers(0, 30, size=8).astype(float)
        clean = Identity(8)
        noisy = Identity(8)
        stacked = VStack([clean, noisy])
        answers = np.concatenate([x, x + rng.normal(0, 50, 8)])
        weighted = least_squares(stacked, answers, weights=np.concatenate([np.ones(8) * 100, np.ones(8)]))
        unweighted = least_squares(stacked, answers)
        assert np.abs(weighted.x_hat - x).mean() < np.abs(unweighted.x_hat - x).mean()

    def test_wrong_answer_length_rejected(self):
        with pytest.raises(ValueError):
            least_squares(Identity(4), np.zeros(3))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            least_squares(Identity(4), np.zeros(4), method="magic")

    def test_from_parts_combines_measurements(self, rng):
        x = rng.integers(0, 30, size=12).astype(float)
        m1, m2 = Identity(12), Prefix(12)
        parts = [(m1, m1.matvec(x), 1.0), (m2, m2.matvec(x), 1.0)]
        result = least_squares_from_parts(parts)
        assert np.allclose(result.x_hat, x, atol=1e-4)

    def test_from_parts_requires_parts(self):
        with pytest.raises(ValueError):
            least_squares_from_parts([])

    def test_underdetermined_total_only(self):
        # Total-only measurement: LSMR returns the minimum-norm solution,
        # which spreads the total uniformly.
        m = Total(10)
        result = least_squares(m, np.array([100.0]))
        assert np.allclose(result.x_hat, 10.0, atol=1e-6)


class TestNnls:
    def test_output_nonnegative(self, rng):
        x = rng.integers(0, 5, size=30).astype(float)
        m = Identity(30)
        y = m.matvec(x) + rng.laplace(0, 3, 30)
        result = nnls(m, y)
        assert np.all(result.x_hat >= 0)

    def test_exact_recovery_noiseless(self, rng):
        x = rng.integers(0, 30, size=24).astype(float)
        m = HierarchicalQueries(24)
        result = nnls(m, m.matvec(x))
        assert np.allclose(result.x_hat, x, atol=1e-2)

    def test_better_than_ls_on_sparse_data(self, rng):
        x = np.zeros(64)
        x[5] = 100.0
        m = Identity(64)
        y = m.matvec(x) + rng.laplace(0, 10, 64)
        ls_error = np.abs(least_squares(m, y).x_hat - x).sum()
        nnls_error = np.abs(nnls(m, y).x_hat - x).sum()
        assert nnls_error < ls_error

    def test_with_total_constrains_mass(self, rng):
        x = rng.integers(0, 10, size=16).astype(float)
        m = Identity(16)
        y = m.matvec(x) + rng.laplace(0, 5, 16)
        result = nnls_with_total(m, y, total=x.sum())
        assert np.isclose(result.x_hat.sum(), x.sum(), rtol=0.05)

    def test_wrong_answer_length_rejected(self):
        with pytest.raises(ValueError):
            nnls(Identity(4), np.zeros(5))


class TestMultiplicativeWeights:
    def test_preserves_total(self, rng):
        x = rng.integers(0, 20, size=32).astype(float)
        m = Prefix(32)
        result = multiplicative_weights(m, m.matvec(x), total=x.sum(), iterations=20)
        assert np.isclose(result.x_hat.sum(), x.sum(), rtol=1e-6)
        assert np.all(result.x_hat >= 0)

    def test_improves_over_uniform(self, rng):
        x = np.zeros(32)
        x[3] = 60.0
        x[20] = 40.0
        m = Identity(32)
        result = multiplicative_weights(m, m.matvec(x), total=x.sum(), iterations=60)
        uniform = np.full(32, x.sum() / 32)
        assert np.abs(result.x_hat - x).sum() < np.abs(uniform - x).sum()

    def test_total_estimated_when_missing(self, rng):
        x = rng.integers(0, 10, size=16).astype(float)
        m = Total(16)
        result = multiplicative_weights(m, m.matvec(x))
        assert np.isclose(result.x_hat.sum(), x.sum(), rtol=1e-6)

    def test_wrong_answer_length_rejected(self):
        with pytest.raises(ValueError):
            multiplicative_weights(Identity(4), np.zeros(3))


class TestTreeBased:
    def test_matches_least_squares(self, rng):
        n = 16
        x = rng.integers(0, 30, size=n).astype(float)
        intervals = hierarchical_measurements(x, branching=2)
        noisy = {}
        noise = {}
        for lo, hi in intervals:
            noise[(lo, hi)] = rng.normal(0, 1.0)
            noisy[(lo, hi)] = x[lo : hi + 1].sum() + noise[(lo, hi)]
        tree_result = tree_based_least_squares(noisy, n, branching=2)
        # Generic least squares on the same measurements.
        matrix = RangeQueries(n, intervals)
        answers = np.array([noisy[iv] for iv in intervals])
        ls_result = least_squares(matrix, answers)
        assert np.allclose(tree_result.x_hat, ls_result.x_hat, atol=0.3)

    def test_noiseless_recovery(self, rng):
        n = 8
        x = rng.integers(0, 10, size=n).astype(float)
        intervals = hierarchical_measurements(x, branching=2)
        exact = {(lo, hi): x[lo : hi + 1].sum() for lo, hi in intervals}
        result = tree_based_least_squares(exact, n)
        assert np.allclose(result.x_hat, x, atol=1e-9)

    def test_missing_interval_rejected(self, rng):
        with pytest.raises(KeyError):
            tree_based_least_squares({(0, 3): 4.0}, 4)


class TestThreshold:
    def test_zeroes_small_values(self):
        x = np.array([0.5, -0.2, 10.0, 3.0])
        result = threshold(x, cutoff=1.0)
        assert np.allclose(result.x_hat, [0.0, 0.0, 10.0, 3.0])

    def test_noise_scale_default_cutoff(self):
        x = np.array([1.0, 5.0])
        result = threshold(x, noise_scale=1.0)  # cutoff = 2
        assert np.allclose(result.x_hat, [0.0, 5.0])

    def test_requires_cutoff_or_scale(self):
        with pytest.raises(ValueError):
            threshold(np.ones(3))

    def test_clips_negatives(self):
        result = threshold(np.array([-5.0, 4.0]), cutoff=1.0)
        assert np.all(result.x_hat >= 0)
