"""Tests for the LinearQueryMatrix base API: transpose views, products with
arrays, Gram matrices, row extraction and the scipy LinearOperator bridge."""

import numpy as np
import pytest
from scipy.sparse.linalg import aslinearoperator, lsmr

from repro.matrix import (
    DenseMatrix,
    HierarchicalQueries,
    Identity,
    Kronecker,
    Prefix,
    SparseMatrix,
    Total,
    TransposeMatrix,
    VStack,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestTransposeView:
    def test_double_transpose_returns_base(self):
        p = Prefix(5)
        view = TransposeMatrix(p)
        assert view.T is p

    def test_abs_and_square_propagate(self, rng):
        d = DenseMatrix(rng.normal(size=(3, 4)))
        view = d.T if isinstance(d.T, TransposeMatrix) else TransposeMatrix(d)
        assert np.allclose(abs(TransposeMatrix(d)).dense(), np.abs(d.dense()).T)
        assert np.allclose(TransposeMatrix(d).square().dense(), (d.dense() ** 2).T)

    def test_shapes(self):
        view = TransposeMatrix(Total(7))
        assert view.shape == (7, 1)
        assert view.dense().shape == (7, 1)


class TestMatmulProtocol:
    def test_matrix_times_2d_array(self, rng):
        p = Prefix(4)
        block = rng.normal(size=(4, 3))
        assert np.allclose(p @ block, p.dense() @ block)

    def test_array_times_matrix(self, rng):
        p = Prefix(4)
        vector = rng.normal(size=4)
        assert np.allclose(vector @ p, vector @ p.dense())
        block = rng.normal(size=(2, 4))
        assert np.allclose(block @ p, block @ p.dense())

    def test_invalid_operand_type(self):
        with pytest.raises(TypeError):
            Prefix(4) @ "nope"

    def test_matmat_column_by_column(self, rng):
        h = HierarchicalQueries(8)
        block = rng.normal(size=(8, 5))
        assert np.allclose(h.matmat(block), h.dense() @ block)


class TestGramAndRows:
    def test_gram_is_symmetric_psd(self, rng):
        h = HierarchicalQueries(10)
        gram_dense = h.gram().dense()
        assert np.allclose(gram_dense, gram_dense.T, atol=1e-9)
        eigenvalues = np.linalg.eigvalsh(gram_dense)
        assert np.all(eigenvalues > -1e-9)

    def test_diag_gram_matches_dense(self):
        h = HierarchicalQueries(12, branching=3)
        dense = h.dense()
        assert np.allclose(h.diag_gram(), (dense**2).sum(axis=0))

    def test_row_extraction_on_composites(self, rng):
        stacked = VStack([Identity(6), Prefix(6), Total(6)])
        dense = stacked.dense()
        for i in [0, 5, 6, 11, 12]:
            assert np.allclose(stacked.row(i), dense[i])

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            VStack([Identity(3)]).row(5)

    def test_kronecker_row(self, rng):
        k = Kronecker([DenseMatrix(rng.normal(size=(2, 3))), Prefix(4)])
        dense = k.dense()
        assert np.allclose(k.row(3), dense[3])


class TestLinearOperatorBridge:
    def test_lsmr_solves_through_bridge(self, rng):
        h = HierarchicalQueries(16)
        x = rng.integers(0, 10, 16).astype(float)
        y = h.matvec(x)
        solution = lsmr(h.as_linear_operator(), y)[0]
        assert np.allclose(solution, x, atol=1e-5)

    def test_bridge_shapes_and_dtype(self):
        operator = Prefix(9).as_linear_operator()
        assert operator.shape == (9, 9)
        assert operator.dtype == np.float64

    def test_aslinearoperator_composition(self, rng):
        # The bridge composes with scipy's own operator algebra.
        op = aslinearoperator(np.eye(5)) + Prefix(5).as_linear_operator()
        v = rng.normal(size=5)
        assert np.allclose(op.matvec(v), v + np.cumsum(v))


class TestSparseMatrixWrapper:
    def test_nnz(self):
        import scipy.sparse as sp

        s = SparseMatrix(sp.identity(6))
        assert s.nnz == 6

    def test_row(self):
        import scipy.sparse as sp

        s = SparseMatrix(sp.csr_matrix(np.triu(np.ones((4, 4)))))
        assert np.allclose(s.row(1), [0, 1, 1, 1])

    def test_transpose(self, rng):
        import scipy.sparse as sp

        dense = rng.normal(size=(3, 5))
        s = SparseMatrix(sp.csr_matrix(dense))
        assert np.allclose(s.T.dense(), dense.T)
