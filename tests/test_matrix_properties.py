"""Property-based tests (hypothesis) for the implicit matrix engine.

The central invariant: every implicit matrix agrees with its dense
materialisation on all primitive methods.  Additional algebraic identities
(Kronecker mixed-product, stack/product compatibility, partition pseudo-inverse)
are checked on randomly generated inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.matrix import (
    DenseMatrix,
    HaarWavelet,
    HierarchicalQueries,
    Identity,
    Kronecker,
    Ones,
    Prefix,
    Product,
    RangeQueries,
    ReductionMatrix,
    Suffix,
    Total,
    VStack,
    Weighted,
)

sizes = st.integers(min_value=1, max_value=24)
small_sizes = st.integers(min_value=1, max_value=8)
floats = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


def vectors(n):
    return hnp.arrays(np.float64, n, elements=floats)


@st.composite
def core_matrices(draw):
    n = draw(sizes)
    kind = draw(st.sampled_from(["identity", "ones", "total", "prefix", "suffix", "wavelet", "hier"]))
    if kind == "identity":
        return Identity(n)
    if kind == "ones":
        return Ones(draw(sizes), n)
    if kind == "total":
        return Total(n)
    if kind == "prefix":
        return Prefix(n)
    if kind == "suffix":
        return Suffix(n)
    if kind == "wavelet":
        exponent = draw(st.integers(min_value=0, max_value=4))
        return HaarWavelet(2**exponent)
    return HierarchicalQueries(n, branching=draw(st.integers(min_value=2, max_value=4)))


@st.composite
def composed_matrices(draw):
    base = draw(core_matrices())
    operation = draw(st.sampled_from(["plain", "weighted", "stack", "product"]))
    if operation == "plain":
        return base
    if operation == "weighted":
        return Weighted(base, draw(st.floats(min_value=-3, max_value=3, allow_nan=False)))
    if operation == "stack":
        other = Identity(base.shape[1])
        return VStack([base, other])
    dense = DenseMatrix(
        draw(
            hnp.arrays(
                np.float64,
                (draw(small_sizes), base.shape[0]),
                elements=st.floats(min_value=-3, max_value=3, allow_nan=False),
            )
        )
    )
    return Product(dense, base)


@given(composed_matrices(), st.data())
@settings(max_examples=60, deadline=None)
def test_matvec_agrees_with_dense(matrix, data):
    dense = matrix.dense()
    v = data.draw(vectors(matrix.shape[1]))
    assert np.allclose(matrix.matvec(v), dense @ v, atol=1e-7)


@given(composed_matrices(), st.data())
@settings(max_examples=60, deadline=None)
def test_rmatvec_agrees_with_dense(matrix, data):
    dense = matrix.dense()
    u = data.draw(vectors(matrix.shape[0]))
    assert np.allclose(matrix.rmatvec(u), dense.T @ u, atol=1e-7)


@given(composed_matrices())
@settings(max_examples=60, deadline=None)
def test_sensitivity_agrees_with_dense(matrix):
    dense = matrix.dense()
    expected_l1 = np.abs(dense).sum(axis=0).max() if dense.size else 0.0
    assert np.isclose(matrix.sensitivity(), expected_l1, rtol=1e-6, atol=1e-9)


@given(composed_matrices())
@settings(max_examples=40, deadline=None)
def test_l2_sensitivity_agrees_with_dense(matrix):
    dense = matrix.dense()
    expected = np.sqrt((dense**2).sum(axis=0).max()) if dense.size else 0.0
    assert np.isclose(matrix.sensitivity_l2(), expected, rtol=1e-6, atol=1e-9)


@given(composed_matrices())
@settings(max_examples=40, deadline=None)
def test_transpose_dense_consistency(matrix):
    assert np.allclose(matrix.T.dense(), matrix.dense().T, atol=1e-9)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_kronecker_agrees_with_numpy(data):
    a = data.draw(
        hnp.arrays(np.float64, (data.draw(small_sizes), data.draw(small_sizes)), elements=floats)
    )
    b = data.draw(
        hnp.arrays(np.float64, (data.draw(small_sizes), data.draw(small_sizes)), elements=floats)
    )
    k = Kronecker([DenseMatrix(a), DenseMatrix(b)])
    expected = np.kron(a, b)
    v = data.draw(vectors(expected.shape[1]))
    assert np.allclose(k.matvec(v), expected @ v, atol=1e-6)
    u = data.draw(vectors(expected.shape[0]))
    assert np.allclose(k.rmatvec(u), expected.T @ u, atol=1e-6)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_range_queries_match_bruteforce(data):
    n = data.draw(st.integers(min_value=1, max_value=40))
    num_queries = data.draw(st.integers(min_value=1, max_value=10))
    intervals = []
    for _ in range(num_queries):
        lo = data.draw(st.integers(min_value=0, max_value=n - 1))
        hi = data.draw(st.integers(min_value=lo, max_value=n - 1))
        intervals.append((lo, hi))
    r = RangeQueries(n, intervals)
    x = data.draw(vectors(n))
    expected = np.array([x[lo : hi + 1].sum() for lo, hi in intervals])
    assert np.allclose(r.matvec(x), expected, atol=1e-7)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_partition_pseudo_inverse_identity(data):
    n = data.draw(st.integers(min_value=1, max_value=30))
    groups = data.draw(hnp.arrays(np.int64, n, elements=st.integers(min_value=0, max_value=5)))
    p = ReductionMatrix(groups)
    dense = p.dense()
    pinv = p.pseudo_inverse().dense()
    # P P+ = I_p (exact for partition matrices).
    assert np.allclose(dense @ pinv, np.eye(p.num_groups), atol=1e-9)
    assert np.allclose(pinv, np.linalg.pinv(dense), atol=1e-9)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_partition_reduction_preserves_total(data):
    n = data.draw(st.integers(min_value=1, max_value=30))
    groups = data.draw(hnp.arrays(np.int64, n, elements=st.integers(min_value=0, max_value=4)))
    x = data.draw(hnp.arrays(np.float64, n, elements=floats))
    p = ReductionMatrix(groups)
    assert np.isclose(p.reduce_vector(x).sum(), x.sum(), atol=1e-6)
