"""Property-based tests for the inference operators.

Invariants checked on random inputs:

* least squares on a full-column-rank measurement matrix recovers the exact
  data vector when the answers are noiseless;
* the NNLS estimate is always entry-wise non-negative;
* multiplicative weights preserves total mass and non-negativity;
* adding an extra noiseless measurement never increases the least-squares
  residual of the original measurements (information monotonicity).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.matrix import DenseMatrix, HierarchicalQueries, Identity, Prefix, Total, VStack
from repro.operators.inference import least_squares, multiplicative_weights, nnls

counts = st.integers(min_value=0, max_value=60)
domain_sizes = st.integers(min_value=2, max_value=32)


def count_vectors(n):
    return hnp.arrays(np.float64, n, elements=st.floats(min_value=0, max_value=60))


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_least_squares_recovers_noiseless_data(data):
    n = data.draw(domain_sizes)
    x = data.draw(count_vectors(n))
    strategy = data.draw(
        st.sampled_from(
            [Identity(n), HierarchicalQueries(n), VStack([Identity(n), Prefix(n)])]
        )
    )
    result = least_squares(strategy, strategy.matvec(x))
    assert np.allclose(result.x_hat, x, atol=1e-3)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_nnls_output_is_nonnegative(data):
    n = data.draw(domain_sizes)
    x = data.draw(count_vectors(n))
    noise = data.draw(hnp.arrays(np.float64, n, elements=st.floats(min_value=-30, max_value=30)))
    result = nnls(Identity(n), x + noise)
    assert np.all(result.x_hat >= -1e-12)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_multiplicative_weights_preserves_mass(data):
    n = data.draw(domain_sizes)
    x = data.draw(count_vectors(n))
    total = float(x.sum()) + 1.0  # strictly positive
    strategy = Prefix(n)
    result = multiplicative_weights(strategy, strategy.matvec(x), total=total, iterations=5)
    assert np.all(result.x_hat >= 0)
    assert np.isclose(result.x_hat.sum(), total, rtol=1e-6)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_extra_measurements_do_not_hurt_fit(data):
    n = data.draw(domain_sizes)
    x = data.draw(count_vectors(n))
    base = Identity(n)
    noise = data.draw(hnp.arrays(np.float64, n, elements=st.floats(min_value=-10, max_value=10)))
    noisy_answers = x + noise
    base_fit = least_squares(base, noisy_answers)

    extra = Total(n)
    augmented = VStack([base, extra])
    augmented_answers = np.concatenate([noisy_answers, [float(x.sum())]])
    augmented_fit = least_squares(augmented, augmented_answers)

    # The augmented estimate cannot be further from the truth on the total query.
    base_total_error = abs(base_fit.x_hat.sum() - x.sum())
    augmented_total_error = abs(augmented_fit.x_hat.sum() - x.sum())
    assert augmented_total_error <= base_total_error + 1e-6
