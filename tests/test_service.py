"""Tests of the multi-tenant query-service layer (`repro.service`)."""

from __future__ import annotations

import json
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.plans import IdentityPlan, available_plans, make_plan
from repro.private import BudgetExceededError
from repro.service import (
    ArtifactCache,
    MeasurementCache,
    PlanScheduler,
    QueryRequest,
    SessionManager,
    derive_request_seed,
    export_json,
    reconcile,
    service_report,
    session_report,
)
from repro.dataset import Attribute, Relation, Schema
from repro.workload import build_workload, workload_cache_key

N = 64


@pytest.fixture
def relation(small_vector):
    schema = Schema.build([Attribute("v", len(small_vector))])
    return Relation.from_histogram(schema, small_vector)


@pytest.fixture
def manager():
    return SessionManager()


@pytest.fixture
def scheduler(manager):
    return PlanScheduler(manager, max_workers=4)


def open_session(manager, relation, tenant="acme", epsilon_total=4.0, seed=0):
    return manager.create_session(tenant, relation, epsilon_total, seed=seed)


def identity_request(session, epsilon=0.1, **overrides):
    request = QueryRequest(
        session.session_id,
        plan="Identity",
        epsilon=epsilon,
        workload="prefix",
        workload_params={"n": N},
    )
    return replace(request, **overrides) if overrides else request


# ----------------------------------------------------------------------------
# Session manager.
# ----------------------------------------------------------------------------
class TestSessionManager:
    def test_create_get_close(self, manager, relation):
        session = open_session(manager, relation)
        assert manager.get(session.session_id) is session
        assert session.session_id in manager
        assert len(manager) == 1
        closed = manager.close(session.session_id)
        assert closed is session and closed.closed
        assert session.session_id not in manager
        with pytest.raises(KeyError):
            manager.get(session.session_id)

    def test_duplicate_session_id_rejected(self, manager, relation):
        manager.create_session("acme", relation, 1.0, session_id="fixed")
        with pytest.raises(ValueError):
            manager.create_session("acme", relation, 1.0, session_id="fixed")

    def test_tenant_listing(self, manager, relation):
        a1 = open_session(manager, relation, tenant="a")
        a2 = open_session(manager, relation, tenant="a")
        b = open_session(manager, relation, tenant="b")
        assert {s.session_id for s in manager.for_tenant("a")} == {a1.session_id, a2.session_id}
        assert manager.for_tenant("b") == [b]

    def test_sessions_have_independent_kernels(self, manager, relation):
        first = open_session(manager, relation, tenant="a", epsilon_total=1.0)
        second = open_session(manager, relation, tenant="b", epsilon_total=2.0)
        assert first.kernel is not second.kernel
        assert first.epsilon_total == 1.0 and second.epsilon_total == 2.0


# ----------------------------------------------------------------------------
# Scheduler basics.
# ----------------------------------------------------------------------------
class TestScheduler:
    def test_execute_spends_exactly_epsilon(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        response = scheduler.execute(identity_request(session, epsilon=0.25))
        assert response.epsilon_spent == pytest.approx(0.25)
        assert session.budget_consumed() == pytest.approx(0.25)
        assert response.x_hat.shape == (N,)
        assert response.answers.shape == (N,)
        assert not response.cached

    def test_workload_answers_are_postprocessing(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        response = scheduler.execute(identity_request(session))
        workload = build_workload("prefix", {"n": N})
        assert np.allclose(response.answers, workload.matvec(response.x_hat))

    def test_request_without_workload_returns_x_hat_payload(
        self, manager, scheduler, relation
    ):
        session = open_session(manager, relation)
        response = scheduler.execute(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.1)
        )
        assert response.answers is None
        assert response.payload is response.x_hat

    def test_unknown_plan_and_session_raise(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        with pytest.raises(KeyError):
            scheduler.execute(
                QueryRequest(session.session_id, plan="NoSuchPlan", epsilon=0.1)
            )
        with pytest.raises(KeyError):
            scheduler.execute(QueryRequest("ghost", plan="Identity", epsilon=0.1))

    def test_budget_exhaustion_propagates(self, manager, scheduler, relation):
        session = open_session(manager, relation, epsilon_total=0.1)
        with pytest.raises(BudgetExceededError):
            scheduler.execute(identity_request(session, epsilon=0.5))
        # The failed request never spent anything.
        assert session.budget_consumed() == 0.0

    def test_partial_spend_failure_is_ledgered(self, manager, scheduler, relation):
        """A plan failing after its first measurement still claims that spend."""
        session = open_session(manager, relation, epsilon_total=0.2)
        # UniformGrid measures the total with 0.1*eps first, then the grid
        # with the rest: eps=0.5 charges 0.05, then exceeds the budget.
        with pytest.raises(BudgetExceededError):
            scheduler.execute(
                QueryRequest(
                    session.session_id,
                    plan="UniformGrid",
                    epsilon=0.5,
                    plan_params={"shape": (8, 8)},
                )
            )
        assert session.budget_consumed() == pytest.approx(0.05)
        event = session.events[-1]
        assert event.error == "BudgetExceededError"
        assert event.epsilon_spent == pytest.approx(0.05)
        assert reconcile(session)["exact"]

    def test_batch_return_exceptions_keeps_other_responses(
        self, manager, scheduler, relation
    ):
        session = open_session(manager, relation, epsilon_total=0.35)
        requests = [
            identity_request(session, epsilon=0.1, reuse=False),
            identity_request(session, epsilon=0.3, reuse=False),  # exceeds budget
            identity_request(session, epsilon=0.2, reuse=False),
        ]
        results = scheduler.execute_batch(requests, max_workers=1, return_exceptions=True)
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], BudgetExceededError)
        assert not isinstance(results[2], Exception)
        assert session.budget_consumed() == pytest.approx(0.3)
        assert reconcile(session)["exact"]
        # Without return_exceptions the first failure re-raises, after the
        # whole batch (and its ledger) has completed.
        with pytest.raises(BudgetExceededError):
            scheduler.execute_batch(
                [identity_request(session, epsilon=0.3, reuse=False)]
            )

    def test_mismatched_workload_rejected_before_spending(
        self, manager, scheduler, relation
    ):
        session = open_session(manager, relation)
        with pytest.raises(ValueError, match="columns"):
            scheduler.execute(
                identity_request(session, workload_params={"n": N // 2})
            )
        assert session.budget_consumed() == 0.0
        # The rejection itself is ledgered: an errored zero-spend event with
        # an empty history span, so the audit trail has no gaps.
        assert len(session.events) == 1
        event = session.events[0]
        assert event.error == "ValueError"
        assert event.epsilon_spent == 0.0
        assert not event.cached
        assert event.history_start == event.history_end
        assert reconcile(session)["exact"]

    def test_close_session_drops_cache_entries(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session))
        assert len(scheduler.measurement_cache) == 1
        closed = scheduler.close_session(session.session_id)
        assert closed is session and closed.closed
        assert len(scheduler.measurement_cache) == 0

    def test_batch_preserves_input_order(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        requests = [
            identity_request(session, epsilon=eps, reuse=False)
            for eps in (0.1, 0.2, 0.3)
        ]
        responses = scheduler.execute_batch(requests)
        assert [r.epsilon_requested for r in responses] == [0.1, 0.2, 0.3]
        assert scheduler.execute_batch([]) == []


# ----------------------------------------------------------------------------
# Deterministic seeding.
# ----------------------------------------------------------------------------
class TestDeterminism:
    def test_same_request_id_reproduces_answers(self, relation):
        outputs = []
        for _ in range(2):
            manager = SessionManager()
            scheduler = PlanScheduler(manager)
            session = manager.create_session("t", relation, 4.0, seed=5)
            response = scheduler.execute(
                identity_request(session, request_id="req-1", reuse=False)
            )
            outputs.append(response)
        assert np.array_equal(outputs[0].x_hat, outputs[1].x_hat)
        assert outputs[0].seed == outputs[1].seed

    def test_distinct_requests_get_distinct_seeds(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        first = scheduler.execute(identity_request(session, reuse=False))
        second = scheduler.execute(identity_request(session, reuse=False))
        assert first.seed != second.seed
        assert not np.array_equal(first.x_hat, second.x_hat)

    def test_derive_request_seed_is_stable(self):
        assert derive_request_seed(0, "s", "r") == derive_request_seed(0, "s", "r")
        assert derive_request_seed(0, "s", "r1") != derive_request_seed(0, "s", "r2")
        assert derive_request_seed(1, "s", "r") != derive_request_seed(2, "s", "r")
        assert derive_request_seed(0, "s", "r", "q1") != derive_request_seed(0, "s", "r", "q2")

    def test_same_request_id_different_query_gets_different_noise(
        self, manager, scheduler, relation
    ):
        """Reusing a request id for a different query must not replay noise."""
        session = open_session(manager, relation)
        first = scheduler.execute(
            identity_request(session, epsilon=0.1, request_id="trace-1", reuse=False)
        )
        second = scheduler.execute(
            identity_request(session, epsilon=0.2, request_id="trace-1", reuse=False)
        )
        assert first.seed != second.seed

    def test_unseeded_sessions_are_not_reproducible(self, relation):
        """seed=None draws from OS entropy: responses can't be reconstructed."""
        outputs = []
        for _ in range(2):
            manager = SessionManager()
            scheduler = PlanScheduler(manager)
            session = manager.create_session("t", relation, 4.0, seed=None)
            outputs.append(
                scheduler.execute(
                    identity_request(session, request_id="pinned", reuse=False)
                )
            )
        assert outputs[0].seed != outputs[1].seed
        assert not np.array_equal(outputs[0].x_hat, outputs[1].x_hat)

    def test_batch_is_order_deterministic(self, relation):
        def run(workers):
            manager = SessionManager()
            scheduler = PlanScheduler(manager)
            session = manager.create_session("t", relation, 4.0, seed=9)
            requests = [identity_request(session, reuse=False) for _ in range(4)]
            return scheduler.execute_batch(requests, max_workers=workers)

        serial = run(1)
        threaded = run(4)
        for a, b in zip(serial, threaded):
            assert np.array_equal(a.x_hat, b.x_hat)

    def test_plan_result_info_carries_seed(self, vector_source_factory, small_vector):
        source = vector_source_factory(small_vector, epsilon=1.0, seed=123)
        result = IdentityPlan().run(source, 0.5)
        assert result.info["seed"] == 123


# ----------------------------------------------------------------------------
# Measurement cache.
# ----------------------------------------------------------------------------
class TestMeasurementCache:
    def test_repeat_request_is_budget_free(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        first = scheduler.execute(identity_request(session))
        consumed = session.budget_consumed()
        second = scheduler.execute(identity_request(session))
        assert second.cached and second.epsilon_spent == 0.0
        assert session.budget_consumed() == consumed
        assert np.array_equal(first.answers, second.answers)
        assert second.request_id != first.request_id

    def test_different_epsilon_misses_cache(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session, epsilon=0.1))
        other = scheduler.execute(identity_request(session, epsilon=0.2))
        assert not other.cached

    def test_reuse_false_bypasses_cache(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session))
        fresh = scheduler.execute(identity_request(session, reuse=False))
        assert not fresh.cached
        assert session.budget_consumed() == pytest.approx(0.2)

    def test_cache_is_scoped_per_session(self, manager, scheduler, relation):
        first = open_session(manager, relation, tenant="a")
        second = open_session(manager, relation, tenant="b")
        scheduler.execute(identity_request(first))
        cross = scheduler.execute(identity_request(second))
        assert not cross.cached
        assert second.budget_consumed() == pytest.approx(0.1)

    def test_backing_records_reconcile_with_history(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        request = identity_request(session)
        scheduler.execute(request)
        records = scheduler.measurement_cache.backing_records(
            session, request.cache_key()
        )
        assert len(records) == 1
        assert records[0].operator == "VectorLaplace"
        assert records[0].epsilon == pytest.approx(0.1)

    def test_session_id_reuse_after_close_does_not_leak_cache(
        self, manager, scheduler, relation, rng
    ):
        """A new tenant under a recycled session id must not see old releases."""
        first = manager.create_session("a", relation, 1.0, seed=0, session_id="fixed")
        scheduler.execute(identity_request(first))
        manager.close("fixed")
        schema = Schema.build([Attribute("v", N)])
        other_relation = Relation.from_histogram(
            schema, rng.integers(0, 40, size=N).astype(np.float64)
        )
        second = manager.create_session("b", other_relation, 1.0, seed=1, session_id="fixed")
        response = scheduler.execute(identity_request(second))
        assert not response.cached
        assert second.budget_consumed() == pytest.approx(0.1)

    def test_client_mutation_cannot_corrupt_cache(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        first = scheduler.execute(identity_request(session))
        original = first.x_hat.copy()
        first.x_hat[:] = -1.0
        first.answers[:] = -1.0
        first.info["note"] = "mutated"
        second = scheduler.execute(identity_request(session))
        assert second.cached
        assert np.array_equal(second.x_hat, original)
        assert "note" not in second.info

    def test_invalidate_session(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session))
        assert len(scheduler.measurement_cache) == 1
        dropped = scheduler.measurement_cache.invalidate_session(session)
        assert dropped == 1 and len(scheduler.measurement_cache) == 0

    def test_stats(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session))
        scheduler.execute(identity_request(session))
        stats = scheduler.measurement_cache.stats
        assert stats["hits"] == 1 and stats["entries"] == 1


# ----------------------------------------------------------------------------
# Artifact cache.
# ----------------------------------------------------------------------------
class TestArtifactCache:
    def test_workload_built_once(self):
        cache = ArtifactCache()
        first = cache.workload("prefix", {"n": 32})
        second = cache.workload("prefix", {"n": 32})
        assert first is second
        assert cache.stats == {"entries": 1, "hits": 1, "misses": 1, "evictions": 0}

    def test_key_normalisation_across_param_types(self):
        assert workload_cache_key("prefix", {"n": np.int64(32)}) == workload_cache_key(
            "prefix", {"n": 32}
        )
        assert workload_cache_key("prefix", {"n": 32}) != workload_cache_key(
            "prefix", {"n": 64}
        )
        with pytest.raises(KeyError):
            workload_cache_key("nope", {})
        with pytest.raises(TypeError, match="not hashable"):
            workload_cache_key("prefix", {"n": {1, 2}})

    def test_max_entries_evicts_oldest(self):
        cache = ArtifactCache(max_entries=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("c", lambda: 3)
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_scheduler_shares_workload_artifacts_across_sessions(
        self, manager, scheduler, relation
    ):
        first = open_session(manager, relation, tenant="a")
        second = open_session(manager, relation, tenant="b")
        scheduler.execute(identity_request(first))
        scheduler.execute(identity_request(second))
        assert scheduler.artifact_cache.stats["misses"] == 1
        assert scheduler.artifact_cache.stats["hits"] == 1

    def test_scheduler_shares_gram_artifacts_across_tenants(self, manager, relation):
        # The scheduler passes its ArtifactCache into plan inference, so the
        # normal-equations factorisation built for tenant a's H2 strategy is
        # reused verbatim by tenant b: zero Gram rebuilds on the second
        # request, proven by counting actual builder invocations.
        class CountingCache(ArtifactCache):
            def __init__(self):
                super().__init__()
                self.gram_builds = 0

            def get_or_build(self, key, builder):
                def counting():
                    if isinstance(key, tuple) and key and key[0] == "least_squares_gram":
                        self.gram_builds += 1
                    return builder()

                return super().get_or_build(key, counting)

        cache = CountingCache()
        scheduler = PlanScheduler(manager, artifact_cache=cache)
        first = open_session(manager, relation, tenant="a")
        second = open_session(manager, relation, tenant="b")
        request = lambda session: QueryRequest(
            session.session_id, plan="Hierarchical (H2)", epsilon=0.5
        )

        scheduler.execute(request(first))
        assert cache.gram_builds == 1  # the plan actually used the shared cache
        before = dict(cache.stats)

        scheduler.execute(request(second))
        assert cache.gram_builds == 1  # zero rebuilds for the second tenant
        assert cache.stats["misses"] == before["misses"]
        assert cache.stats["hits"] > before["hits"]
        gram_keys = [
            key
            for key in cache._entries
            if isinstance(key, tuple) and key and key[0] == "least_squares_gram"
        ]
        assert len(gram_keys) == 1

    def test_gram_sharing_does_not_change_answers(self, manager, relation):
        # Same session seed with and without a pre-warmed Gram artifact: the
        # shared factorisation is a pure performance artifact.
        responses = []
        for trial in range(2):
            local_manager = SessionManager()
            scheduler = PlanScheduler(local_manager)
            session = open_session(local_manager, relation, tenant="t", seed=123)
            if trial == 1:
                from repro.matrix import HierarchicalQueries

                strategy = HierarchicalQueries(N)
                scheduler.artifact_cache.normal_equations(
                    strategy.strategy_key(), strategy
                )
            responses.append(
                scheduler.execute(
                    QueryRequest(session.session_id, plan="Hierarchical (H2)", epsilon=0.5)
                )
            )
        np.testing.assert_allclose(responses[0].x_hat, responses[1].x_hat)


# ----------------------------------------------------------------------------
# Registry / plan parameterisation.
# ----------------------------------------------------------------------------
class TestRegistryLookup:
    def test_make_plan_with_params(self):
        plan = make_plan("Identity", {"representation": "dense"})
        assert plan.representation == "dense"
        with pytest.raises(KeyError):
            make_plan("NoSuchPlan")

    def test_available_plans_sorted(self):
        names = available_plans()
        assert names == sorted(names)
        assert "Identity" in names and "DAWA" in names


# ----------------------------------------------------------------------------
# Concurrency safety.
# ----------------------------------------------------------------------------
class TestConcurrency:
    def test_parallel_sessions_never_cross_budgets(self, manager, scheduler, relation):
        """Two tenants hammered in one batch each land exactly on their own ledger."""
        first = open_session(manager, relation, tenant="a", epsilon_total=2.0)
        second = open_session(manager, relation, tenant="b", epsilon_total=1.0)
        requests = []
        for i in range(10):
            requests.append(identity_request(first, epsilon=0.1, reuse=False))
            requests.append(identity_request(second, epsilon=0.05, reuse=False))
        responses = scheduler.execute_batch(requests, max_workers=8)
        assert len(responses) == 20
        assert math.isclose(first.budget_consumed(), 1.0, rel_tol=0, abs_tol=1e-9)
        assert math.isclose(second.budget_consumed(), 0.5, rel_tol=0, abs_tol=1e-9)
        assert first.budget_remaining() >= 0 and second.budget_remaining() >= 0
        # Every response is attributed to the session that paid for it.
        for response in responses:
            assert response.session_id in (first.session_id, second.session_id)
        assert reconcile(first)["exact"] and reconcile(second)["exact"]

    def test_single_session_ledger_exact_under_batching(
        self, manager, scheduler, relation
    ):
        session = open_session(manager, relation, epsilon_total=4.0)
        requests = [
            identity_request(session, epsilon=0.05, reuse=False) for _ in range(20)
        ]
        responses = scheduler.execute_batch(requests, max_workers=8)
        # The ledger deltas reported to clients sum exactly to the kernel total.
        assert math.fsum(r.epsilon_spent for r in responses) == pytest.approx(
            session.budget_consumed(), abs=1e-12
        )
        assert session.budget_consumed() == pytest.approx(1.0, abs=1e-9)
        assert len(session.events) == 20
        assert reconcile(session)["exact"]

    def test_concurrent_cached_and_fresh_requests(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session))
        consumed = session.budget_consumed()
        repeats = [identity_request(session) for _ in range(12)]
        responses = scheduler.execute_batch(repeats, max_workers=6)
        assert all(r.cached and r.epsilon_spent == 0.0 for r in responses)
        assert session.budget_consumed() == consumed


# ----------------------------------------------------------------------------
# Audit export.
# ----------------------------------------------------------------------------
class TestExport:
    def test_session_report_structure(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session))
        scheduler.execute(identity_request(session))  # cached
        report = session_report(session)
        assert report["num_requests"] == 2 and report["num_cached"] == 1
        assert report["budget_consumed"] == pytest.approx(0.1)
        assert report["kernel_audit"]["num_measurements"] == 1
        assert len(report["events"]) == 2
        assert report["events"][1]["cached"] is True

    def test_reconcile_exact_after_mixed_traffic(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session, epsilon=0.1))
        scheduler.execute(identity_request(session, epsilon=0.1))  # cached
        scheduler.execute(identity_request(session, epsilon=0.3, reuse=False))
        check = reconcile(session)
        assert check["exact"]
        assert check["service_epsilon"] == pytest.approx(session.budget_consumed())
        assert check["history_claimed"] == check["history_records"] == 2

    def test_service_report_and_json_roundtrip(self, manager, scheduler, relation):
        first = open_session(manager, relation, tenant="a")
        second = open_session(manager, relation, tenant="b")
        scheduler.execute(identity_request(first))
        scheduler.execute(identity_request(second, epsilon=0.2))
        report = service_report(manager)
        assert report["num_sessions"] == 2
        assert report["tenants"] == ["a", "b"]
        assert report["total_epsilon_consumed"] == pytest.approx(0.3)
        parsed = json.loads(export_json(manager))
        assert parsed["num_sessions"] == 2
        parsed_session = json.loads(export_json(first))
        assert parsed_session["session_id"] == first.session_id

    def test_events_point_at_history_records(self, manager, scheduler, relation):
        session = open_session(manager, relation)
        scheduler.execute(identity_request(session))
        event = session.events[0]
        records = session.measurements_for(event)
        assert len(records) == 1 and records[0].operator == "VectorLaplace"


# ----------------------------------------------------------------------------
# Kernel hooks backing the service.
# ----------------------------------------------------------------------------
class TestKernelHooks:
    def test_budget_snapshot(self, vector_source_factory, small_vector):
        source = vector_source_factory(small_vector, epsilon=1.0)
        kernel = source.kernel
        before = kernel.budget_snapshot()
        source.vector_laplace(build_workload("identity", {"domain": N}), 0.25)
        after = kernel.budget_snapshot()
        assert before.consumed == 0.0 and before.num_measurements == 0
        assert after.consumed == pytest.approx(0.25)
        assert after.num_measurements == 1
        assert after.remaining == pytest.approx(0.75)

    def test_history_query_filters(self, vector_source_factory, small_vector):
        source = vector_source_factory(small_vector, epsilon=1.0)
        kernel = source.kernel
        source.vector_laplace(build_workload("identity", {"domain": N}), 0.1)
        source.laplace_scalar(lambda x: float(x.sum()), 1.0, 0.1)
        assert len(kernel.history_query()) == 2
        assert len(kernel.history_query(operator="VectorLaplace")) == 1
        assert len(kernel.history_query(since=1)) == 1
        assert kernel.history_query(source="nope") == []

    def test_reseed_reproduces_noise(self, vector_source_factory, small_vector):
        source = vector_source_factory(small_vector, epsilon=2.0)
        workload = build_workload("identity", {"domain": N})
        source.kernel.reseed(77)
        first = source.vector_laplace(workload, 0.1)
        source.kernel.reseed(77)
        second = source.vector_laplace(workload, 0.1)
        assert np.array_equal(first, second)
        assert source.kernel.seed == 77
